//! `perm-shell` — the interactive / scripted client for `permd`.
//!
//! Reads one request per line from stdin (or `-c` commands) and prints server responses.
//! Plain lines are sent as SQL (`query <line>`); `\`-prefixed lines are meta commands:
//! `\prepare <name> <sql>`, `\exec <name> (v1, ...)`, `\deallocate <name>`,
//! `\set <budget|timeout_ms> <n|none>`, `\stats`, `\metrics`, `\profile`, `\ping`,
//! `\shutdown`, `\q`.
//!
//! ```text
//! perm-shell [--port N] [-c COMMAND]...
//! ```
//!
//! Exits non-zero when the connection fails or any statement errored, so CI scripts can pipe a
//! SQL file through it and fail fast.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Non-test code must surface failures as structured errors, never panic on a recoverable
// condition (tests are exempt via clippy.toml); `cargo xtask lint` checks this header.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{self, BufReader, Cursor};
use std::process::ExitCode;

use perm_service::shell::{run_shell, Client};

const DEFAULT_PORT: u16 = 7654;

fn main() -> ExitCode {
    let mut port = DEFAULT_PORT;
    let mut commands: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" | "-p" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => port = v,
                None => return usage("--port requires a number"),
            },
            "-c" | "--command" => match args.next() {
                Some(c) => commands.push(c),
                None => return usage("-c requires a command string"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    // Bounded exponential backoff on the initial connect: scripts routinely start the shell
    // right after `permd` and would otherwise race its bind.
    let mut client = match Client::connect_with_retry(("127.0.0.1", port), 5) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("perm-shell: cannot connect to 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let stdout = io::stdout();
    let result = if commands.is_empty() {
        run_shell(&mut client, BufReader::new(io::stdin()), stdout.lock())
    } else {
        run_shell(&mut client, Cursor::new(commands.join("\n")), stdout.lock())
    };
    match result {
        Ok(0) => ExitCode::SUCCESS,
        Ok(errors) => {
            eprintln!("perm-shell: {errors} statement(s) failed");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perm-shell: connection error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("perm-shell: {error}");
    }
    eprintln!("usage: perm-shell [--port N] [-c COMMAND]...");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
