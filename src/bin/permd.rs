//! `permd` — the Perm query service daemon.
//!
//! Serves the full SQL-PLE pipeline (DDL, DML, `SELECT PROVENANCE ...`) to concurrent clients
//! over a localhost TCP socket using the length-prefixed text protocol of
//! [`perm_service::wire`]. One thread per connection, each with its own session (settings and
//! prepared statements); all sessions share one engine: catalog, provenance rewriter, optimizer
//! and plan cache.
//!
//! ```text
//! permd [--port N] [--cache-capacity N]
//! ```
//!
//! With `--port 0` (the default is 7654) the OS assigns a free port; the bound address is
//! printed as `permd listening on 127.0.0.1:PORT` so scripts can parse it. Stop the server with
//! the wire command `shutdown` (e.g. `\shutdown` in `perm-shell`).

use std::process::ExitCode;
use std::sync::Arc;

use perm_core::ProvenanceRewriter;
use perm_service::{serve, Engine};

const DEFAULT_PORT: u16 = 7654;

fn main() -> ExitCode {
    let mut port = DEFAULT_PORT;
    let mut cache_capacity: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" | "-p" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => port = v,
                None => return usage("--port requires a number"),
            },
            "--cache-capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cache_capacity = Some(v),
                None => return usage("--cache-capacity requires a number"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let mut engine = Engine::new().with_rewriter(Arc::new(ProvenanceRewriter::new()));
    if let Some(capacity) = cache_capacity {
        engine = engine.with_plan_cache_capacity(capacity);
    }

    let handle = match serve(Arc::new(engine), ("127.0.0.1", port)) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("permd: failed to bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("permd listening on {}", handle.addr());
    handle.wait();
    println!("permd: shut down");
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("permd: {error}");
    }
    eprintln!("usage: permd [--port N] [--cache-capacity N]");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
