//! `permd` — the Perm query service daemon.
//!
//! Serves the full SQL-PLE pipeline (DDL, DML, `SELECT PROVENANCE ...`) to concurrent clients
//! over a TCP socket using the length-prefixed text protocol of [`perm_service::wire`]. One
//! thread per connection, each with its own session (settings and prepared statements); all
//! sessions share one engine: catalog, provenance rewriter, optimizer and plan cache. Query
//! results flow out of the vectorized executor as columnar chunks and are rendered onto the
//! wire chunk-wise.
//!
//! ```text
//! permd [--bind ADDR] [--port N] [--plan-cache-capacity N] [--workers N]
//!       [--mem-limit BYTES] [--session-mem-limit BYTES]
//!       [--metrics-addr ADDR:PORT] [--log-level LEVEL] [--slow-query-ms N]
//! ```
//!
//! `--bind` sets the listen address (default `127.0.0.1`); with `--port 0` (the default is
//! 7654) the OS assigns a free port. The bound address is printed as
//! `permd listening on ADDR:PORT` so scripts can parse it. `--plan-cache-capacity` sizes the
//! shared plan cache (`--cache-capacity` is accepted as an alias; 0 disables caching).
//! `--workers` sizes the engine's shared worker pool for intra-query (morsel-driven) parallel
//! execution; the default is the number of logical CPUs, and `--workers 1` runs every query
//! single-threaded. `--mem-limit` caps the bytes all running queries may reserve engine-wide
//! and `--session-mem-limit` caps any single query (both accept `k`/`m`/`g` suffixes, e.g.
//! `--mem-limit 512m`); over-limit queries fail with a clean `resource exhausted` error while
//! the server keeps serving. Stop the server with the wire command `shutdown` (e.g.
//! `\shutdown` in `perm-shell`).
//!
//! Observability:
//!
//! * `--metrics-addr ADDR:PORT` serves the engine's metrics registry as Prometheus text
//!   exposition over plain HTTP (GET `/metrics`); the bound address is printed as
//!   `permd metrics on ADDR:PORT`. The same text is available in-band as the wire `metrics`
//!   command.
//! * `--log-level error|warn|info|debug|trace` sets the structured-log level (default `info`:
//!   connection open/close, query start/end with latency and outcome; `warn` adds only
//!   degraded events — shed queries, slow queries, failpoint trips).
//! * `--slow-query-ms N` logs a `slow_query` warning for every statement slower than `N`
//!   milliseconds (0, the default, disables the slow-query log).
//!
//! The `PERM_FAILPOINTS` environment variable arms the fault-injection harness (testing only;
//! see `perm_exec::faults`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Non-test code must surface failures as structured errors, never panic on a recoverable
// condition (tests are exempt via clippy.toml); `cargo xtask lint` checks this header.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use perm_core::ProvenanceRewriter;
use perm_exec::log_error;
use perm_service::metrics::render_prometheus;
use perm_service::{serve, Engine, GovernorLimits};

const DEFAULT_PORT: u16 = 7654;
const DEFAULT_BIND: &str = "127.0.0.1";

/// Parsed command-line configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Config {
    bind: String,
    port: u16,
    plan_cache_capacity: Option<usize>,
    workers: Option<usize>,
    mem_limit: Option<usize>,
    session_mem_limit: Option<usize>,
    metrics_addr: Option<String>,
    log_level: perm_exec::Level,
    slow_query_ms: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            bind: DEFAULT_BIND.to_string(),
            port: DEFAULT_PORT,
            plan_cache_capacity: None,
            workers: None,
            mem_limit: None,
            session_mem_limit: None,
            metrics_addr: None,
            log_level: perm_exec::Level::Info,
            slow_query_ms: 0,
        }
    }
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix (case-insensitive, powers of 1024).
fn parse_bytes(text: &str) -> Option<usize> {
    let text = text.trim();
    let (digits, shift) = match text.char_indices().last()? {
        (i, 'k') | (i, 'K') => (&text[..i], 10),
        (i, 'm') | (i, 'M') => (&text[..i], 20),
        (i, 'g') | (i, 'G') => (&text[..i], 30),
        _ => (text, 0),
    };
    let n: usize = digits.trim().parse().ok()?;
    n.checked_shl(shift)
}

impl Config {
    /// Parse command-line arguments (without the program name). `Err` carries the usage error;
    /// an empty error text means `--help` was requested.
    fn parse(args: impl IntoIterator<Item = String>) -> Result<Config, String> {
        let mut config = Config::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--port" | "-p" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => config.port = v,
                    None => return Err("--port requires a number".into()),
                },
                "--bind" | "-b" => match args.next() {
                    Some(v) if !v.is_empty() => config.bind = v,
                    _ => return Err("--bind requires an address".into()),
                },
                "--plan-cache-capacity" | "--cache-capacity" => {
                    match args.next().and_then(|v| v.parse().ok()) {
                        Some(v) => config.plan_cache_capacity = Some(v),
                        None => return Err(format!("{arg} requires a number")),
                    }
                }
                "--workers" | "-w" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v >= 1 => config.workers = Some(v),
                    _ => return Err("--workers requires a number >= 1".into()),
                },
                "--mem-limit" => match args.next().and_then(|v| parse_bytes(&v)) {
                    Some(v) if v >= 1 => config.mem_limit = Some(v),
                    _ => return Err("--mem-limit requires a byte count (k/m/g suffixes ok)".into()),
                },
                "--session-mem-limit" => match args.next().and_then(|v| parse_bytes(&v)) {
                    Some(v) if v >= 1 => config.session_mem_limit = Some(v),
                    _ => {
                        return Err(
                            "--session-mem-limit requires a byte count (k/m/g suffixes ok)".into()
                        )
                    }
                },
                "--metrics-addr" => match args.next() {
                    Some(v) if !v.is_empty() => config.metrics_addr = Some(v),
                    _ => return Err("--metrics-addr requires an ADDR:PORT".into()),
                },
                "--log-level" => match args.next() {
                    Some(v) => config.log_level = perm_exec::Level::parse(&v)?,
                    None => return Err("--log-level requires error|warn|info|debug|trace".into()),
                },
                "--slow-query-ms" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => config.slow_query_ms = v,
                    None => return Err("--slow-query-ms requires a number".into()),
                },
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(config)
    }

    /// Build the shared engine this configuration describes.
    fn engine(&self) -> Engine {
        let mut engine = Engine::new().with_rewriter(Arc::new(ProvenanceRewriter::new()));
        if let Some(capacity) = self.plan_cache_capacity {
            engine = engine.with_plan_cache_capacity(capacity);
        }
        if let Some(workers) = self.workers {
            engine = engine.with_workers(workers);
        }
        if self.mem_limit.is_some() || self.session_mem_limit.is_some() {
            engine = engine.with_memory_limits(GovernorLimits {
                engine_bytes: self.mem_limit,
                query_bytes: self.session_mem_limit,
            });
        }
        engine.metrics().set_slow_query_ms(self.slow_query_ms);
        engine
    }
}

/// Serve the Prometheus text exposition over plain HTTP/1.0 (one response per connection,
/// `Connection: close`) until `stop` is set. No HTTP library: the endpoint answers
/// `GET /metrics` (or `/`) and nothing else, which a hand-rolled request line parse covers.
fn serve_metrics(listener: TcpListener, engine: Arc<Engine>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = answer_metrics_request(&mut stream, &engine);
    }
}

fn answer_metrics_request(stream: &mut TcpStream, engine: &Engine) -> std::io::Result<()> {
    // Only the request line matters; whatever headers fit in one read are discarded with it.
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let head = String::from_utf8_lossy(&buf[..n]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if !method.eq_ignore_ascii_case("GET") {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/metrics" || path == "/" {
        ("200 OK", render_prometheus(&engine.stats_snapshot()))
    } else {
        ("404 Not Found", "not found; metrics are at /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// A running metrics endpoint: its bound address, stop flag and serving thread.
struct MetricsEndpoint {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl MetricsEndpoint {
    fn spawn(addr: &str, engine: Arc<Engine>) -> std::io::Result<MetricsEndpoint> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("perm-metrics".into())
                .spawn(move || serve_metrics(listener, engine, stop))?
        };
        Ok(MetricsEndpoint { addr, stop, thread })
    }

    fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

fn main() -> ExitCode {
    let config = match Config::parse(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(error) => return usage(&error),
    };
    perm_exec::log::set_level(config.log_level);
    // Arm the fault-injection harness when PERM_FAILPOINTS is set (testing only; a no-op
    // otherwise).
    if let Err(e) = perm_exec::faults::init_from_env() {
        log_error!("startup_failed", reason = "invalid PERM_FAILPOINTS", error = e);
        return ExitCode::FAILURE;
    }

    let engine = Arc::new(config.engine());
    let metrics_endpoint = match &config.metrics_addr {
        Some(addr) => match MetricsEndpoint::spawn(addr, engine.clone()) {
            Ok(endpoint) => Some(endpoint),
            Err(e) => {
                let error = e.to_string();
                log_error!("startup_failed", reason = "metrics bind", addr = addr, error = error);
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let handle = match serve(engine, (config.bind.as_str(), config.port)) {
        Ok(handle) => handle,
        Err(e) => {
            let addr = format!("{}:{}", config.bind, config.port);
            let error = e.to_string();
            log_error!("startup_failed", reason = "bind", addr = addr, error = error);
            return ExitCode::FAILURE;
        }
    };
    println!("permd listening on {}", handle.addr());
    if let Some(endpoint) = &metrics_endpoint {
        println!("permd metrics on {}", endpoint.addr);
    }
    handle.wait();
    if let Some(endpoint) = metrics_endpoint {
        endpoint.shutdown();
    }
    println!("permd: shut down");
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("permd: {error}");
    }
    eprintln!(
        "usage: permd [--bind ADDR] [--port N] [--plan-cache-capacity N] [--workers N] \
         [--mem-limit BYTES] [--session-mem-limit BYTES] [--metrics-addr ADDR:PORT] \
         [--log-level error|warn|info|debug|trace] [--slow-query-ms N]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Config, String> {
        Config::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_arguments() {
        let config = parse(&[]).unwrap();
        assert_eq!(config, Config::default());
        assert_eq!(config.bind, "127.0.0.1");
        assert_eq!(config.port, DEFAULT_PORT);
        assert_eq!(config.plan_cache_capacity, None);
    }

    #[test]
    fn bind_port_and_cache_capacity_flags() {
        let config =
            parse(&["--bind", "0.0.0.0", "--port", "9000", "--plan-cache-capacity", "7"]).unwrap();
        assert_eq!(config.bind, "0.0.0.0");
        assert_eq!(config.port, 9000);
        assert_eq!(config.plan_cache_capacity, Some(7));
    }

    #[test]
    fn legacy_cache_capacity_alias_still_works() {
        let config = parse(&["--cache-capacity", "3"]).unwrap();
        assert_eq!(config.plan_cache_capacity, Some(3));
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        assert!(parse(&["--port"]).is_err());
        assert!(parse(&["--port", "abc"]).is_err());
        assert!(parse(&["--bind"]).is_err());
        assert!(parse(&["--plan-cache-capacity", "-1"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap_err(), "");
    }

    #[test]
    fn workers_flag_parses_and_sizes_the_pool() {
        let config = parse(&["--workers", "4"]).unwrap();
        assert_eq!(config.workers, Some(4));
        assert_eq!(config.engine().workers(), 4);
        let single = parse(&["-w", "1"]).unwrap();
        assert_eq!(single.engine().workers(), 1);
        // Without the flag the pool is sized by the machine.
        assert!(parse(&[]).unwrap().engine().workers() >= 1);
        assert!(parse(&["--workers"]).is_err());
        assert!(parse(&["--workers", "0"]).is_err());
        assert!(parse(&["--workers", "abc"]).is_err());
    }

    #[test]
    fn memory_limit_flags_parse_byte_suffixes() {
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("4k"), Some(4096));
        assert_eq!(parse_bytes("2M"), Some(2 << 20));
        assert_eq!(parse_bytes("1g"), Some(1 << 30));
        assert_eq!(parse_bytes("abc"), None);
        assert_eq!(parse_bytes(""), None);
        let config = parse(&["--mem-limit", "64m", "--session-mem-limit", "16m"]).unwrap();
        assert_eq!(config.mem_limit, Some(64 << 20));
        assert_eq!(config.session_mem_limit, Some(16 << 20));
        let limits = config.engine().governor().limits();
        assert_eq!(limits.engine_bytes, Some(64 << 20));
        assert_eq!(limits.query_bytes, Some(16 << 20));
        // Without the flags the governor is unlimited.
        assert_eq!(parse(&[]).unwrap().engine().governor().limits().engine_bytes, None);
        assert!(parse(&["--mem-limit"]).is_err());
        assert!(parse(&["--mem-limit", "0"]).is_err());
        assert!(parse(&["--session-mem-limit", "x"]).is_err());
    }

    #[test]
    fn observability_flags_parse() {
        let config = parse(&[
            "--metrics-addr",
            "127.0.0.1:0",
            "--log-level",
            "debug",
            "--slow-query-ms",
            "250",
        ])
        .unwrap();
        assert_eq!(config.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(config.log_level, perm_exec::Level::Debug);
        assert_eq!(config.slow_query_ms, 250);
        assert_eq!(parse(&[]).unwrap().log_level, perm_exec::Level::Info);
        assert!(parse(&["--log-level", "loud"]).is_err());
        assert!(parse(&["--metrics-addr"]).is_err());
        assert!(parse(&["--slow-query-ms", "abc"]).is_err());
    }

    #[test]
    fn metrics_endpoint_answers_http_scrapes() {
        let engine = Arc::new(Config::default().engine());
        let endpoint = MetricsEndpoint::spawn("127.0.0.1:0", engine).unwrap();
        let mut conn = TcpStream::connect(endpoint.addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.contains("perm_queries_active 0"), "{response}");
        // Unknown paths 404; the endpoint keeps serving connection after connection.
        let mut conn = TcpStream::connect(endpoint.addr).unwrap();
        conn.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");
        endpoint.shutdown();
    }

    #[test]
    fn capacity_threads_through_engine_construction() {
        let config = parse(&["--plan-cache-capacity", "5"]).unwrap();
        assert_eq!(config.engine().plan_cache_capacity(), 5);
        // Without the flag the engine keeps its built-in default capacity.
        let default_capacity = parse(&[]).unwrap().engine().plan_cache_capacity();
        assert!(default_capacity > 0);
    }
}
