//! # Perm — provenance and data on the same data model
//!
//! This is the top-level facade crate of the Perm reproduction (Glavic & Alonso, *Perm:
//! Processing Provenance and Data on the Same Data Model through Query Rewriting*, ICDE 2009).
//! It re-exports the public API of the workspace crates so that downstream users can depend on a
//! single crate:
//!
//! ```
//! use perm::prelude::*;
//!
//! let db = PermDb::new();
//! db.execute_script(
//!     "CREATE TABLE items (id INT, price INT);
//!      INSERT INTO items VALUES (1, 100), (2, 10), (3, 25);",
//! )
//! .unwrap();
//! let result = db
//!     .execute_sql("SELECT PROVENANCE sum(price) AS total FROM items")
//!     .unwrap();
//! assert_eq!(
//!     result.schema().attribute_names(),
//!     vec!["total", "prov_items_id", "prov_items_price"]
//! );
//! assert_eq!(result.num_rows(), 3);
//! ```
//!
//! The layering follows the paper's architecture (Figure 5):
//!
//! * [`service`] — the serving layer: thread-safe engine, concurrent sessions with prepared
//!   statements, a shared plan cache and the `permd`/`perm-shell` wire protocol,
//! * [`sql`] — parser and analyzer with the SQL-PLE provenance language extension,
//! * [`core`] — the provenance rewriter (rules R1–R9) and the [`prelude::PermDb`] facade,
//! * [`exec`] — optimizer and executor,
//! * [`storage`] — catalog and bag-semantic relations,
//! * [`algebra`] — the extended relational algebra of Figure 1,
//! * [`baselines`] — Trio-style eager lineage and Cui–Widom inversion, used in the evaluation,
//! * [`tpch`] — the TPC-H data generator, benchmark queries and artificial workloads.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the reproduction of
//! the paper's evaluation tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Non-test code must surface failures as structured errors, never panic on a recoverable
// condition (tests are exempt via clippy.toml); `cargo xtask lint` checks this header.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub use perm_algebra as algebra;
pub use perm_baselines as baselines;
pub use perm_core as core;
pub use perm_exec as exec;
pub use perm_service as service;
pub use perm_sql as sql;
pub use perm_storage as storage;
pub use perm_tpch as tpch;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use perm_algebra::{DataType, LogicalPlan, Schema, Tuple, Value};
    pub use perm_baselines::{CuiWidomTracer, TrioStyleDb};
    pub use perm_core::{PermDb, PermError, ProvenanceOptions, ProvenanceRewriter};
    pub use perm_service::{Engine, ServiceError, Session, SessionOptions};
    pub use perm_storage::{Catalog, Relation};
    pub use perm_tpch::{generate_catalog, TpchScale};
}
