//! Differential property tests: the **vectorized** chunk executor (`Executor::execute`) and
//! the tuple-at-a-time **streaming** executor (`Executor::execute_streaming`) must both produce
//! exactly the same relations as the naive materializing **reference** evaluator on arbitrary
//! plans — plain and provenance-rewritten, optimized and unoptimized.
//!
//! Random plans cover the operator space the provenance rewriter emits: selections,
//! column-shuffling projections, DISTINCT, inner/outer/cross joins, bag/set set-operations and
//! grouped aggregation, nested to depth 3. Deterministic tests cover the chunk-boundary edge
//! cases (empty input, exactly one full chunk, one row past a chunk boundary).

use proptest::prelude::*;

use perm::prelude::*;
use perm_algebra::{
    AggregateExpr, AggregateFunction, BinaryOperator, JoinKind, ScalarExpr, Schema, SetOpKind,
    SetSemantics,
};
use perm_exec::{execute_reference, Executor, Optimizer};

/// A recipe for a random plan over two union-compatible tables `r` and `s` (both `(k, v)`
/// integer relations). Every node produces a two-column output so specs compose freely.
#[derive(Debug, Clone)]
enum Spec {
    Scan {
        use_s: bool,
    },
    Filter {
        input: Box<Spec>,
        below: i64,
    },
    /// Swap the two columns (checks column remapping through pruning).
    Swap {
        input: Box<Spec>,
    },
    Distinct {
        input: Box<Spec>,
    },
    /// Join on `left.k = right.k`, then project back to `(left.k, right.v)`.
    Join {
        left: Box<Spec>,
        right: Box<Spec>,
        kind: u8,
    },
    SetOp {
        left: Box<Spec>,
        right: Box<Spec>,
        kind: u8,
        bag: bool,
    },
    /// `SELECT k, sum(v) GROUP BY k`.
    Aggregate {
        input: Box<Spec>,
    },
}

/// Decode a bounded-depth spec from a random byte genome (the vendored proptest shim has no
/// `prop_recursive`; shrinking the genome shrinks the plan).
fn decode(genome: &mut std::slice::Iter<'_, u8>, depth: usize) -> Spec {
    let byte = |g: &mut std::slice::Iter<'_, u8>| g.next().copied().unwrap_or(0);
    let b = byte(genome);
    if depth == 0 {
        return Spec::Scan { use_s: b & 1 == 1 };
    }
    match b % 8 {
        0 | 1 => Spec::Scan { use_s: b & 16 == 16 },
        2 => Spec::Filter {
            input: Box::new(decode(genome, depth - 1)),
            below: i64::from(byte(genome) % 6),
        },
        3 => Spec::Swap { input: Box::new(decode(genome, depth - 1)) },
        4 => Spec::Distinct { input: Box::new(decode(genome, depth - 1)) },
        5 => Spec::Join {
            left: Box::new(decode(genome, depth - 1)),
            right: Box::new(decode(genome, depth - 1)),
            kind: byte(genome) % 5,
        },
        6 => Spec::SetOp {
            left: Box::new(decode(genome, depth - 1)),
            right: Box::new(decode(genome, depth - 1)),
            kind: byte(genome) % 3,
            bag: b & 16 == 16,
        },
        _ => Spec::Aggregate { input: Box::new(decode(genome, depth - 1)) },
    }
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    proptest::collection::vec(0u8..=255, 1..32).prop_map(|genome| decode(&mut genome.iter(), 3))
}

fn build(spec: &Spec, catalog: &Catalog, next_ref: &mut usize) -> perm_algebra::PlanBuilder {
    match spec {
        Spec::Scan { use_s } => {
            let name = if *use_s { "s" } else { "r" };
            let ref_id = *next_ref;
            *next_ref += 1;
            perm_algebra::PlanBuilder::scan(name, catalog.table_schema(name).unwrap(), ref_id)
        }
        Spec::Filter { input, below } => {
            let b = build(input, catalog, next_ref);
            b.filter(ScalarExpr::binary(
                BinaryOperator::Lt,
                ScalarExpr::column(0, "k"),
                ScalarExpr::literal(*below),
            ))
        }
        Spec::Swap { input } => {
            let b = build(input, catalog, next_ref);
            b.project(vec![
                (ScalarExpr::column(1, "v"), "k".into()),
                (ScalarExpr::column(0, "k"), "v".into()),
            ])
        }
        Spec::Distinct { input } => {
            let b = build(input, catalog, next_ref);
            b.project_distinct(vec![
                (ScalarExpr::column(0, "k"), "k".into()),
                (ScalarExpr::column(1, "v"), "v".into()),
            ])
        }
        Spec::Join { left, right, kind } => {
            let l = build(left, catalog, next_ref);
            let r = build(right, catalog, next_ref);
            let kind = match kind {
                0 => JoinKind::Inner,
                1 => JoinKind::LeftOuter,
                2 => JoinKind::RightOuter,
                3 => JoinKind::FullOuter,
                _ => JoinKind::Cross,
            };
            let condition = (kind != JoinKind::Cross)
                .then(|| ScalarExpr::column(0, "k").eq(ScalarExpr::column(2, "k")));
            l.join(r, kind, condition).project(vec![
                (ScalarExpr::column(0, "k"), "k".into()),
                (ScalarExpr::column(3, "v"), "v".into()),
            ])
        }
        Spec::SetOp { left, right, kind, bag } => {
            let l = build(left, catalog, next_ref);
            let r = build(right, catalog, next_ref);
            let kind = match kind {
                0 => SetOpKind::Union,
                1 => SetOpKind::Intersect,
                _ => SetOpKind::Difference,
            };
            let semantics = if *bag { SetSemantics::Bag } else { SetSemantics::Set };
            l.set_op(r, kind, semantics)
        }
        Spec::Aggregate { input } => {
            let b = build(input, catalog, next_ref);
            b.aggregate(
                vec![(ScalarExpr::column(0, "k"), "k".into())],
                vec![(
                    AggregateExpr::new(AggregateFunction::Sum, ScalarExpr::column(1, "v")),
                    "v".into(),
                )],
            )
        }
    }
}

fn catalog_with(r: &[(i64, i64)], s: &[(i64, i64)]) -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    for (name, rows) in [("r", r), ("s", s)] {
        let tuples =
            rows.iter().map(|(k, v)| Tuple::new(vec![Value::Int(*k), Value::Int(*v)])).collect();
        catalog.create_table_with_data(name, Relation::from_parts(schema.clone(), tuples)).unwrap();
    }
    catalog
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..5, 0i64..4), 0..8)
}

/// Run one plan through all three execution paths and check both fast paths against the oracle.
fn assert_three_way(catalog: &Catalog, plan: &perm_algebra::LogicalPlan, context: &str) {
    let executor = Executor::new(catalog.clone());
    let reference = execute_reference(catalog, plan).unwrap();
    let vectorized = executor.execute(plan).unwrap();
    let streaming = executor.execute_streaming(plan).unwrap();
    assert!(vectorized.bag_eq(&reference), "vectorized != reference on {context}\n{plan}");
    assert!(streaming.bag_eq(&reference), "streaming != reference on {context}\n{plan}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Vectorized, streaming and reference execution agree on arbitrary plans, with and
    /// without the optimizer (predicate pushdown, projection merging and column pruning
    /// included).
    #[test]
    fn vectorized_and_streaming_equal_reference(
        spec in spec_strategy(),
        r in rows_strategy(),
        s in rows_strategy(),
    ) {
        let catalog = catalog_with(&r, &s);
        let mut next_ref = 0;
        let plan = build(&spec, &catalog, &mut next_ref).build();
        plan.validate().unwrap();

        let executor = Executor::new(catalog.clone());
        let reference = execute_reference(&catalog, &plan).unwrap();
        let vectorized = executor.execute(&plan).unwrap();
        let streaming = executor.execute_streaming(&plan).unwrap();
        prop_assert!(
            vectorized.bag_eq(&reference),
            "vectorized != reference on raw plan\n{plan}"
        );
        prop_assert!(
            streaming.bag_eq(&reference),
            "streaming != reference on raw plan\n{plan}"
        );

        let optimized = Optimizer::new().optimize(&plan).unwrap();
        optimized.validate().unwrap();
        let vectorized_opt = executor.execute(&optimized).unwrap();
        let streaming_opt = executor.execute_streaming(&optimized).unwrap();
        prop_assert!(
            vectorized_opt.bag_eq(&reference),
            "optimized vectorized != reference\nraw:\n{plan}\noptimized:\n{optimized}"
        );
        prop_assert!(
            streaming_opt.bag_eq(&reference),
            "optimized streaming != reference\nraw:\n{plan}\noptimized:\n{optimized}"
        );
    }

    /// The same three-way differential check on *provenance-rewritten* plans: rules R1–R9
    /// produce wide joins and duplicated sub-plans, exactly the shapes the chunked join
    /// gathers and the column-pruning pass must not corrupt.
    #[test]
    fn vectorized_and_streaming_equal_reference_on_rewritten_plans(
        spec in spec_strategy(),
        r in rows_strategy(),
        s in rows_strategy(),
    ) {
        let catalog = catalog_with(&r, &s);
        let mut next_ref = 0;
        let plan = build(&spec, &catalog, &mut next_ref).build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        rewritten.validate().unwrap();

        let executor = Executor::new(catalog.clone());
        let reference = execute_reference(&catalog, &rewritten).unwrap();
        let vectorized = executor.execute(&rewritten).unwrap();
        let streaming = executor.execute_streaming(&rewritten).unwrap();
        prop_assert!(
            vectorized.bag_eq(&reference),
            "vectorized != reference on rewritten plan\n{rewritten}"
        );
        prop_assert!(
            streaming.bag_eq(&reference),
            "streaming != reference on rewritten plan\n{rewritten}"
        );

        let optimized = Optimizer::new().optimize(&rewritten).unwrap();
        optimized.validate().unwrap();
        let vectorized_opt = executor.execute(&optimized).unwrap();
        let streaming_opt = executor.execute_streaming(&optimized).unwrap();
        prop_assert!(
            vectorized_opt.bag_eq(&reference),
            "optimized vectorized != reference on rewritten plan\n{rewritten}"
        );
        prop_assert!(
            streaming_opt.bag_eq(&reference),
            "optimized streaming != reference on rewritten plan\n{rewritten}"
        );
    }

    /// A streaming/chunk-sliced LIMIT must agree with the reference (which materializes
    /// everything first) on deterministically ordered inputs.
    #[test]
    fn limit_agrees_with_reference_after_sort(
        r in rows_strategy(),
        limit in 0usize..10,
        offset in 0usize..4,
    ) {
        let catalog = catalog_with(&r, &[]);
        let scan = perm_algebra::PlanBuilder::scan("r", catalog.table_schema("r").unwrap(), 0);
        let plan = scan
            .sort(vec![
                perm_algebra::SortKey::asc(ScalarExpr::column(0, "k")),
                perm_algebra::SortKey::asc(ScalarExpr::column(1, "v")),
            ])
            .limit(Some(limit), offset)
            .build();
        let executor = Executor::new(catalog.clone());
        let reference = execute_reference(&catalog, &plan).unwrap();
        let vectorized = executor.execute(&plan).unwrap();
        let streaming = executor.execute_streaming(&plan).unwrap();
        prop_assert_eq!(vectorized.tuples(), reference.tuples());
        prop_assert_eq!(streaming.tuples(), reference.tuples());
    }
}

/// Chunk-boundary edge cases: relations of exactly 0, `DEFAULT_CHUNK_SIZE` and
/// `DEFAULT_CHUNK_SIZE + 1` rows flowing through scans, filters, projections, joins, DISTINCT,
/// aggregation and provenance rewriting. Every count is chosen so correctness depends on the
/// chunked operators handling empty batches and batch-boundary splits exactly.
#[test]
fn chunk_boundary_row_counts_agree_across_all_paths() {
    use perm_algebra::{PlanBuilder, DEFAULT_CHUNK_SIZE};

    for rows in [0usize, DEFAULT_CHUNK_SIZE, DEFAULT_CHUNK_SIZE + 1] {
        let r: Vec<(i64, i64)> = (0..rows as i64).map(|i| (i % 7, i % 3)).collect();
        let s: Vec<(i64, i64)> = (0..(rows / 2) as i64).map(|i| (i % 7, i % 5)).collect();
        let catalog = catalog_with(&r, &s);
        let scan = |name: &str, ref_id: usize| {
            PlanBuilder::scan(name, catalog.table_schema(name).unwrap(), ref_id)
        };

        // Plain scan.
        let plan = scan("r", 0).build();
        assert_three_way(&catalog, &plan, &format!("scan of {rows} rows"));

        // Filter that keeps roughly 1/7 of the rows (and nothing of an empty relation).
        let filtered =
            scan("r", 0).filter(ScalarExpr::column(0, "k").eq(ScalarExpr::literal(1i64))).build();
        assert_three_way(&catalog, &filtered, &format!("filtered scan of {rows} rows"));

        // Computed projection with DISTINCT.
        let projected = scan("r", 0)
            .project_distinct(vec![(
                ScalarExpr::binary(
                    BinaryOperator::Add,
                    ScalarExpr::column(0, "k"),
                    ScalarExpr::column(1, "v"),
                ),
                "kv".into(),
            )])
            .build();
        assert_three_way(&catalog, &projected, &format!("distinct projection of {rows} rows"));

        // Hash join whose probe side spans a chunk boundary.
        let joined = scan("r", 0)
            .join(
                scan("s", 1),
                JoinKind::Inner,
                Some(ScalarExpr::column(0, "k").eq(ScalarExpr::column(2, "k"))),
            )
            .build();
        assert_three_way(&catalog, &joined, &format!("hash join of {rows} rows"));

        // Left outer join: NULL padding interleaves with matches inside batches.
        let outer = scan("r", 0)
            .join(
                scan("s", 1),
                JoinKind::LeftOuter,
                Some(ScalarExpr::column(1, "v").eq(ScalarExpr::column(3, "v"))),
            )
            .build();
        assert_three_way(&catalog, &outer, &format!("left outer join of {rows} rows"));

        // Aggregation with group keys.
        let aggregated = scan("r", 0)
            .aggregate(
                vec![(ScalarExpr::column(0, "k"), "k".into())],
                vec![(
                    AggregateExpr::new(AggregateFunction::Sum, ScalarExpr::column(1, "v")),
                    "sum_v".into(),
                )],
            )
            .build();
        assert_three_way(&catalog, &aggregated, &format!("aggregation of {rows} rows"));

        // Bag difference (chunked set-operation path).
        let diff =
            scan("r", 0).set_op(scan("s", 1), SetOpKind::Difference, SetSemantics::Bag).build();
        assert_three_way(&catalog, &diff, &format!("bag difference of {rows} rows"));

        // A provenance-rewritten join (the paper's wide self-join shapes) at the boundary.
        let rewritten = ProvenanceRewriter::new().rewrite(&joined).unwrap();
        assert_three_way(&catalog, &rewritten, &format!("rewritten join of {rows} rows"));

        // Limit slicing exactly at and one past the chunk boundary.
        for limit in [DEFAULT_CHUNK_SIZE, DEFAULT_CHUNK_SIZE + 1] {
            let limited = scan("r", 0).limit(Some(limit), 1).build();
            let executor = Executor::new(catalog.clone());
            let vectorized = executor.execute(&limited).unwrap();
            let streaming = executor.execute_streaming(&limited).unwrap();
            assert_eq!(vectorized.tuples(), streaming.tuples(), "limit {limit} over {rows} rows");
        }
    }
}
