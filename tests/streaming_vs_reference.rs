//! Differential property tests: the **parallel** morsel-driven executor
//! (`Executor::execute_parallel`), the **vectorized** chunk executor (`Executor::execute`) and
//! the tuple-at-a-time **streaming** executor (`Executor::execute_streaming`) must all produce
//! exactly the same relations as the naive materializing **reference** evaluator on arbitrary
//! plans — plain and provenance-rewritten, optimized and unoptimized.
//!
//! Random plans cover the operator space the provenance rewriter emits: selections,
//! column-shuffling projections, DISTINCT, inner/outer/cross joins, bag/set set-operations and
//! grouped aggregation, nested to depth 3. Deterministic tests cover the chunk-boundary /
//! morsel-boundary edge cases (empty input, one row, exactly one full chunk, one row past a
//! chunk boundary, at worker counts 1 and 8), integer-overflow error behaviour, NaN sort keys
//! and cross-type (Int/Date) hash-key consistency.

use proptest::prelude::*;

use perm::prelude::*;
use perm_algebra::{
    AggregateExpr, AggregateFunction, BinaryOperator, JoinKind, ScalarExpr, Schema, SetOpKind,
    SetSemantics,
};
use perm_exec::{execute_reference, Executor, Optimizer, WorkerPool};

/// Worker pool shared by every differential case (4-way parallelism; the deterministic edge
/// cases below additionally exercise dedicated 1- and 8-worker pools).
fn shared_pool() -> &'static WorkerPool {
    static POOL: std::sync::OnceLock<WorkerPool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(4))
}

/// A recipe for a random plan over two union-compatible tables `r` and `s` (both `(k, v)`
/// integer relations). Every node produces a two-column output so specs compose freely.
#[derive(Debug, Clone)]
enum Spec {
    Scan {
        use_s: bool,
    },
    Filter {
        input: Box<Spec>,
        below: i64,
    },
    /// Swap the two columns (checks column remapping through pruning).
    Swap {
        input: Box<Spec>,
    },
    Distinct {
        input: Box<Spec>,
    },
    /// Join on `left.k = right.k`, then project back to `(left.k, right.v)`.
    Join {
        left: Box<Spec>,
        right: Box<Spec>,
        kind: u8,
    },
    SetOp {
        left: Box<Spec>,
        right: Box<Spec>,
        kind: u8,
        bag: bool,
    },
    /// `SELECT k, sum(v) GROUP BY k`.
    Aggregate {
        input: Box<Spec>,
    },
}

/// Decode a bounded-depth spec from a random byte genome (the vendored proptest shim has no
/// `prop_recursive`; shrinking the genome shrinks the plan).
fn decode(genome: &mut std::slice::Iter<'_, u8>, depth: usize) -> Spec {
    let byte = |g: &mut std::slice::Iter<'_, u8>| g.next().copied().unwrap_or(0);
    let b = byte(genome);
    if depth == 0 {
        return Spec::Scan { use_s: b & 1 == 1 };
    }
    match b % 8 {
        0 | 1 => Spec::Scan { use_s: b & 16 == 16 },
        2 => Spec::Filter {
            input: Box::new(decode(genome, depth - 1)),
            below: i64::from(byte(genome) % 6),
        },
        3 => Spec::Swap { input: Box::new(decode(genome, depth - 1)) },
        4 => Spec::Distinct { input: Box::new(decode(genome, depth - 1)) },
        5 => Spec::Join {
            left: Box::new(decode(genome, depth - 1)),
            right: Box::new(decode(genome, depth - 1)),
            kind: byte(genome) % 5,
        },
        6 => Spec::SetOp {
            left: Box::new(decode(genome, depth - 1)),
            right: Box::new(decode(genome, depth - 1)),
            kind: byte(genome) % 3,
            bag: b & 16 == 16,
        },
        _ => Spec::Aggregate { input: Box::new(decode(genome, depth - 1)) },
    }
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    proptest::collection::vec(0u8..=255, 1..32).prop_map(|genome| decode(&mut genome.iter(), 3))
}

fn build(spec: &Spec, catalog: &Catalog, next_ref: &mut usize) -> perm_algebra::PlanBuilder {
    match spec {
        Spec::Scan { use_s } => {
            let name = if *use_s { "s" } else { "r" };
            let ref_id = *next_ref;
            *next_ref += 1;
            perm_algebra::PlanBuilder::scan(name, catalog.table_schema(name).unwrap(), ref_id)
        }
        Spec::Filter { input, below } => {
            let b = build(input, catalog, next_ref);
            b.filter(ScalarExpr::binary(
                BinaryOperator::Lt,
                ScalarExpr::column(0, "k"),
                ScalarExpr::literal(*below),
            ))
        }
        Spec::Swap { input } => {
            let b = build(input, catalog, next_ref);
            b.project(vec![
                (ScalarExpr::column(1, "v"), "k".into()),
                (ScalarExpr::column(0, "k"), "v".into()),
            ])
        }
        Spec::Distinct { input } => {
            let b = build(input, catalog, next_ref);
            b.project_distinct(vec![
                (ScalarExpr::column(0, "k"), "k".into()),
                (ScalarExpr::column(1, "v"), "v".into()),
            ])
        }
        Spec::Join { left, right, kind } => {
            let l = build(left, catalog, next_ref);
            let r = build(right, catalog, next_ref);
            let kind = match kind {
                0 => JoinKind::Inner,
                1 => JoinKind::LeftOuter,
                2 => JoinKind::RightOuter,
                3 => JoinKind::FullOuter,
                _ => JoinKind::Cross,
            };
            let condition = (kind != JoinKind::Cross)
                .then(|| ScalarExpr::column(0, "k").eq(ScalarExpr::column(2, "k")));
            l.join(r, kind, condition).project(vec![
                (ScalarExpr::column(0, "k"), "k".into()),
                (ScalarExpr::column(3, "v"), "v".into()),
            ])
        }
        Spec::SetOp { left, right, kind, bag } => {
            let l = build(left, catalog, next_ref);
            let r = build(right, catalog, next_ref);
            let kind = match kind {
                0 => SetOpKind::Union,
                1 => SetOpKind::Intersect,
                _ => SetOpKind::Difference,
            };
            let semantics = if *bag { SetSemantics::Bag } else { SetSemantics::Set };
            l.set_op(r, kind, semantics)
        }
        Spec::Aggregate { input } => {
            let b = build(input, catalog, next_ref);
            b.aggregate(
                vec![(ScalarExpr::column(0, "k"), "k".into())],
                vec![(
                    AggregateExpr::new(AggregateFunction::Sum, ScalarExpr::column(1, "v")),
                    "v".into(),
                )],
            )
        }
    }
}

fn catalog_with(r: &[(i64, i64)], s: &[(i64, i64)]) -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    for (name, rows) in [("r", r), ("s", s)] {
        let tuples =
            rows.iter().map(|(k, v)| Tuple::new(vec![Value::Int(*k), Value::Int(*v)])).collect();
        catalog.create_table_with_data(name, Relation::from_parts(schema.clone(), tuples)).unwrap();
    }
    catalog
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..5, 0i64..4), 0..8)
}

/// Run one plan through all four execution paths and check the three fast paths against the
/// oracle. The parallel path must additionally equal the vectorized path *exactly* (same row
/// order), since morsel-order stitching is designed to preserve the sequential chunk sequence.
fn assert_four_way(catalog: &Catalog, plan: &perm_algebra::LogicalPlan, context: &str) {
    let executor = Executor::new(catalog.clone());
    let reference = execute_reference(catalog, plan).unwrap();
    let vectorized = executor.execute(plan).unwrap();
    let streaming = executor.execute_streaming(plan).unwrap();
    let parallel = executor.execute_parallel(plan, shared_pool()).unwrap();
    assert!(vectorized.bag_eq(&reference), "vectorized != reference on {context}\n{plan}");
    assert!(streaming.bag_eq(&reference), "streaming != reference on {context}\n{plan}");
    assert!(parallel.bag_eq(&reference), "parallel != reference on {context}\n{plan}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Vectorized, streaming and reference execution agree on arbitrary plans, with and
    /// without the optimizer (predicate pushdown, projection merging and column pruning
    /// included).
    #[test]
    fn vectorized_and_streaming_equal_reference(
        spec in spec_strategy(),
        r in rows_strategy(),
        s in rows_strategy(),
    ) {
        let catalog = catalog_with(&r, &s);
        let mut next_ref = 0;
        let plan = build(&spec, &catalog, &mut next_ref).build();
        plan.validate().unwrap();
        plan.verify().unwrap();

        let executor = Executor::new(catalog.clone());
        let reference = execute_reference(&catalog, &plan).unwrap();
        let vectorized = executor.execute(&plan).unwrap();
        let streaming = executor.execute_streaming(&plan).unwrap();
        let parallel = executor.execute_parallel(&plan, shared_pool()).unwrap();
        prop_assert!(
            vectorized.bag_eq(&reference),
            "vectorized != reference on raw plan\n{plan}"
        );
        prop_assert!(
            streaming.bag_eq(&reference),
            "streaming != reference on raw plan\n{plan}"
        );
        prop_assert!(
            parallel.bag_eq(&reference),
            "parallel != reference on raw plan\n{plan}"
        );

        let optimized = Optimizer::new().optimize(&plan).unwrap();
        optimized.validate().unwrap();
        optimized.verify().unwrap();
        let vectorized_opt = executor.execute(&optimized).unwrap();
        let streaming_opt = executor.execute_streaming(&optimized).unwrap();
        let parallel_opt = executor.execute_parallel(&optimized, shared_pool()).unwrap();
        prop_assert!(
            vectorized_opt.bag_eq(&reference),
            "optimized vectorized != reference\nraw:\n{plan}\noptimized:\n{optimized}"
        );
        prop_assert!(
            streaming_opt.bag_eq(&reference),
            "optimized streaming != reference\nraw:\n{plan}\noptimized:\n{optimized}"
        );
        prop_assert!(
            parallel_opt.bag_eq(&reference),
            "optimized parallel != reference\nraw:\n{plan}\noptimized:\n{optimized}"
        );
    }

    /// The same three-way differential check on *provenance-rewritten* plans: rules R1–R9
    /// produce wide joins and duplicated sub-plans, exactly the shapes the chunked join
    /// gathers and the column-pruning pass must not corrupt.
    #[test]
    fn vectorized_and_streaming_equal_reference_on_rewritten_plans(
        spec in spec_strategy(),
        r in rows_strategy(),
        s in rows_strategy(),
    ) {
        let catalog = catalog_with(&r, &s);
        let mut next_ref = 0;
        let plan = build(&spec, &catalog, &mut next_ref).build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        rewritten.validate().unwrap();
        rewritten.verify().unwrap();

        let executor = Executor::new(catalog.clone());
        let reference = execute_reference(&catalog, &rewritten).unwrap();
        let vectorized = executor.execute(&rewritten).unwrap();
        let streaming = executor.execute_streaming(&rewritten).unwrap();
        let parallel = executor.execute_parallel(&rewritten, shared_pool()).unwrap();
        prop_assert!(
            vectorized.bag_eq(&reference),
            "vectorized != reference on rewritten plan\n{rewritten}"
        );
        prop_assert!(
            streaming.bag_eq(&reference),
            "streaming != reference on rewritten plan\n{rewritten}"
        );
        prop_assert!(
            parallel.bag_eq(&reference),
            "parallel != reference on rewritten plan\n{rewritten}"
        );

        let optimized = Optimizer::new().optimize(&rewritten).unwrap();
        optimized.validate().unwrap();
        optimized.verify().unwrap();
        let vectorized_opt = executor.execute(&optimized).unwrap();
        let streaming_opt = executor.execute_streaming(&optimized).unwrap();
        let parallel_opt = executor.execute_parallel(&optimized, shared_pool()).unwrap();
        prop_assert!(
            vectorized_opt.bag_eq(&reference),
            "optimized vectorized != reference on rewritten plan\n{rewritten}"
        );
        prop_assert!(
            streaming_opt.bag_eq(&reference),
            "optimized streaming != reference on rewritten plan\n{rewritten}"
        );
        prop_assert!(
            parallel_opt.bag_eq(&reference),
            "optimized parallel != reference on rewritten plan\n{rewritten}"
        );
    }

    /// A streaming/chunk-sliced LIMIT must agree with the reference (which materializes
    /// everything first) on deterministically ordered inputs.
    #[test]
    fn limit_agrees_with_reference_after_sort(
        r in rows_strategy(),
        limit in 0usize..10,
        offset in 0usize..4,
    ) {
        let catalog = catalog_with(&r, &[]);
        let scan = perm_algebra::PlanBuilder::scan("r", catalog.table_schema("r").unwrap(), 0);
        let plan = scan
            .sort(vec![
                perm_algebra::SortKey::asc(ScalarExpr::column(0, "k")),
                perm_algebra::SortKey::asc(ScalarExpr::column(1, "v")),
            ])
            .limit(Some(limit), offset)
            .build();
        let executor = Executor::new(catalog.clone());
        let reference = execute_reference(&catalog, &plan).unwrap();
        let vectorized = executor.execute(&plan).unwrap();
        let streaming = executor.execute_streaming(&plan).unwrap();
        let parallel = executor.execute_parallel(&plan, shared_pool()).unwrap();
        prop_assert_eq!(vectorized.tuples(), reference.tuples());
        prop_assert_eq!(streaming.tuples(), reference.tuples());
        prop_assert_eq!(parallel.tuples(), reference.tuples());
    }
}

/// Chunk/morsel-boundary edge cases: relations of exactly 0, 1, `DEFAULT_CHUNK_SIZE - 1`,
/// `DEFAULT_CHUNK_SIZE` and `DEFAULT_CHUNK_SIZE + 1` rows flowing through scans, filters,
/// projections, joins, DISTINCT, aggregation and provenance rewriting. Every count is chosen
/// so correctness depends on the chunked operators handling empty batches, single-row morsels
/// and batch-boundary splits exactly.
#[test]
fn chunk_boundary_row_counts_agree_across_all_paths() {
    use perm_algebra::{PlanBuilder, DEFAULT_CHUNK_SIZE};

    for rows in [0usize, 1, DEFAULT_CHUNK_SIZE - 1, DEFAULT_CHUNK_SIZE, DEFAULT_CHUNK_SIZE + 1] {
        let r: Vec<(i64, i64)> = (0..rows as i64).map(|i| (i % 7, i % 3)).collect();
        let s: Vec<(i64, i64)> = (0..(rows / 2) as i64).map(|i| (i % 7, i % 5)).collect();
        let catalog = catalog_with(&r, &s);
        let scan = |name: &str, ref_id: usize| {
            PlanBuilder::scan(name, catalog.table_schema(name).unwrap(), ref_id)
        };

        // Plain scan.
        let plan = scan("r", 0).build();
        assert_four_way(&catalog, &plan, &format!("scan of {rows} rows"));

        // Filter that keeps roughly 1/7 of the rows (and nothing of an empty relation).
        let filtered =
            scan("r", 0).filter(ScalarExpr::column(0, "k").eq(ScalarExpr::literal(1i64))).build();
        assert_four_way(&catalog, &filtered, &format!("filtered scan of {rows} rows"));

        // Computed projection with DISTINCT.
        let projected = scan("r", 0)
            .project_distinct(vec![(
                ScalarExpr::binary(
                    BinaryOperator::Add,
                    ScalarExpr::column(0, "k"),
                    ScalarExpr::column(1, "v"),
                ),
                "kv".into(),
            )])
            .build();
        assert_four_way(&catalog, &projected, &format!("distinct projection of {rows} rows"));

        // Hash join whose probe side spans a chunk boundary.
        let joined = scan("r", 0)
            .join(
                scan("s", 1),
                JoinKind::Inner,
                Some(ScalarExpr::column(0, "k").eq(ScalarExpr::column(2, "k"))),
            )
            .build();
        assert_four_way(&catalog, &joined, &format!("hash join of {rows} rows"));

        // Left outer join: NULL padding interleaves with matches inside batches.
        let outer = scan("r", 0)
            .join(
                scan("s", 1),
                JoinKind::LeftOuter,
                Some(ScalarExpr::column(1, "v").eq(ScalarExpr::column(3, "v"))),
            )
            .build();
        assert_four_way(&catalog, &outer, &format!("left outer join of {rows} rows"));

        // Aggregation with group keys.
        let aggregated = scan("r", 0)
            .aggregate(
                vec![(ScalarExpr::column(0, "k"), "k".into())],
                vec![(
                    AggregateExpr::new(AggregateFunction::Sum, ScalarExpr::column(1, "v")),
                    "sum_v".into(),
                )],
            )
            .build();
        assert_four_way(&catalog, &aggregated, &format!("aggregation of {rows} rows"));

        // Bag difference (chunked set-operation path).
        let diff =
            scan("r", 0).set_op(scan("s", 1), SetOpKind::Difference, SetSemantics::Bag).build();
        assert_four_way(&catalog, &diff, &format!("bag difference of {rows} rows"));

        // A provenance-rewritten join (the paper's wide self-join shapes) at the boundary.
        let rewritten = ProvenanceRewriter::new().rewrite(&joined).unwrap();
        assert_four_way(&catalog, &rewritten, &format!("rewritten join of {rows} rows"));

        // Limit slicing exactly at and one past the chunk boundary.
        for limit in [DEFAULT_CHUNK_SIZE, DEFAULT_CHUNK_SIZE + 1] {
            let limited = scan("r", 0).limit(Some(limit), 1).build();
            let executor = Executor::new(catalog.clone());
            let vectorized = executor.execute(&limited).unwrap();
            let streaming = executor.execute_streaming(&limited).unwrap();
            let parallel = executor.execute_parallel(&limited, shared_pool()).unwrap();
            assert_eq!(vectorized.tuples(), streaming.tuples(), "limit {limit} over {rows} rows");
            assert_eq!(
                parallel.tuples(),
                vectorized.tuples(),
                "parallel limit {limit} over {rows} rows"
            );
        }

        // The same boundary counts through dedicated 1- and 8-worker pools: worker count must
        // never change any result (a 1-worker pool runs the full morsel machinery on the
        // session thread; 8 workers race morsel claims).
        for workers in [1usize, 8] {
            let pool = WorkerPool::new(workers);
            let executor = Executor::new(catalog.clone());
            for (plan, what) in [(&plan, "scan"), (&joined, "join"), (&aggregated, "agg")] {
                let reference = execute_reference(&catalog, plan).unwrap();
                let parallel = executor.execute_parallel(plan, &pool).unwrap();
                assert!(
                    parallel.bag_eq(&reference),
                    "{what} of {rows} rows diverges at {workers} workers"
                );
            }
        }
    }
}

/// Integer overflow raises the identical `ExecError::ArithmeticOverflow` from the row,
/// vectorized and parallel pipelines (never a silent wrap, never a pipeline-dependent value).
#[test]
fn overflow_error_identical_across_pipelines() {
    use perm_algebra::{BinaryOperator as Op, PlanBuilder};
    use perm_exec::ExecError;

    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("x", DataType::Int)]);
    // The poisoned row sits past the first chunk boundary so the parallel pipeline has to
    // surface an error from a later morsel.
    let rows: Vec<Tuple> = (0..1500i64)
        .map(|i| Tuple::new(vec![Value::Int(if i == 1300 { i64::MAX } else { i })]))
        .collect();
    catalog.create_table_with_data("t", Relation::from_parts(schema, rows)).unwrap();

    for (op, operation) in
        [(Op::Add, "addition"), (Op::Sub, "subtraction"), (Op::Mul, "multiplication")]
    {
        let scan = PlanBuilder::scan("t", catalog.table_schema("t").unwrap(), 0);
        let expr = ScalarExpr::binary(
            op,
            ScalarExpr::column(0, "x"),
            ScalarExpr::literal(if op == Op::Sub { i64::MIN + 1 } else { 2i64 }),
        );
        let plan = scan.project(vec![(expr, "y".into())]).build();
        let expected = ExecError::ArithmeticOverflow { operation: operation.into() };
        let executor = Executor::new(catalog.clone());
        assert_eq!(executor.execute(&plan).unwrap_err(), expected, "vectorized {operation}");
        assert_eq!(
            executor.execute_streaming(&plan).unwrap_err(),
            expected,
            "streaming {operation}"
        );
        assert_eq!(
            executor.execute_parallel(&plan, shared_pool()).unwrap_err(),
            expected,
            "parallel {operation}"
        );
    }
}

/// NaN sort keys: ORDER BY places NaN last, deterministically, on every pipeline — while a
/// comparison *predicate* against NaN stays NULL-like false everywhere.
#[test]
fn nan_sort_keys_and_predicates_agree_across_pipelines() {
    use perm_algebra::{PlanBuilder, SortKey};

    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("f", DataType::Float), ("tag", DataType::Int)]);
    let rows = vec![
        Tuple::new(vec![Value::Float(2.5), Value::Int(0)]),
        Tuple::new(vec![Value::Float(f64::NAN), Value::Int(1)]),
        Tuple::new(vec![Value::Float(-1.0), Value::Int(2)]),
        Tuple::new(vec![Value::Float(f64::NAN), Value::Int(3)]),
        Tuple::new(vec![Value::Null, Value::Int(4)]),
        Tuple::new(vec![Value::Float(0.0), Value::Int(5)]),
    ];
    catalog.create_table_with_data("t", Relation::from_parts(schema, rows)).unwrap();
    let scan = || PlanBuilder::scan("t", catalog.table_schema("t").unwrap(), 0);

    // Sort ascending by f, tie-broken by tag so the expected sequence is unique: NULL first,
    // then -1.0, 0.0, 2.5, then both NaNs (in tag order).
    let plan = scan()
        .sort(vec![
            SortKey::asc(ScalarExpr::column(0, "f")),
            SortKey::asc(ScalarExpr::column(1, "tag")),
        ])
        .project(vec![(ScalarExpr::column(1, "tag"), "tag".into())])
        .build();
    let expected: Vec<i64> = vec![4, 2, 5, 0, 1, 3];
    let executor = Executor::new(catalog.clone());
    for (name, result) in [
        ("vectorized", executor.execute(&plan).unwrap()),
        ("streaming", executor.execute_streaming(&plan).unwrap()),
        ("parallel", executor.execute_parallel(&plan, shared_pool()).unwrap()),
    ] {
        let tags: Vec<i64> = result
            .tuples()
            .iter()
            .map(|t| match &t[0] {
                Value::Int(i) => *i,
                other => panic!("unexpected tag {other:?}"),
            })
            .collect();
        assert_eq!(tags, expected, "{name} NaN sort order");
    }

    // Predicates on NaN evaluate to NULL-like false: `f < NaN` and `f = NaN` keep no rows.
    for op in [perm_algebra::BinaryOperator::Lt, perm_algebra::BinaryOperator::Eq] {
        let plan = scan()
            .filter(ScalarExpr::binary(
                op,
                ScalarExpr::column(0, "f"),
                ScalarExpr::literal(f64::NAN),
            ))
            .build();
        assert_four_way(&catalog, &plan, "NaN comparison predicate");
        assert_eq!(
            Executor::new(catalog.clone()).execute(&plan).unwrap().num_rows(),
            0,
            "NaN predicates keep no rows"
        );
    }
}

/// Cross-type hash-key consistency: an Int column equi-joined against a Date column matches
/// numerically (a date is its day count, per `sql_cmp`), identically through the hash-based
/// pipelines and the nested-loop reference — and NaN float keys never match under plain `=`
/// but do match themselves under null-safe equality.
#[test]
fn cross_type_hash_keys_agree_with_nested_loop_semantics() {
    use perm_algebra::PlanBuilder;

    let catalog = Catalog::new();
    let ints = Schema::from_pairs(&[("i", DataType::Int)]);
    let dates = Schema::from_pairs(&[("d", DataType::Date)]);
    catalog
        .create_table_with_data(
            "ints",
            Relation::from_parts(
                ints,
                vec![
                    Tuple::new(vec![Value::Int(5)]),
                    Tuple::new(vec![Value::Int(9)]),
                    Tuple::new(vec![Value::Null]),
                ],
            ),
        )
        .unwrap();
    catalog
        .create_table_with_data(
            "dates",
            Relation::from_parts(
                dates,
                vec![
                    Tuple::new(vec![Value::Date(5)]),
                    Tuple::new(vec![Value::Date(7)]),
                    Tuple::new(vec![Value::Null]),
                ],
            ),
        )
        .unwrap();
    let cond = ScalarExpr::column(0, "i").eq(ScalarExpr::column(1, "d"));
    let plan = PlanBuilder::scan("ints", catalog.table_schema("ints").unwrap(), 0)
        .join(
            PlanBuilder::scan("dates", catalog.table_schema("dates").unwrap(), 1),
            JoinKind::Inner,
            Some(cond),
        )
        .build();
    assert_four_way(&catalog, &plan, "Int = Date equi-join");
    // The hash join must find exactly the numeric match (5 = day 5), like the nested loop.
    assert_eq!(Executor::new(catalog.clone()).execute(&plan).unwrap().num_rows(), 1);

    // NaN keys: no match under `=`, self-match under IS NOT DISTINCT FROM — identical on
    // every pipeline (hash tables would otherwise match NaN to NaN via grouping equality).
    let floats = Schema::from_pairs(&[("f", DataType::Float)]);
    let rows = vec![Tuple::new(vec![Value::Float(f64::NAN)]), Tuple::new(vec![Value::Float(1.0)])];
    catalog
        .create_table_with_data("fa", Relation::from_parts(floats.clone(), rows.clone()))
        .unwrap();
    catalog.create_table_with_data("fb", Relation::from_parts(floats, rows)).unwrap();
    for (null_safe, expected_rows) in [(false, 1usize), (true, 2)] {
        let a = PlanBuilder::scan("fa", catalog.table_schema("fa").unwrap(), 0);
        let b = PlanBuilder::scan("fb", catalog.table_schema("fb").unwrap(), 1);
        let cond = if null_safe {
            ScalarExpr::column(0, "f").null_safe_eq(ScalarExpr::column(1, "f"))
        } else {
            ScalarExpr::column(0, "f").eq(ScalarExpr::column(1, "f"))
        };
        let plan = a.join(b, JoinKind::Inner, Some(cond)).build();
        assert_four_way(&catalog, &plan, "NaN equi-join key");
        assert_eq!(
            Executor::new(catalog.clone()).execute(&plan).unwrap().num_rows(),
            expected_rows,
            "null_safe={null_safe}"
        );
    }
}

/// Catalog of `sizes.len()` join-graph tables `t0..tN` with deliberately different sizes, so
/// the cost-based reordering pass has real cardinality differences to exploit. Keys land in a
/// small shared domain (join results stay non-trivial), values are unique per table.
fn join_graph_catalog(sizes: &[usize]) -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    for (i, &size) in sizes.iter().enumerate() {
        let tuples = (0..size)
            .map(|j| Tuple::new(vec![Value::Int((j % 6) as i64), Value::Int((i * 100 + j) as i64)]))
            .collect();
        catalog
            .create_table_with_data(&format!("t{i}"), Relation::from_parts(schema.clone(), tuples))
            .unwrap();
    }
    catalog
}

/// Left-deep join chain over `t0..t{n-1}`: table `i` joins on `k` against the `k` column of a
/// genome-chosen *earlier* table (chains, stars and mixtures). At most two joins are outer —
/// enough to exercise the reorder barriers without the provenance rewrite's outer-join
/// expansion blowing up the plan.
fn join_graph_plan(
    catalog: &Catalog,
    n: usize,
    kinds: &[u8],
    anchors: &[u8],
) -> perm_algebra::LogicalPlan {
    let scan = |i: usize| {
        let name = format!("t{i}");
        perm_algebra::PlanBuilder::scan(&name, catalog.table_schema(&name).unwrap(), i)
    };
    let mut builder = scan(0);
    let mut arity = 2;
    let mut outer_budget = 2u8;
    for i in 1..n {
        let mut kind = match kinds[i - 1] % 8 {
            0..=4 => JoinKind::Inner,
            5 => JoinKind::LeftOuter,
            6 => JoinKind::RightOuter,
            _ => JoinKind::FullOuter,
        };
        if kind != JoinKind::Inner {
            if outer_budget == 0 {
                kind = JoinKind::Inner;
            } else {
                outer_budget -= 1;
            }
        }
        // Join the new table's key against the key of a random already-joined table.
        let anchor = (anchors[i - 1] as usize) % i;
        let condition = ScalarExpr::column(2 * anchor, "k").eq(ScalarExpr::column(arity, "k"));
        builder = builder.join(scan(i), kind, Some(condition));
        arity += 2;
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized join graphs over 3–8 differently-sized relations: the statistics-driven
    /// join reordering and build-side swap must preserve bag semantics exactly — on the plain
    /// plan and on the provenance-rewritten one — across all four execution paths.
    #[test]
    fn reordered_join_graphs_agree_across_all_paths(
        n in 3usize..9,
        sizes in proptest::collection::vec(0usize..13, 8..9),
        kinds in proptest::collection::vec(0u8..8, 7..8),
        anchors in proptest::collection::vec(0u8..8, 7..8),
    ) {
        let catalog = join_graph_catalog(&sizes[..n]);
        let plan = join_graph_plan(&catalog, n, &kinds, &anchors);
        plan.validate().unwrap();
        plan.verify().unwrap();
        let stats = perm_exec::TableStatsView::from_snapshot(&catalog.snapshot());
        // Aggressive thresholds: the generated tables hold 0–12 rows, far below the
        // engine-default policy's floors, and the point here is to maximize plan churn.
        let optimizer =
            Optimizer::new().with_reorder_policy(perm_exec::ReorderPolicy::aggressive());

        let (optimized, _report) = optimizer.optimize_with_stats(&plan, &stats).unwrap();
        optimized.validate().unwrap();
        optimized.verify().unwrap();
        assert_four_way(&catalog, &plan, "raw join graph");
        assert_four_way(&catalog, &optimized, "reordered join graph");
        let reference = execute_reference(&catalog, &plan).unwrap();
        let reordered = execute_reference(&catalog, &optimized).unwrap();
        prop_assert!(
            reordered.bag_eq(&reference),
            "reordering changed the result\nraw:\n{plan}\noptimized:\n{optimized}"
        );

        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        rewritten.validate().unwrap();
        rewritten.verify().unwrap();
        let (rewritten_opt, _) = optimizer.optimize_with_stats(&rewritten, &stats).unwrap();
        rewritten_opt.validate().unwrap();
        rewritten_opt.verify().unwrap();
        assert_four_way(&catalog, &rewritten, "rewritten join graph");
        assert_four_way(&catalog, &rewritten_opt, "rewritten+reordered join graph");
        let prov_reference = execute_reference(&catalog, &rewritten).unwrap();
        let prov_reordered = execute_reference(&catalog, &rewritten_opt).unwrap();
        prop_assert!(
            prov_reordered.bag_eq(&prov_reference),
            "reordering changed provenance results\nraw:\n{rewritten}\noptimized:\n{rewritten_opt}"
        );
    }
}
