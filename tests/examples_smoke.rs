//! Smoke test: every `examples/*.rs` must build and run to completion.
//!
//! Plain `cargo test` already *compiles* all examples (cargo builds example targets for the
//! test profile), so compilation rot is caught for free. Actually *running* them re-invokes
//! cargo, which serializes on the build lock — that is fine in CI but wasteful locally, so the
//! run-tests are `#[ignore]` by default and CI executes them explicitly:
//!
//! ```text
//! cargo test -q --test examples_smoke -- --ignored --test-threads 1
//! ```

use std::process::Command;

/// Runs `cargo run --release --example <name>` with the same cargo that runs this test.
fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "-q", "--release", "--example", name])
        .env("CARGO_TERM_COLOR", "never")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
#[ignore = "re-invokes cargo; run explicitly (CI does) with --ignored"]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
#[ignore = "re-invokes cargo; run explicitly (CI does) with --ignored"]
fn sql_shell_runs() {
    run_example("sql_shell");
}

#[test]
#[ignore = "re-invokes cargo; run explicitly (CI does) with --ignored"]
fn shop_provenance_runs() {
    run_example("shop_provenance");
}

#[test]
#[ignore = "re-invokes cargo; run explicitly (CI does) with --ignored"]
fn incremental_provenance_runs() {
    run_example("incremental_provenance");
}

#[test]
#[ignore = "re-invokes cargo; run explicitly (CI does) with --ignored"]
fn tpch_provenance_runs() {
    run_example("tpch_provenance");
}

#[test]
#[ignore = "re-invokes cargo; run explicitly (CI does) with --ignored"]
fn warehouse_debugging_runs() {
    run_example("warehouse_debugging");
}

#[test]
#[ignore = "re-invokes cargo; run explicitly (CI does) with --ignored"]
fn service_throughput_runs() {
    run_example("service_throughput");
}
