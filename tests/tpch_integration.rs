//! Integration tests spanning the whole stack on a generated TPC-H database: every supported
//! benchmark query runs normally and with provenance, and the results have the structural
//! properties the paper's evaluation relies on.

use perm::prelude::*;
use perm::tpch::queries::{
    add_provenance_keyword, supported_query_ids, tpch_query, unsupported_query_ids, variant_rng,
};
use perm::tpch::workloads::{
    nested_aggregation_query, set_operation_query, spj_query, trio_selection_queries, workload_rng,
};

fn tpch_db() -> PermDb {
    let catalog = generate_catalog(TpchScale::new(0.0005), 2024);
    PermDb::with_catalog(catalog, ProvenanceOptions::default().with_row_budget(2_000_000))
}

#[test]
fn all_supported_queries_and_their_provenance_variants_run() {
    let db = tpch_db();
    for id in supported_query_ids() {
        let sql = tpch_query(id).generate(&mut variant_rng(id, 0));
        let normal =
            db.execute_sql(&sql).unwrap_or_else(|e| panic!("query {id} failed: {e}\n{sql}"));
        let provenance = db
            .execute_sql(&add_provenance_keyword(&sql))
            .unwrap_or_else(|e| panic!("provenance of query {id} failed: {e}"));

        // The provenance result keeps the original columns in front and appends prov_* columns.
        assert!(provenance.schema().arity() > normal.schema().arity(), "query {id}");
        let normal_names = normal.schema().attribute_names();
        let prov_names = provenance.schema().attribute_names();
        assert_eq!(&prov_names[..normal_names.len()], normal_names.as_slice(), "query {id}");
        assert!(
            prov_names[normal_names.len()..].iter().all(|n| n.starts_with("prov_")),
            "query {id}"
        );

        // Every original result tuple appears among the provenance rows (projected), unless it
        // stems from an aggregation over an empty group-set (paper footnote 4). Queries with a
        // LIMIT (3 and 10) are excluded: as in the PostgreSQL-based prototype the limit applies
        // to the rewritten (duplicated) rows, so the cut-off falls differently.
        let has_limit = matches!(id, 3 | 10);
        let original_cols: Vec<usize> = (0..normal.arity()).collect();
        let projected = provenance.project(&original_cols);
        if normal.num_rows() > 0 && provenance.num_rows() > 0 && !has_limit {
            for t in normal.tuples().iter().take(20) {
                assert!(
                    projected.tuples().contains(t),
                    "query {id}: original tuple {t} missing from provenance result"
                );
            }
        }
    }
}

#[test]
fn unsupported_queries_are_the_papers_seven() {
    assert_eq!(unsupported_query_ids(), vec![2, 4, 17, 18, 20, 21, 22]);
}

#[test]
fn provenance_result_growth_matches_the_papers_observations() {
    // Figure 11's headline observation: aggregation queries over large inputs (query 1) blow up
    // the provenance result cardinality by orders of magnitude, because every aggregated tuple
    // is attached to its group's result row.
    let db = tpch_db();
    let q1 = tpch_query(1).generate(&mut variant_rng(1, 0));
    let normal = db.execute_sql(&q1).unwrap();
    let provenance = db.execute_sql(&add_provenance_keyword(&q1)).unwrap();
    assert!(normal.num_rows() <= 6, "Q1 groups by two flags");
    let lineitems = db.catalog().table_row_count("lineitem").unwrap();
    assert!(
        provenance.num_rows() > normal.num_rows() * 10,
        "Q1 provenance should explode (normal {}, provenance {})",
        normal.num_rows(),
        provenance.num_rows()
    );
    assert!(provenance.num_rows() <= lineitems, "each lineitem contributes to exactly one group");
}

#[test]
fn artificial_workloads_run_with_provenance() {
    let db = tpch_db();
    let parts = db.catalog().table_row_count("part").unwrap();

    let setop = set_operation_query(&mut workload_rng("setop", 1), 3, parts);
    assert!(db.execute_sql(&add_provenance_keyword(&setop)).is_ok());

    let spj = spj_query(&mut workload_rng("spj", 1), 4, parts);
    let spj_prov = db.execute_sql(&add_provenance_keyword(&spj)).unwrap();
    assert!(spj_prov.schema().provenance_indices().len() >= 8, "four part references");

    let aspj = nested_aggregation_query(3, parts);
    let aspj_prov = db.execute_sql(&add_provenance_keyword(&aspj)).unwrap();
    assert_eq!(aspj_prov.num_rows(), parts, "every part tuple contributes through the chain");
}

#[test]
fn trio_baseline_and_perm_agree_on_simple_selections() {
    let db = tpch_db();
    let suppliers = db.catalog().table_row_count("supplier").unwrap();
    let queries = trio_selection_queries(&mut workload_rng("trio", 9), 5, suppliers);

    let mut trio = TrioStyleDb::new(db.catalog().clone());
    for (i, sql) in queries.iter().enumerate() {
        let perm_result = db.provenance_of_query(sql).unwrap();
        let table = format!("itest_trio_{i}");
        trio.derive_table(&table, sql).unwrap();
        let traced = trio.trace_all(&table).unwrap();
        // For a simple selection, each result tuple has exactly one contributing supplier tuple,
        // and Perm produces exactly one provenance row per result tuple.
        assert_eq!(perm_result.num_rows(), traced.len());
        assert!(traced.iter().all(|contributors| contributors.len() == 1));
    }
}

#[test]
fn stored_tpch_provenance_supports_follow_up_queries() {
    let db = tpch_db();
    let q6 = tpch_query(6).generate(&mut variant_rng(6, 0));
    db.store_provenance("q6_prov", &q6).unwrap();
    // The stored provenance is ordinary data: aggregate over the contributing lineitems.
    let follow_up =
        db.execute_sql("SELECT count(*) AS contributing_lineitems FROM q6_prov").unwrap();
    assert_eq!(follow_up.num_rows(), 1);
}
