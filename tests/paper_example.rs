//! End-to-end reproduction of the paper's running example (Figures 2 and 4) through the full
//! SQL pipeline, plus the SQL-PLE features demonstrated in §IV-A.

use perm::prelude::*;

fn example_db() -> PermDb {
    let db = PermDb::new();
    db.execute_script(
        "CREATE TABLE shop  (name TEXT, numEmpl INT);
         CREATE TABLE sales (sName TEXT, itemId INT);
         CREATE TABLE items (id INT, price INT);
         INSERT INTO shop  VALUES ('Merdies', 3), ('Joba', 14);
         INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), ('Merdies', 2), ('Joba', 3), ('Joba', 3);
         INSERT INTO items VALUES (1, 100), (2, 10), (3, 25);",
    )
    .expect("example database loads");
    db
}

fn tuple_of(values: Vec<Value>) -> Tuple {
    Tuple::new(values)
}

#[test]
fn figure_4_result_relation_is_reproduced_exactly() {
    let db = example_db();
    let result = db
        .execute_sql(
            "SELECT PROVENANCE name, sum(price) AS sum_price
             FROM shop, sales, items
             WHERE name = sName AND itemId = id
             GROUP BY name",
        )
        .unwrap();

    assert_eq!(
        result.schema().attribute_names(),
        vec![
            "name",
            "sum_price",
            "prov_shop_name",
            "prov_shop_numempl",
            "prov_sales_sname",
            "prov_sales_itemid",
            "prov_items_id",
            "prov_items_price"
        ]
    );

    let expected: Vec<Tuple> = vec![
        tuple_of(vec![
            Value::text("Joba"),
            Value::Int(50),
            Value::text("Joba"),
            Value::Int(14),
            Value::text("Joba"),
            Value::Int(3),
            Value::Int(3),
            Value::Int(25),
        ]),
        tuple_of(vec![
            Value::text("Joba"),
            Value::Int(50),
            Value::text("Joba"),
            Value::Int(14),
            Value::text("Joba"),
            Value::Int(3),
            Value::Int(3),
            Value::Int(25),
        ]),
        tuple_of(vec![
            Value::text("Merdies"),
            Value::Int(120),
            Value::text("Merdies"),
            Value::Int(3),
            Value::text("Merdies"),
            Value::Int(1),
            Value::Int(1),
            Value::Int(100),
        ]),
        tuple_of(vec![
            Value::text("Merdies"),
            Value::Int(120),
            Value::text("Merdies"),
            Value::Int(3),
            Value::text("Merdies"),
            Value::Int(2),
            Value::Int(2),
            Value::Int(10),
        ]),
        tuple_of(vec![
            Value::text("Merdies"),
            Value::Int(120),
            Value::text("Merdies"),
            Value::Int(3),
            Value::text("Merdies"),
            Value::Int(2),
            Value::Int(2),
            Value::Int(10),
        ]),
    ];
    assert_eq!(result.sorted().tuples(), expected.as_slice());
}

#[test]
fn provenance_keyword_does_not_change_the_original_columns() {
    let db = example_db();
    let normal = db
        .execute_sql("SELECT name, sum(price) AS total FROM shop, sales, items WHERE name = sName AND itemId = id GROUP BY name")
        .unwrap();
    let provenance = db
        .execute_sql("SELECT PROVENANCE name, sum(price) AS total FROM shop, sales, items WHERE name = sName AND itemId = id GROUP BY name")
        .unwrap();
    // §III-E: Π_T(q+) = Π_T(q) modulo multiplicity.
    let original_cols: Vec<usize> = (0..normal.arity()).collect();
    assert!(provenance.project(&original_cols).set_eq(&normal));
}

#[test]
fn sql_ple_examples_from_section_four() {
    let db = example_db();

    // §IV-A.2: provenance query used as a subquery (q1).
    let q1 = db
        .execute_sql(
            "SELECT prov_items_id
             FROM (SELECT PROVENANCE name, sum(price) AS sum FROM shop, sales, items
                   WHERE name = sName AND itemId = id GROUP BY name) AS prov
             WHERE sum > 100",
        )
        .unwrap();
    assert_eq!(
        q1.sorted().tuples().iter().map(|t| t[0].clone()).collect::<Vec<_>>(),
        vec![Value::Int(1), Value::Int(2), Value::Int(2)]
    );

    // §IV-A.3: incremental provenance from a provenance view.
    db.execute_sql(
        "CREATE VIEW totalItemPrice AS SELECT PROVENANCE sum(price) AS total FROM items",
    )
    .unwrap();
    let incremental = db
        .execute_sql(
            "SELECT PROVENANCE total * 10
             FROM totalItemPrice PROVENANCE (prov_items_id, prov_items_price)",
        )
        .unwrap();
    assert_eq!(incremental.num_rows(), 3);
    assert_eq!(incremental.schema().provenance_indices().len(), 2);

    // §IV-A.4: BASERELATION limits the provenance scope.
    let limited = db
        .execute_sql(
            "SELECT PROVENANCE total * 10
             FROM (SELECT sum(price) AS total FROM items) BASERELATION AS sub",
        )
        .unwrap();
    assert_eq!(limited.num_rows(), 1);
    assert_eq!(limited.schema().attribute_names()[1], "prov_sub_total");

    // §IV-E: the disjunctive sublink example.
    let sublink = db
        .execute_sql(
            "SELECT PROVENANCE name FROM shop
             WHERE numEmpl < 10 OR name IN (SELECT sName FROM sales)",
        )
        .unwrap();
    let merdies_rows = sublink.tuples().iter().filter(|t| t[0] == Value::text("Merdies")).count();
    assert_eq!(
        merdies_rows, 5,
        "all sales tuples contribute to Merdies (condition holds regardless of the sublink)"
    );
}

#[test]
fn eager_storage_and_reuse_round_trip() {
    let db = example_db();
    let rows = db
        .store_provenance("qex_prov", "SELECT name, sum(price) AS total FROM shop, sales, items WHERE name = sName AND itemId = id GROUP BY name")
        .unwrap();
    assert_eq!(rows, 5);
    // Stored provenance is an ordinary table: plain SQL applies.
    let heavy_items =
        db.execute_sql("SELECT DISTINCT prov_items_id FROM qex_prov WHERE total > 100").unwrap();
    assert_eq!(heavy_items.num_rows(), 2);
    // ... and it can seed incremental provenance computations.
    let reused = db
        .execute_sql(
            "SELECT PROVENANCE total FROM qex_prov PROVENANCE (prov_items_id, prov_items_price) WHERE total > 100",
        )
        .unwrap();
    assert_eq!(reused.schema().provenance_indices().len(), 2);
    assert_eq!(reused.num_rows(), 3);
}
