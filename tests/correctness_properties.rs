//! Property-based correctness tests for the provenance rewriter.
//!
//! The paper's §III-E correctness argument has two parts, both checked here on randomly
//! generated databases and queries:
//!
//! 1. **Original result preservation**: `Π_T(q+) = Π_T(q)` modulo multiplicity — the rewritten
//!    query neither invents nor loses original result tuples.
//! 2. **Equivalence with Cui–Widom lineage**: the provenance attached to each original result
//!    tuple, projected per base relation, equals the lineage the inversion approach computes.

use proptest::prelude::*;

use perm::baselines::cui_widom::{perm_matches_oracle, CuiWidomTracer, ViewDefinition};
use perm::prelude::*;
use perm_algebra::{AggregateExpr, AggregateFunction, BinaryOperator, ScalarExpr, Schema};
use perm_exec::execute_plan;

/// A small random database with two base relations `r` (3 columns) and `s` (2 columns).
#[derive(Debug, Clone)]
struct RandomDatabase {
    r_rows: Vec<(i64, i64, i64)>,
    s_rows: Vec<(i64, i64)>,
}

fn database_strategy() -> impl Strategy<Value = RandomDatabase> {
    let r_row = (0i64..6, 0i64..4, 0i64..10);
    let s_row = (0i64..6, 0i64..5);
    (proptest::collection::vec(r_row, 1..12), proptest::collection::vec(s_row, 1..10))
        .prop_map(|(r_rows, s_rows)| RandomDatabase { r_rows, s_rows })
}

/// A random query over the two relations, expressed both as a Perm plan input and as a
/// Cui–Widom view definition.
#[derive(Debug, Clone)]
struct RandomQuery {
    /// Filter constant applied to r.a.
    filter_below: i64,
    /// Whether to join with s (on r.b = s.x) or query r alone.
    join_s: bool,
    /// Whether to aggregate (sum of r.c grouped by r.b) or project.
    aggregate: bool,
}

fn query_strategy() -> impl Strategy<Value = RandomQuery> {
    (0i64..7, any::<bool>(), any::<bool>()).prop_map(|(filter_below, join_s, aggregate)| {
        RandomQuery { filter_below, join_s, aggregate }
    })
}

fn build_catalog(db: &RandomDatabase) -> Catalog {
    let catalog = Catalog::new();
    let r_schema =
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Int)]);
    let r_rows = db
        .r_rows
        .iter()
        .map(|(a, b, c)| Tuple::new(vec![Value::Int(*a), Value::Int(*b), Value::Int(*c)]))
        .collect();
    catalog.create_table_with_data("r", Relation::from_parts(r_schema, r_rows)).unwrap();
    let s_schema = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]);
    let s_rows =
        db.s_rows.iter().map(|(x, y)| Tuple::new(vec![Value::Int(*x), Value::Int(*y)])).collect();
    catalog.create_table_with_data("s", Relation::from_parts(s_schema, s_rows)).unwrap();
    catalog
}

/// Build the query as a Cui–Widom [`ViewDefinition`]; the Perm input plan is derived from it so
/// that both systems answer exactly the same question.
fn build_view(query: &RandomQuery) -> ViewDefinition {
    // Combined schema when joining: r(a,b,c) ++ s(x,y); r alone otherwise.
    let a = ScalarExpr::column(0, "a");
    let b = ScalarExpr::column(1, "b");
    let c = ScalarExpr::column(2, "c");
    let relations: Vec<String> =
        if query.join_s { vec!["r".into(), "s".into()] } else { vec!["r".into()] };
    let mut condition =
        ScalarExpr::binary(BinaryOperator::Lt, a, ScalarExpr::literal(query.filter_below));
    if query.join_s {
        let x = ScalarExpr::column(3, "x");
        condition = condition.and(b.clone().eq(x));
    }
    if query.aggregate {
        ViewDefinition::aspj(
            relations,
            Some(condition),
            vec![(b, "b".into())],
            vec![(AggregateExpr::new(AggregateFunction::Sum, c), "sum_c".into())],
        )
    } else {
        let projection = if query.join_s {
            vec![(b, "b".into()), (c, "c".into()), (ScalarExpr::column(4, "y"), "y".into())]
        } else {
            vec![(b, "b".into()), (c, "c".into())]
        };
        ViewDefinition::spj(relations, Some(condition), projection)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Part 1 of the §III-E correctness lemma on random SPJ / ASPJ queries.
    #[test]
    fn rewritten_queries_preserve_the_original_result(
        db in database_strategy(),
        query in query_strategy(),
    ) {
        let catalog = build_catalog(&db);
        let tracer = CuiWidomTracer::new(catalog.clone());
        let view = build_view(&query);
        let plan = tracer.view_plan(&view).unwrap();

        let original = execute_plan(&catalog, &plan).unwrap();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        rewritten.validate().unwrap();
        let provenance = execute_plan(&catalog, &rewritten).unwrap();

        let original_cols: Vec<usize> = (0..original.arity()).collect();
        let projected = provenance.project(&original_cols);
        prop_assert!(
            projected.set_eq(&original),
            "original tuples changed:\noriginal:\n{}\nprojected provenance:\n{}",
            original.sorted().to_table_string(),
            projected.sorted().to_table_string()
        );
    }

    /// Part 2: Perm's influence-contribution provenance equals Cui–Widom lineage.
    #[test]
    fn perm_provenance_equals_cui_widom_lineage(
        db in database_strategy(),
        query in query_strategy(),
    ) {
        let catalog = build_catalog(&db);
        let tracer = CuiWidomTracer::new(catalog.clone());
        let view = build_view(&query);
        let plan = tracer.view_plan(&view).unwrap();

        let original = execute_plan(&catalog, &plan).unwrap();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let provenance = execute_plan(&catalog, &rewritten).unwrap();

        // Compare per distinct original result tuple.
        let mut distinct: Vec<Tuple> = original.tuples().to_vec();
        distinct.sort();
        distinct.dedup();
        for tuple in distinct {
            let oracle = tracer.lineage(&view, &tuple).unwrap();
            prop_assert!(
                perm_matches_oracle(&provenance, original.arity(), &tuple, &oracle),
                "provenance mismatch for result tuple {tuple}\nperm result:\n{}",
                provenance.sorted().to_table_string()
            );
        }
    }

    /// The provenance schema always appends one attribute group per base relation reference and
    /// marks exactly those attributes as provenance.
    #[test]
    fn provenance_schema_shape(db in database_strategy(), query in query_strategy()) {
        let catalog = build_catalog(&db);
        let tracer = CuiWidomTracer::new(catalog.clone());
        let view = build_view(&query);
        let plan = tracer.view_plan(&view).unwrap();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();

        let original_arity = plan.schema().arity();
        let expected_prov: usize = if query.join_s { 3 + 2 } else { 3 };
        let schema = rewritten.schema();
        prop_assert_eq!(schema.arity(), original_arity + expected_prov);
        prop_assert_eq!(schema.provenance_indices().len(), expected_prov);
        let names: Vec<String> = schema
            .provenance_indices()
            .into_iter()
            .map(|i| schema.attributes()[i].name.clone())
            .collect();
        for name in &names {
            prop_assert!(name.starts_with("prov_"), "bad provenance attribute name {name}");
        }
        // Names are unique.
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        prop_assert_eq!(deduped.len(), names.len());
    }
}
