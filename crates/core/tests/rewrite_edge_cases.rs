//! Edge-case integration tests for the provenance rewriter and the `PermDb` facade, beyond the
//! happy paths covered by the unit tests: naming under many repeated references, rewriting of
//! already-rewritten inputs, ORDER BY / LIMIT interaction, set-difference variants, DISTINCT
//! blocks, multiple sublinks in one predicate, and error reporting.

use perm_core::{PermDb, PermError, ProvenanceOptions};

fn db() -> PermDb {
    let db = PermDb::new();
    db.execute_script(
        "CREATE TABLE shop  (name TEXT, numEmpl INT);
         CREATE TABLE sales (sName TEXT, itemId INT);
         CREATE TABLE items (id INT, price INT);
         INSERT INTO shop  VALUES ('Merdies', 3), ('Joba', 14);
         INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), ('Merdies', 2), ('Joba', 3), ('Joba', 3);
         INSERT INTO items VALUES (1, 100), (2, 10), (3, 25);",
    )
    .unwrap();
    db
}

#[test]
fn repeated_relation_references_get_numbered_provenance_prefixes() {
    let db = db();
    let result = db
        .execute_sql(
            "SELECT PROVENANCE a.id FROM items a, items b, items c WHERE a.id = b.id AND b.id = c.id",
        )
        .unwrap();
    let names = result.schema().attribute_names();
    assert!(names.contains(&"prov_items_id".to_string()));
    assert!(names.contains(&"prov_items_1_id".to_string()));
    assert!(names.contains(&"prov_items_2_id".to_string()));
    assert_eq!(result.schema().provenance_indices().len(), 6);
    assert_eq!(result.num_rows(), 3);
}

#[test]
fn provenance_of_distinct_projection_keeps_distinct_witnesses() {
    let db = db();
    let normal = db.execute_sql("SELECT DISTINCT sName FROM sales").unwrap();
    assert_eq!(normal.num_rows(), 2);
    let provenance = db.execute_sql("SELECT DISTINCT PROVENANCE sName FROM sales").unwrap();
    // Rule R2 keeps the set semantics of the projection but extends its attribute list, so each
    // result name is annotated with every *distinct* contributing sales tuple:
    // Merdies × {(Merdies,1), (Merdies,2)} and Joba × {(Joba,3)}.
    assert_eq!(provenance.num_rows(), 3);
    assert!(provenance.num_rows() >= normal.num_rows());
}

#[test]
fn provenance_with_order_by_and_limit_applies_after_rewriting() {
    let db = db();
    let result = db
        .execute_sql("SELECT PROVENANCE id, price FROM items ORDER BY price DESC LIMIT 2")
        .unwrap();
    assert_eq!(result.num_rows(), 2);
    // Ordered by price descending: the most expensive item first, annotated with itself.
    assert_eq!(result.tuples()[0].values()[1].as_i64(), Some(100));
    assert_eq!(result.tuples()[0].values()[3].as_i64(), Some(100));
}

#[test]
fn set_difference_set_and_bag_semantics() {
    let db = db();
    // Bag difference (EXCEPT ALL): the sales item ids {1,2,2,3,3} cancel every occurrence in
    // items. Per rule R9 the provenance schema still carries both sides: the left input's
    // attributes (items: id, price) plus the differing right-side tuples (sales: sName, itemId).
    let bag = db
        .execute_sql("SELECT PROVENANCE id FROM items EXCEPT ALL SELECT itemId FROM sales")
        .unwrap();
    assert_eq!(bag.schema().provenance_indices().len(), 4);
    // Set difference (EXCEPT): {1,2,3} \ {1,2,3} = ∅ — no rows, but the query still runs.
    let set =
        db.execute_sql("SELECT PROVENANCE id FROM items EXCEPT SELECT itemId FROM sales").unwrap();
    assert_eq!(set.num_rows(), 0);
}

#[test]
fn rewriting_twice_reuses_the_first_rewrite() {
    // Rewriting a plan that is already a provenance plan must not duplicate provenance columns:
    // the ProvenanceAnnotation produced by the first rewrite declares the P-list, which the
    // second rewrite picks up (this is what makes incremental provenance work).
    let db = db();
    let plan = db.analyze_sql_plan("SELECT id, price FROM items WHERE price > 20").unwrap();
    let once = db.rewrite_plan(&plan).unwrap();
    let twice = db.rewrite_plan(&once).unwrap();
    assert_eq!(once.schema().provenance_indices().len(), 2);
    assert_eq!(twice.schema().provenance_indices().len(), 2);
    let once_result = db.execute_plan(&once).unwrap();
    let twice_result = db.execute_plan(&twice).unwrap();
    assert!(once_result.bag_eq(&twice_result));
}

#[test]
fn multiple_sublinks_in_one_predicate() {
    let db = db();
    let result = db
        .execute_sql(
            "SELECT PROVENANCE name FROM shop \
             WHERE name IN (SELECT sName FROM sales) \
               AND numEmpl < (SELECT max(itemId) + 20 FROM sales)",
        )
        .unwrap();
    // Both shops satisfy both conditions; provenance includes attributes from shop and from both
    // sublink relations (two references to sales).
    let names = result.schema().attribute_names();
    assert!(names.iter().any(|n| n.starts_with("prov_shop_")));
    assert!(names.iter().any(|n| n == "prov_sales_sname"));
    assert!(names.iter().any(|n| n == "prov_sales_1_sname"));
    let normal = db
        .execute_sql(
            "SELECT name FROM shop \
             WHERE name IN (SELECT sName FROM sales) \
               AND numEmpl < (SELECT max(itemId) + 20 FROM sales)",
        )
        .unwrap();
    assert_eq!(normal.num_rows(), 2);
    // Every original tuple is still present among the provenance rows.
    for t in normal.tuples() {
        assert!(result.tuples().iter().any(|p| p.get(0) == t.get(0)));
    }
}

#[test]
fn provenance_of_union_query_via_sql() {
    let db = db();
    let result = db
        .execute_sql("SELECT PROVENANCE name FROM shop UNION ALL SELECT sName FROM sales")
        .unwrap();
    // Schema: name + provenance of shop (2 attrs) + provenance of sales (2 attrs).
    assert_eq!(result.schema().arity(), 5);
    assert_eq!(result.schema().provenance_indices().len(), 4);
    // Rule R6 joins the union result back to both rewritten inputs, so every row has provenance
    // from at least one side — and a name occurring in *both* inputs (every shop name also
    // appears in sales.sName) is annotated with witnesses from both sides on the same row.
    for t in result.tuples() {
        let from_shop = !t[1].is_null();
        let from_sales = !t[3].is_null();
        assert!(from_shop || from_sales, "at least one side contributes per row: {t}");
    }
    assert!(
        result.tuples().iter().any(|t| !t[1].is_null() && !t[3].is_null()),
        "names present in both inputs carry witnesses from both sides"
    );
}

#[test]
fn error_paths_are_reported_cleanly() {
    let db = db();
    // Unknown provenance attribute in a PROVENANCE (attrs) annotation.
    let err =
        db.execute_sql("SELECT PROVENANCE id FROM items PROVENANCE (does_not_exist)").unwrap_err();
    assert!(err.to_string().contains("does_not_exist"), "{err}");
    // Correlated sublinks are rejected, as in the paper.
    let err = db
        .execute_sql("SELECT PROVENANCE name FROM shop WHERE EXISTS (SELECT 1 FROM sales WHERE sName = name)")
        .unwrap_err();
    assert!(matches!(err, PermError::Sql(_)), "{err}");
    assert!(err.to_string().to_lowercase().contains("correlated"), "{err}");
}

#[test]
fn row_budget_and_timeout_options_are_honoured_for_provenance_queries() {
    let mut db = db();
    db.set_options(ProvenanceOptions::default().with_row_budget(2));
    let err = db.execute_sql("SELECT PROVENANCE sum(price) FROM items").unwrap_err();
    assert!(matches!(err, PermError::Exec(_)));
    // Restoring generous options makes the same query succeed again.
    db.set_options(ProvenanceOptions::default());
    assert!(db.execute_sql("SELECT PROVENANCE sum(price) FROM items").is_ok());
}

#[test]
fn provenance_attributes_survive_view_unfolding() {
    let db = db();
    db.execute_sql(
        "CREATE VIEW shop_sales AS SELECT PROVENANCE name, itemId FROM shop, sales WHERE name = sName",
    )
    .unwrap();
    // Selecting from the view exposes the provenance attributes computed by the view body.
    let through_view = db.execute_sql("SELECT prov_sales_itemid, name FROM shop_sales").unwrap();
    assert_eq!(through_view.num_rows(), 5);
    // And the view composes with further provenance computation that treats it as a base
    // relation (scope-limited provenance).
    let limited =
        db.execute_sql("SELECT PROVENANCE name FROM shop_sales BASERELATION AS v").unwrap();
    assert!(limited.schema().attribute_names().iter().any(|n| n.starts_with("prov_v_")));
}

#[test]
fn column_pruning_narrows_r3_r4_rewritten_joins_without_changing_results() {
    // An R3 (selection) + R4 (join) rewrite: the provenance output needs every attribute of
    // `shop` and `sales`, but `items` only contributes its join key to the original result, so
    // after the PROVENANCE projection selects its columns, pruning must not widen anything and
    // optimized/unoptimized execution must agree bag-wise.
    let db = db();
    let sql = "SELECT PROVENANCE name FROM shop, sales WHERE name = sName AND numEmpl > 2";
    let optimized_result = db.execute_sql(sql).unwrap();
    let mut unopt = PermDb::with_catalog(
        db.catalog().clone(),
        ProvenanceOptions::default().without_optimizer(),
    );
    unopt.set_options(ProvenanceOptions::default().without_optimizer());
    let unoptimized_result = unopt.execute_sql(sql).unwrap();
    assert!(optimized_result.bag_eq(&unoptimized_result));
    assert_eq!(
        optimized_result.schema().attribute_names(),
        vec![
            "name",
            "prov_shop_name",
            "prov_shop_numempl",
            "prov_sales_sname",
            "prov_sales_itemid"
        ]
    );

    // The optimized plan's join must carry only the surviving attributes: 1 original + 4
    // provenance + the right side's join key — 6 columns, not the raw rewrite's 8 (which
    // duplicates numEmpl and itemId once more through the R1 copies).
    let plan = db.plan_sql(sql).unwrap();
    fn max_join_width(plan: &perm_algebra::LogicalPlan) -> usize {
        let own = match plan {
            perm_algebra::LogicalPlan::Join { .. } => plan.output_arity(),
            _ => 0,
        };
        plan.children().iter().map(|c| max_join_width(c)).max().unwrap_or(0).max(own)
    }
    assert_eq!(
        max_join_width(&plan),
        6,
        "pruned provenance join should carry exactly 6 columns:\n{plan}"
    );
}
