//! # perm-core
//!
//! The core of the Perm provenance management system (Glavic & Alonso, ICDE 2009): the
//! **provenance rewriter** implementing rewrite rules R1–R9 and the sublink / SQL-PLE handling
//! of §IV, plus [`PermDb`], the user-facing facade that wires the rewriter into the SQL front
//! end, optimizer and executor.
//!
//! ## Quick start
//!
//! ```
//! use perm_core::PermDb;
//!
//! let db = PermDb::new();
//! db.execute_script(
//!     "CREATE TABLE items (id INT, price INT);
//!      INSERT INTO items VALUES (1, 100), (2, 10), (3, 25);",
//! )
//! .unwrap();
//!
//! // Lazy provenance computation through the SQL-PLE PROVENANCE keyword.
//! let result = db
//!     .execute_sql("SELECT PROVENANCE sum(price) AS total FROM items")
//!     .unwrap();
//! assert_eq!(
//!     result.schema().attribute_names(),
//!     vec!["total", "prov_items_id", "prov_items_price"]
//! );
//! // Every item contributed to the sum, so the single original row is duplicated three times.
//! assert_eq!(result.num_rows(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Non-test code must surface failures as structured errors, never panic on a recoverable
// condition (tests are exempt via clippy.toml); `cargo xtask lint` checks this header.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod db;
pub mod error;
pub mod naming;
pub mod rewrite;

pub use db::{PermDb, ProvenanceOptions};
pub use error::PermError;
pub use naming::{is_provenance_attribute_name, ProvenanceNaming};
pub use rewrite::ProvenanceRewriter;
