//! The Perm provenance rewriter: the paper's core contribution (§III-C, Figure 3; §IV).
//!
//! [`ProvenanceRewriter::rewrite`] transforms a logical plan `q` into `q+`, a plan over the same
//! algebra whose result is the original result extended with *provenance attributes*: for every
//! base relation accessed by `q`, the complete contributing tuples according to
//! influence-contribution (Why-) semantics. Original result tuples are duplicated once per
//! combination of contributing tuples, exactly as in the paper's representation (§III-B).
//!
//! The rewrite is implemented operator-by-operator following the rules of Figure 3:
//!
//! | rule | operator | strategy |
//! |------|----------|----------|
//! | R1 | base relation | duplicate all attributes under `prov_<rel>_<attr>` names |
//! | R2 | projection | append the input's provenance attributes to the projection list |
//! | R3 | selection | apply the unmodified selection to the rewritten input |
//! | R4 | cross product / joins | join the rewritten inputs (`(T1 ⋈ T2)+ = T1+ ⋈ T2+`) |
//! | R5 | aggregation | join the original aggregation with the rewritten input on the grouping attributes |
//! | R6/R7 | union / intersection | join the original set operation with both rewritten inputs on the original attributes |
//! | R8/R9 | set difference | left input joined on equality; all (differing) right tuples attached |
//!
//! Invariant maintained by every rule: the rewritten plan's schema starts with the original
//! schema (same attributes, same positions) so that expressions of enclosing operators remain
//! valid without rebinding, followed by the provenance attributes (the *P-list*).
//!
//! Uncorrelated sublinks in selection predicates are handled as described in §IV-E: the
//! rewritten sublink query is pulled into the range table via a join whose condition accepts a
//! sublink tuple if the surrounding predicate can be satisfied either through the sublink
//! comparison or independently of it (which reproduces the paper's provenance blow-up for
//! negated / disjunctive sublinks, e.g. TPC-H Q16).

use std::sync::Arc;

use perm_algebra::{
    BinaryOperator, JoinKind, LogicalPlan, ProvenanceAnnotationKind, ScalarExpr, SetOpKind,
    SetSemantics, SublinkKind, UnaryOperator, Value,
};

use crate::error::PermError;
use crate::naming::ProvenanceNaming;

/// The provenance rewriter.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceRewriter;

/// The result of rewriting one plan node.
#[derive(Debug, Clone)]
struct Rewritten {
    /// The rewritten plan. Its schema starts with the node's original attributes.
    plan: Arc<LogicalPlan>,
    /// Arity of the original (pre-rewrite) node.
    original_arity: usize,
    /// Positions of the provenance attributes within `plan`'s schema.
    prov_positions: Vec<usize>,
}

impl Rewritten {
    fn arity(&self) -> usize {
        self.plan.schema().arity()
    }

    /// `(expression, name)` pairs referencing this node's provenance attributes, for use in an
    /// enclosing projection.
    fn prov_exprs(&self) -> Vec<(ScalarExpr, String)> {
        let schema = self.plan.schema();
        self.prov_positions
            .iter()
            .map(|&p| {
                let name = schema
                    .attribute(p)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|_| format!("prov_{p}"));
                (ScalarExpr::column(p, name.clone()), name)
            })
            .collect()
    }
}

impl ProvenanceRewriter {
    /// Create a rewriter.
    pub fn new() -> ProvenanceRewriter {
        ProvenanceRewriter
    }

    /// Rewrite `plan` into its provenance-computing form `plan+`.
    ///
    /// The returned plan's schema is the original schema followed by the provenance attributes;
    /// the provenance attributes are marked (`Attribute::provenance == true`) so that callers can
    /// partition the result via [`perm_algebra::Schema::provenance_indices`].
    pub fn rewrite(&self, plan: &LogicalPlan) -> Result<LogicalPlan, PermError> {
        let mut naming = ProvenanceNaming::new();
        let rewritten = self.rewrite_node(plan, &mut naming)?;
        let schema = rewritten.plan.schema();
        let prov_names: Vec<String> = rewritten
            .prov_positions
            .iter()
            .map(|&p| schema.attribute(p).map(|a| a.name.clone()))
            .collect::<Result<_, _>>()?;
        let plan = LogicalPlan::ProvenanceAnnotation {
            input: rewritten.plan,
            kind: ProvenanceAnnotationKind::AlreadyRewritten(prov_names),
        };
        // Plan-boundary type verification (debug builds / `PERM_VERIFY_PLANS`): a rewrite rule
        // that mis-types a plan must fail here, at its source, not as a runtime wire error.
        if perm_algebra::verification_enabled() {
            if let Err(mut err) = plan.verify() {
                err.context = format!("provenance rewrite: {}", err.context);
                return Err(PermError::Algebra(err.into()));
            }
        }
        Ok(plan)
    }

    /// The names of the provenance attributes the rewrite of `plan` will produce, without
    /// performing the full rewrite (used for reporting).
    pub fn provenance_attribute_names(&self, plan: &LogicalPlan) -> Result<Vec<String>, PermError> {
        let rewritten = self.rewrite(plan)?;
        let schema = rewritten.schema();
        Ok(schema
            .provenance_indices()
            .into_iter()
            .map(|i| schema.attributes()[i].name.clone())
            .collect())
    }

    fn rewrite_node(
        &self,
        plan: &LogicalPlan,
        naming: &mut ProvenanceNaming,
    ) -> Result<Rewritten, PermError> {
        match plan {
            LogicalPlan::BaseRelation { name, .. } => {
                Ok(self.rewrite_as_base_relation(plan, name, naming))
            }
            LogicalPlan::Values { .. } => Ok(self.rewrite_as_base_relation(plan, "values", naming)),
            LogicalPlan::ProvenanceAnnotation { input, kind } => match kind {
                // SQL-PLE BASERELATION: limited provenance scope — rule R1 applied to the whole
                // annotated sub-plan (§IV-A.4).
                ProvenanceAnnotationKind::BaseRelation => {
                    let label = relation_label(input);
                    Ok(self.rewrite_as_base_relation(input, &label, naming))
                }
                // SQL-PLE PROVENANCE (attrs): external / stored provenance — the sub-plan is
                // already rewritten and the listed attributes form its P-list (§IV-A.3).
                ProvenanceAnnotationKind::AlreadyRewritten(attrs) => {
                    let schema = input.schema();
                    let mut prov_positions = Vec::with_capacity(attrs.len());
                    for attr in attrs {
                        let pos = schema.resolve(attr).map_err(|_| {
                            PermError::rewrite(format!(
                                "PROVENANCE clause names attribute '{attr}' which does not exist in the annotated from-item"
                            ))
                        })?;
                        prov_positions.push(pos);
                    }
                    Ok(Rewritten {
                        plan: input.clone(),
                        original_arity: schema.arity(),
                        prov_positions,
                    })
                }
            },
            LogicalPlan::Projection { input, exprs, distinct } => {
                // R2: append the input's provenance attributes to the projection list.
                let child = self.rewrite_node(input, naming)?;
                let mut new_exprs = exprs.clone();
                new_exprs.extend(child.prov_exprs());
                let original_arity = exprs.len();
                let plan = LogicalPlan::Projection {
                    input: child.plan,
                    exprs: new_exprs,
                    distinct: *distinct,
                };
                Ok(suffix_rewritten(plan, original_arity))
            }
            LogicalPlan::Selection { input, predicate } => {
                let child = self.rewrite_node(input, naming)?;
                if predicate.has_sublink() {
                    self.rewrite_selection_with_sublinks(child, predicate, naming)
                } else {
                    // R3: the unmodified selection applies to the rewritten input.
                    Ok(Rewritten {
                        plan: Arc::new(LogicalPlan::Selection {
                            input: child.plan.clone(),
                            predicate: predicate.clone(),
                        }),
                        original_arity: child.original_arity,
                        prov_positions: child.prov_positions,
                    })
                }
            }
            LogicalPlan::Join { left, right, kind, condition } => {
                // R4 (and its join-type generalisations): (T1 ⋈ T2)+ = T1+ ⋈ T2+.
                let l = self.rewrite_node(left, naming)?;
                let r = self.rewrite_node(right, naming)?;
                let l_orig = left.schema().arity();
                let r_orig = right.schema().arity();
                let l_arity = l.arity();
                // The original join condition refers to (T1 ++ T2); in (T1+ ++ T2+) the right
                // side's original attributes moved right by the width of T1's P-list.
                let remapped = condition.as_ref().map(|c| {
                    c.map_columns(&mut |i| if i < l_orig { i } else { i - l_orig + l_arity })
                });
                let join = LogicalPlan::Join {
                    left: l.plan.clone(),
                    right: r.plan.clone(),
                    kind: *kind,
                    condition: remapped,
                };
                // Restore the prefix invariant: original attributes of both inputs first, then
                // both P-lists.
                let join_schema = join.schema();
                let mut exprs: Vec<(ScalarExpr, String)> = Vec::new();
                for i in 0..l_orig {
                    let name = join_schema.attribute(i)?.name.clone();
                    exprs.push((ScalarExpr::column(i, name.clone()), name));
                }
                for i in 0..r_orig {
                    let pos = l_arity + i;
                    let name = join_schema.attribute(pos)?.name.clone();
                    exprs.push((ScalarExpr::column(pos, name.clone()), name));
                }
                for &p in &l.prov_positions {
                    let name = join_schema.attribute(p)?.name.clone();
                    exprs.push((ScalarExpr::column(p, name.clone()), name));
                }
                for &p in &r.prov_positions {
                    let pos = l_arity + p;
                    let name = join_schema.attribute(pos)?.name.clone();
                    exprs.push((ScalarExpr::column(pos, name.clone()), name));
                }
                let original_arity = l_orig + r_orig;
                let plan =
                    LogicalPlan::Projection { input: Arc::new(join), exprs, distinct: false };
                Ok(suffix_rewritten(plan, original_arity))
            }
            LogicalPlan::Aggregation { input, group_by, aggregates } => {
                // R5: join the original aggregation with the rewritten input on the grouping
                // attributes (null-safe, matching SQL GROUP BY null grouping).
                let child = self.rewrite_node(input, naming)?;
                let agg_arity = group_by.len() + aggregates.len();

                // Right side: Π_{G→Ĝ, P(T+)}(T+).
                let mut right_exprs: Vec<(ScalarExpr, String)> = group_by
                    .iter()
                    .enumerate()
                    .map(|(i, (g, name))| (g.clone(), format!("hat_{i}_{name}")))
                    .collect();
                right_exprs.extend(child.prov_exprs());
                let right = LogicalPlan::Projection {
                    input: child.plan.clone(),
                    exprs: right_exprs,
                    distinct: false,
                };

                // Join condition: G = Ĝ (null-safe equality). Empty G ⇒ cross product: every
                // input tuple contributed to the single global aggregate.
                let condition = if group_by.is_empty() {
                    None
                } else {
                    Some(ScalarExpr::conjunction(
                        (0..group_by.len())
                            .map(|i| {
                                ScalarExpr::column(i, group_by[i].1.clone()).null_safe_eq(
                                    ScalarExpr::column(agg_arity + i, format!("hat_{i}")),
                                )
                            })
                            .collect(),
                    ))
                };
                let join_kind = if group_by.is_empty() { JoinKind::Cross } else { JoinKind::Inner };
                let join = LogicalPlan::Join {
                    left: Arc::new(plan.clone()),
                    right: Arc::new(right),
                    kind: join_kind,
                    condition,
                };

                // Top projection: original aggregation output followed by the P-list.
                let agg_schema = plan.schema();
                let mut exprs: Vec<(ScalarExpr, String)> = Vec::new();
                for i in 0..agg_arity {
                    let name = agg_schema.attribute(i)?.name.clone();
                    exprs.push((ScalarExpr::column(i, name.clone()), name));
                }
                let right_offset = agg_arity + group_by.len();
                let child_schema = child.plan.schema();
                for (k, &p) in child.prov_positions.iter().enumerate() {
                    let name = child_schema.attribute(p)?.name.clone();
                    exprs.push((ScalarExpr::column(right_offset + k, name.clone()), name));
                }
                let plan =
                    LogicalPlan::Projection { input: Arc::new(join), exprs, distinct: false };
                Ok(suffix_rewritten(plan, agg_arity))
            }
            LogicalPlan::SetOp { left, right, kind, .. } => {
                self.rewrite_set_operation(plan, left, right, *kind, naming)
            }
            LogicalPlan::Sort { input, keys } => {
                let child = self.rewrite_node(input, naming)?;
                Ok(Rewritten {
                    plan: Arc::new(LogicalPlan::Sort {
                        input: child.plan.clone(),
                        keys: keys.clone(),
                    }),
                    original_arity: child.original_arity,
                    prov_positions: child.prov_positions,
                })
            }
            LogicalPlan::Limit { input, limit, offset } => {
                // LIMIT is not part of the paper's algebra; we pass it through, which bounds the
                // number of provenance rows rather than the number of original rows. Queries that
                // need exact LIMIT semantics should place the LIMIT outside the PROVENANCE block.
                let child = self.rewrite_node(input, naming)?;
                Ok(Rewritten {
                    plan: Arc::new(LogicalPlan::Limit {
                        input: child.plan.clone(),
                        limit: *limit,
                        offset: *offset,
                    }),
                    original_arity: child.original_arity,
                    prov_positions: child.prov_positions,
                })
            }
            LogicalPlan::SubqueryAlias { input, alias } => {
                let child = self.rewrite_node(input, naming)?;
                Ok(Rewritten {
                    plan: Arc::new(LogicalPlan::SubqueryAlias {
                        input: child.plan.clone(),
                        alias: alias.clone(),
                    }),
                    original_arity: child.original_arity,
                    prov_positions: child.prov_positions,
                })
            }
        }
    }

    /// Rule R1 (also used for the `BASERELATION` annotation and literal `VALUES` relations):
    /// duplicate every attribute of `plan` under a provenance attribute name.
    fn rewrite_as_base_relation(
        &self,
        plan: &LogicalPlan,
        relation_name: &str,
        naming: &mut ProvenanceNaming,
    ) -> Rewritten {
        let schema = plan.schema();
        let prefix = naming.next_prefix(relation_name);
        let mut exprs: Vec<(ScalarExpr, String)> = Vec::with_capacity(schema.arity() * 2);
        for (i, attr) in schema.iter() {
            exprs.push((ScalarExpr::column(i, attr.name.clone()), attr.name.clone()));
        }
        for (i, attr) in schema.iter() {
            let prov_name = ProvenanceNaming::attribute_name(&prefix, &attr.name);
            exprs.push((ScalarExpr::column(i, attr.name.clone()), prov_name));
        }
        let original_arity = schema.arity();
        let rewritten =
            LogicalPlan::Projection { input: Arc::new(plan.clone()), exprs, distinct: false };
        suffix_rewritten(rewritten, original_arity)
    }

    /// Rules R6–R9: set operations.
    fn rewrite_set_operation(
        &self,
        original: &LogicalPlan,
        left: &Arc<LogicalPlan>,
        right: &Arc<LogicalPlan>,
        kind: SetOpKind,
        naming: &mut ProvenanceNaming,
    ) -> Result<Rewritten, PermError> {
        let l = self.rewrite_node(left, naming)?;
        let r = self.rewrite_node(right, naming)?;
        let n = original.schema().arity();
        let original_schema = original.schema();

        // Left provenance side: Π_{T1→T̂1, P(T1+)}(T1+), joined on the original attributes.
        let left_schema = left.schema();
        let mut left_exprs: Vec<(ScalarExpr, String)> = (0..n)
            .map(|i| {
                let name = left_schema.attributes()[i].name.clone();
                (ScalarExpr::column(i, name.clone()), format!("lhat_{i}_{name}"))
            })
            .collect();
        left_exprs.extend(l.prov_exprs());
        let left_side =
            LogicalPlan::Projection { input: l.plan.clone(), exprs: left_exprs, distinct: false };
        let p1 = l.prov_positions.len();

        // The join kind on the left side: union tuples may stem from only one input (left outer
        // join); intersection tuples exist in both (inner join); difference tuples always stem
        // from T1 (left outer join keeps them even if something unexpected fails to match).
        let left_join_kind = match kind {
            SetOpKind::Intersect => JoinKind::Inner,
            _ => JoinKind::LeftOuter,
        };
        let left_condition = ScalarExpr::conjunction(
            (0..n)
                .map(|i| {
                    ScalarExpr::column(i, format!("c{i}"))
                        .null_safe_eq(ScalarExpr::column(n + i, format!("lhat_{i}")))
                })
                .collect(),
        );
        let join1 = LogicalPlan::Join {
            left: Arc::new(original.clone()),
            right: Arc::new(left_side),
            kind: left_join_kind,
            condition: Some(left_condition),
        };
        let join1_arity = n + n + p1;

        // Right provenance side.
        let (right_side, right_condition, right_join_kind, right_orig_width) = match kind {
            SetOpKind::Union | SetOpKind::Intersect => {
                let right_schema = right.schema();
                let mut right_exprs: Vec<(ScalarExpr, String)> = (0..n)
                    .map(|i| {
                        let name = right_schema.attributes()[i].name.clone();
                        (ScalarExpr::column(i, name.clone()), format!("rhat_{i}_{name}"))
                    })
                    .collect();
                right_exprs.extend(r.prov_exprs());
                let side = LogicalPlan::Projection {
                    input: r.plan.clone(),
                    exprs: right_exprs,
                    distinct: false,
                };
                let condition = ScalarExpr::conjunction(
                    (0..n)
                        .map(|i| {
                            ScalarExpr::column(i, format!("c{i}")).null_safe_eq(ScalarExpr::column(
                                join1_arity + i,
                                format!("rhat_{i}"),
                            ))
                        })
                        .collect(),
                );
                let join_kind = if kind == SetOpKind::Intersect {
                    JoinKind::Inner
                } else {
                    JoinKind::LeftOuter
                };
                (side, condition, join_kind, n)
            }
            SetOpKind::Difference => {
                // R8 (set semantics) / R9 (bag semantics): the provenance of a difference result
                // tuple includes all tuples of T2 that differ from it (R9) — for set semantics
                // the inequality can be dropped because equal tuples cannot appear in the result.
                let semantics = match original {
                    LogicalPlan::SetOp { semantics, .. } => *semantics,
                    _ => SetSemantics::Bag,
                };
                let side = (*r.plan).clone();
                let condition = match semantics {
                    SetSemantics::Set => ScalarExpr::Literal(Value::Bool(true)),
                    SetSemantics::Bag => {
                        // "differs in at least one attribute"
                        let diffs: Vec<ScalarExpr> = (0..n)
                            .map(|i| {
                                ScalarExpr::binary(
                                    BinaryOperator::IsDistinctFrom,
                                    ScalarExpr::column(i, format!("c{i}")),
                                    ScalarExpr::column(join1_arity + i, format!("r{i}")),
                                )
                            })
                            .collect();
                        diffs
                            .into_iter()
                            .reduce(|a, b| a.or(b))
                            .unwrap_or(ScalarExpr::Literal(Value::Bool(true)))
                    }
                };
                (side, condition, JoinKind::LeftOuter, right.schema().arity())
            }
        };
        let join2 = LogicalPlan::Join {
            left: Arc::new(join1),
            right: Arc::new(right_side),
            kind: right_join_kind,
            condition: Some(right_condition),
        };
        let join2_schema = join2.schema();

        // Top projection: the original result attributes, then P(T1+), then P(T2+).
        let mut exprs: Vec<(ScalarExpr, String)> = Vec::new();
        for i in 0..n {
            let name = original_schema.attributes()[i].name.clone();
            exprs.push((ScalarExpr::column(i, name.clone()), name));
        }
        for k in 0..p1 {
            let pos = n + n + k;
            let name = join2_schema.attribute(pos)?.name.clone();
            exprs.push((ScalarExpr::column(pos, name.clone()), name));
        }
        match kind {
            SetOpKind::Union | SetOpKind::Intersect => {
                for k in 0..r.prov_positions.len() {
                    let pos = join1_arity + right_orig_width + k;
                    let name = join2_schema.attribute(pos)?.name.clone();
                    exprs.push((ScalarExpr::column(pos, name.clone()), name));
                }
            }
            SetOpKind::Difference => {
                for &p in &r.prov_positions {
                    let pos = join1_arity + p;
                    let name = join2_schema.attribute(pos)?.name.clone();
                    exprs.push((ScalarExpr::column(pos, name.clone()), name));
                }
            }
        }
        let plan = LogicalPlan::Projection { input: Arc::new(join2), exprs, distinct: false };
        Ok(suffix_rewritten(plan, n))
    }

    /// §IV-E: rewrite a selection whose predicate contains uncorrelated sublinks.
    ///
    /// Each rewritten sublink query is joined into the range table. A sublink tuple contributes
    /// to an original result tuple if the surrounding condition `C` can be satisfied through the
    /// sublink comparison for that tuple (`C'`), or independently of the sublink's truth value
    /// (`C''`) — in which case *all* of the sublink's tuples contribute, reproducing the paper's
    /// behaviour for negated and disjunctive sublink conditions.
    fn rewrite_selection_with_sublinks(
        &self,
        child: Rewritten,
        predicate: &ScalarExpr,
        naming: &mut ProvenanceNaming,
    ) -> Result<Rewritten, PermError> {
        let sublinks: Vec<ScalarExpr> = predicate.sublinks().into_iter().cloned().collect();

        let mut current: Arc<LogicalPlan> = child.plan.clone();
        let mut current_arity = child.arity();
        let mut sublink_prov: Vec<usize> = Vec::new();

        for sublink in &sublinks {
            let ScalarExpr::Sublink { kind, operand, negated, plan: sub_plan } = sublink else {
                continue;
            };
            let sub = self.rewrite_node(sub_plan, naming)?;
            let offset = current_arity;
            let sub_schema = sub.plan.schema();
            let first_col_name =
                sub_schema.attribute(0).map(|a| a.name.clone()).unwrap_or_else(|_| "sub".into());
            let sub_first_col = ScalarExpr::column(offset, first_col_name.clone());

            // The comparison that replaces the sublink when joined with one of its tuples.
            let cmp_join = match kind {
                SublinkKind::Scalar => sub_first_col.clone(),
                SublinkKind::InSubquery => {
                    let operand = operand
                        .as_deref()
                        .cloned()
                        .ok_or_else(|| PermError::rewrite("IN sublink without an operand"))?;
                    let eq = operand.eq(sub_first_col.clone());
                    if *negated {
                        ScalarExpr::UnaryOp { op: UnaryOperator::Not, expr: Box::new(eq) }
                    } else {
                        eq
                    }
                }
                SublinkKind::Exists => ScalarExpr::Literal(Value::Bool(!*negated)),
            };

            // C' — the predicate with this sublink replaced by the join comparison; C'' — the
            // predicate with this sublink assumed unsatisfied (if C holds regardless, *all* of
            // the sublink's tuples contribute). Other sublinks are left in place: they are
            // uncorrelated, so the executor resolves them to their actual values when it
            // evaluates the join condition.
            let c_prime = replace_sublink(predicate, sublink, &cmp_join);
            let unsatisfied = match kind {
                SublinkKind::Scalar => ScalarExpr::Literal(Value::Null),
                _ => ScalarExpr::Literal(Value::Bool(false)),
            };
            let c_dprime = replace_sublink(predicate, sublink, &unsatisfied);
            let join_condition = c_prime.or(c_dprime);

            current = Arc::new(LogicalPlan::Join {
                left: current,
                right: sub.plan.clone(),
                kind: JoinKind::LeftOuter,
                condition: Some(join_condition),
            });
            sublink_prov.extend(sub.prov_positions.iter().map(|&p| offset + p));
            current_arity += sub.arity();
        }

        // The final selection re-applies the *original* predicate (sublinks included — they are
        // uncorrelated and resolved once by the executor), so exactly the original result tuples
        // survive; the joins above only determine which provenance tuples are attached to them.
        let selected = LogicalPlan::Selection { input: current, predicate: predicate.clone() };

        // Restore the prefix invariant: original attributes, then the input's P-list, then the
        // provenance attributes contributed by the sublinks.
        let selected_schema = selected.schema();
        let mut exprs: Vec<(ScalarExpr, String)> = Vec::new();
        for i in 0..child.original_arity {
            let name = selected_schema.attribute(i)?.name.clone();
            exprs.push((ScalarExpr::column(i, name.clone()), name));
        }
        for &p in &child.prov_positions {
            let name = selected_schema.attribute(p)?.name.clone();
            exprs.push((ScalarExpr::column(p, name.clone()), name));
        }
        for &p in &sublink_prov {
            let name = selected_schema.attribute(p)?.name.clone();
            exprs.push((ScalarExpr::column(p, name.clone()), name));
        }
        let original_arity = child.original_arity;
        let plan = LogicalPlan::Projection { input: Arc::new(selected), exprs, distinct: false };
        Ok(suffix_rewritten(plan, original_arity))
    }
}

/// Wrap a rewritten plan whose provenance attributes occupy the suffix of the schema.
fn suffix_rewritten(plan: LogicalPlan, original_arity: usize) -> Rewritten {
    let arity = plan.schema().arity();
    Rewritten {
        plan: Arc::new(plan),
        original_arity,
        prov_positions: (original_arity..arity).collect(),
    }
}

/// A human-readable relation label for R1-style rewrites of non-relation sub-plans.
fn relation_label(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::BaseRelation { name, .. } => name.clone(),
        LogicalPlan::SubqueryAlias { alias, .. } => alias.clone(),
        LogicalPlan::ProvenanceAnnotation { input, .. } => relation_label(input),
        _ => "subquery".to_string(),
    }
}

/// Replace every occurrence of `target` (a sublink expression) in `expr` by `replacement`.
fn replace_sublink(expr: &ScalarExpr, target: &ScalarExpr, replacement: &ScalarExpr) -> ScalarExpr {
    expr.transform(&mut |e| if &e == target { replacement.clone() } else { e })
}

/// Adapter implementing the SQL analyzer's rewrite hook with the Perm rewriter, so that
/// `SELECT PROVENANCE` queries are rewritten during analysis (paper Figure 5: the provenance
/// rewriter sits between the analyzer/rewriter and the planner).
impl perm_sql::ProvenanceRewrite for ProvenanceRewriter {
    fn rewrite_provenance(&self, plan: &LogicalPlan) -> Result<LogicalPlan, perm_sql::SqlError> {
        self.rewrite(plan).map_err(|e| perm_sql::SqlError::Analyze(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::{
        tuple, AggregateExpr, AggregateFunction, Attribute, DataType, PlanBuilder, Schema,
    };
    use perm_exec::execute_plan;
    use perm_storage::{Catalog, Relation};

    /// The paper's Figure 2 example database.
    fn paper_catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .create_table_with_data(
                "shop",
                Relation::new(
                    Schema::from_pairs(&[("name", DataType::Text), ("numempl", DataType::Int)]),
                    vec![tuple!["Merdies", 3], tuple!["Joba", 14]],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data(
                "sales",
                Relation::new(
                    Schema::from_pairs(&[("sname", DataType::Text), ("itemid", DataType::Int)]),
                    vec![
                        tuple!["Merdies", 1],
                        tuple!["Merdies", 2],
                        tuple!["Merdies", 2],
                        tuple!["Joba", 3],
                        tuple!["Joba", 3],
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data(
                "items",
                Relation::new(
                    Schema::from_pairs(&[("id", DataType::Int), ("price", DataType::Int)]),
                    vec![tuple![1, 100], tuple![2, 10], tuple![3, 25]],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
    }

    fn scan(catalog: &Catalog, table: &str, ref_id: usize) -> PlanBuilder {
        PlanBuilder::scan(table, catalog.table_schema(table).unwrap(), ref_id)
    }

    /// The paper's example query q_ex (§III-B).
    fn qex_plan(catalog: &Catalog) -> LogicalPlan {
        let prod = scan(catalog, "shop", 0)
            .cross_join(scan(catalog, "sales", 1))
            .cross_join(scan(catalog, "items", 2));
        let name = prod.col("shop.name").unwrap();
        let sname = prod.col("sales.sname").unwrap();
        let itemid = prod.col("sales.itemid").unwrap();
        let id = prod.col("items.id").unwrap();
        let price = prod.col("items.price").unwrap();
        prod.filter(name.clone().eq(sname).and(itemid.eq(id)))
            .aggregate(
                vec![(name, "name".into())],
                vec![(AggregateExpr::new(AggregateFunction::Sum, price), "sum_price".into())],
            )
            .build()
    }

    #[test]
    fn r1_base_relation_duplicates_attributes() {
        let catalog = paper_catalog();
        let plan = scan(&catalog, "items", 0).build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let schema = rewritten.schema();
        assert_eq!(
            schema.attribute_names(),
            vec!["id", "price", "prov_items_id", "prov_items_price"]
        );
        assert_eq!(schema.provenance_indices(), vec![2, 3]);
        let result = execute_plan(&catalog, &rewritten).unwrap();
        assert_eq!(result.num_rows(), 3);
        assert_eq!(result.tuples()[0], tuple![1, 100, 1, 100]);
    }

    #[test]
    fn paper_example_qex_provenance_matches_figure_4() {
        let catalog = paper_catalog();
        let plan = qex_plan(&catalog);
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let schema = rewritten.schema();
        assert_eq!(
            schema.attribute_names(),
            vec![
                "name",
                "sum_price",
                "prov_shop_name",
                "prov_shop_numempl",
                "prov_sales_sname",
                "prov_sales_itemid",
                "prov_items_id",
                "prov_items_price"
            ]
        );
        let result = execute_plan(&catalog, &rewritten).unwrap().sorted();
        // Figure 4's result relation (5 tuples).
        let expected = vec![
            tuple!["Joba", 50, "Joba", 14, "Joba", 3, 3, 25],
            tuple!["Joba", 50, "Joba", 14, "Joba", 3, 3, 25],
            tuple!["Merdies", 120, "Merdies", 3, "Merdies", 1, 1, 100],
            tuple!["Merdies", 120, "Merdies", 3, "Merdies", 2, 2, 10],
            tuple!["Merdies", 120, "Merdies", 3, "Merdies", 2, 2, 10],
        ];
        assert_eq!(result.tuples(), expected.as_slice());
    }

    #[test]
    fn rewritten_query_preserves_original_result() {
        // The correctness lemma of §III-E: Π_T(q+) = Π_T(q) modulo multiplicity.
        let catalog = paper_catalog();
        let plan = qex_plan(&catalog);
        let original = execute_plan(&catalog, &plan).unwrap();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let provenance = execute_plan(&catalog, &rewritten).unwrap();
        let original_cols: Vec<usize> = (0..original.arity()).collect();
        let projected = provenance.project(&original_cols);
        assert!(projected.set_eq(&original), "original tuples must be preserved");
    }

    #[test]
    fn r3_selection_applies_to_rewritten_input() {
        let catalog = paper_catalog();
        let items = scan(&catalog, "items", 0);
        let price = items.col("price").unwrap();
        let plan = items.filter(price.clone().eq(ScalarExpr::literal(10i64))).build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let result = execute_plan(&catalog, &rewritten).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.tuples()[0], tuple![2, 10, 2, 10]);
    }

    #[test]
    fn r4_join_concatenates_provenance_lists() {
        let catalog = paper_catalog();
        let shop = scan(&catalog, "shop", 0);
        let sales = scan(&catalog, "sales", 1);
        let cond = ScalarExpr::column(0, "name").eq(ScalarExpr::column(2, "sname"));
        let plan = shop.join(sales, JoinKind::Inner, Some(cond)).build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let schema = rewritten.schema();
        assert_eq!(
            schema.attribute_names(),
            vec![
                "name",
                "numempl",
                "sname",
                "itemid",
                "prov_shop_name",
                "prov_shop_numempl",
                "prov_sales_sname",
                "prov_sales_itemid"
            ]
        );
        let result = execute_plan(&catalog, &rewritten).unwrap();
        assert_eq!(result.num_rows(), 5);
        // Provenance columns mirror the original columns for an SPJ query over base relations.
        for t in result.tuples() {
            assert_eq!(t[0], t[4]);
            assert_eq!(t[2], t[6]);
        }
    }

    #[test]
    fn multiple_references_to_a_relation_get_distinct_prefixes() {
        let catalog = paper_catalog();
        let a = scan(&catalog, "items", 0);
        let b = scan(&catalog, "items", 1);
        let plan = a.cross_join(b).build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let names = rewritten.schema().attribute_names();
        assert!(names.contains(&"prov_items_id".to_string()));
        assert!(names.contains(&"prov_items_1_id".to_string()));
    }

    #[test]
    fn r5_global_aggregation_attaches_every_input_tuple() {
        let catalog = paper_catalog();
        let items = scan(&catalog, "items", 0);
        let price = items.col("price").unwrap();
        let plan = items
            .aggregate(
                vec![],
                vec![(AggregateExpr::new(AggregateFunction::Sum, price), "total".into())],
            )
            .build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let result = execute_plan(&catalog, &rewritten).unwrap();
        // One original row (total = 135) × three contributing item tuples.
        assert_eq!(result.num_rows(), 3);
        for t in result.tuples() {
            assert_eq!(t[0], perm_algebra::Value::Int(135));
        }
    }

    #[test]
    fn r5_aggregation_over_empty_relation_yields_empty_provenance() {
        // Matches the paper's footnote 4 to Figure 11: the normal query returns one NULL row,
        // the provenance query returns zero rows.
        let catalog = Catalog::new();
        catalog
            .create_table(
                "empty_items",
                Schema::from_pairs(&[("id", DataType::Int), ("price", DataType::Int)]),
            )
            .unwrap();
        let items = scan(&catalog, "empty_items", 0);
        let price = items.col("price").unwrap();
        let plan = items
            .aggregate(
                vec![],
                vec![(AggregateExpr::new(AggregateFunction::Sum, price), "total".into())],
            )
            .build();
        let original = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(original.num_rows(), 1);
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let provenance = execute_plan(&catalog, &rewritten).unwrap();
        assert_eq!(provenance.num_rows(), 0);
    }

    #[test]
    fn r6_union_provenance_comes_from_the_contributing_side() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        catalog
            .create_table_with_data(
                "a",
                Relation::new(schema.clone(), vec![tuple![1], tuple![2]]).unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data("b", Relation::new(schema, vec![tuple![2], tuple![3]]).unwrap())
            .unwrap();
        let plan = scan(&catalog, "a", 0)
            .set_op(scan(&catalog, "b", 1), SetOpKind::Union, SetSemantics::Bag)
            .build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let schema = rewritten.schema();
        assert_eq!(schema.attribute_names(), vec!["x", "prov_a_x", "prov_b_x"]);
        let result = execute_plan(&catalog, &rewritten).unwrap().sorted();
        // x=1 stems only from a, x=3 only from b, x=2 from both sides (one row per side and
        // original occurrence).
        let ones: Vec<_> =
            result.tuples().iter().filter(|t| t[0] == perm_algebra::Value::Int(1)).collect();
        assert_eq!(ones.len(), 1);
        assert_eq!(ones[0].values()[1], perm_algebra::Value::Int(1));
        assert!(ones[0].values()[2].is_null());
        let threes: Vec<_> =
            result.tuples().iter().filter(|t| t[0] == perm_algebra::Value::Int(3)).collect();
        assert_eq!(threes.len(), 1);
        assert!(threes[0].values()[1].is_null());
        assert_eq!(threes[0].values()[2], perm_algebra::Value::Int(3));
    }

    #[test]
    fn r7_intersection_provenance_has_both_sides() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        catalog
            .create_table_with_data(
                "a",
                Relation::new(schema.clone(), vec![tuple![1], tuple![2]]).unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data("b", Relation::new(schema, vec![tuple![2], tuple![3]]).unwrap())
            .unwrap();
        let plan = scan(&catalog, "a", 0)
            .set_op(scan(&catalog, "b", 1), SetOpKind::Intersect, SetSemantics::Bag)
            .build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let result = execute_plan(&catalog, &rewritten).unwrap();
        assert_eq!(result.num_rows(), 1);
        let t = &result.tuples()[0];
        assert_eq!(t[0], perm_algebra::Value::Int(2));
        assert_eq!(t[1], perm_algebra::Value::Int(2));
        assert_eq!(t[2], perm_algebra::Value::Int(2));
    }

    #[test]
    fn r9_bag_difference_attaches_all_differing_right_tuples() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        catalog
            .create_table_with_data(
                "a",
                Relation::new(schema.clone(), vec![tuple![1], tuple![2]]).unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data(
                "b",
                Relation::new(schema, vec![tuple![2], tuple![3], tuple![4]]).unwrap(),
            )
            .unwrap();
        let plan = scan(&catalog, "a", 0)
            .set_op(scan(&catalog, "b", 1), SetOpKind::Difference, SetSemantics::Bag)
            .build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let result = execute_plan(&catalog, &rewritten).unwrap();
        // Original result is {1}; its provenance from b is every tuple different from 1, i.e.
        // {2, 3, 4} — three provenance rows.
        assert_eq!(result.num_rows(), 3);
        for t in result.tuples() {
            assert_eq!(t[0], perm_algebra::Value::Int(1));
            assert_eq!(t[1], perm_algebra::Value::Int(1));
            assert!(t[2] != perm_algebra::Value::Int(1));
        }
    }

    #[test]
    fn sublink_in_disjunction_attaches_all_sublink_tuples() {
        // The paper's §IV-E example: WHERE numEmpl < 10 OR name IN (SELECT sName FROM sales).
        // For (Merdies, 3) the condition holds independently of the sublink, so all sales tuples
        // are part of the provenance.
        let catalog = paper_catalog();
        let shop = scan(&catalog, "shop", 0);
        let sales_sub = scan(&catalog, "sales", 1).project_columns(&["sname"]).unwrap();
        let name = shop.col("name").unwrap();
        let numempl = shop.col("numempl").unwrap();
        let sublink = ScalarExpr::Sublink {
            kind: SublinkKind::InSubquery,
            operand: Some(Box::new(name.clone())),
            negated: false,
            plan: sales_sub.build_arc(),
        };
        let predicate =
            ScalarExpr::binary(BinaryOperator::Lt, numempl, ScalarExpr::literal(10i64)).or(sublink);
        let plan = shop.filter(predicate).project_columns(&["name"]).unwrap().build();

        // Normal execution: both shops qualify (Merdies via numempl, Joba via the sublink).
        let original = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(original.num_rows(), 2);

        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let schema = rewritten.schema();
        assert_eq!(
            schema.attribute_names(),
            vec![
                "name",
                "prov_shop_name",
                "prov_shop_numempl",
                "prov_sales_sname",
                "prov_sales_itemid"
            ]
        );
        let result = execute_plan(&catalog, &rewritten).unwrap();
        let merdies: Vec<_> = result
            .tuples()
            .iter()
            .filter(|t| t[0] == perm_algebra::Value::text("Merdies"))
            .collect();
        // All five sales tuples contribute to Merdies because the condition is true regardless
        // of the sublink.
        assert_eq!(merdies.len(), 5);
        let joba: Vec<_> =
            result.tuples().iter().filter(|t| t[0] == perm_algebra::Value::text("Joba")).collect();
        // Joba only qualifies through the IN condition: its provenance are the matching tuples.
        assert_eq!(joba.len(), 2);
        assert!(joba.iter().all(|t| t[3] == perm_algebra::Value::text("Joba")));
    }

    #[test]
    fn negated_sublink_attaches_non_matching_tuples() {
        // NOT IN: the provenance of a result tuple includes every sublink tuple that does not
        // fulfil the sublink condition (the Q16 blow-up described in §V-A.2).
        let catalog = paper_catalog();
        let shop = scan(&catalog, "shop", 0);
        let sales_sub = scan(&catalog, "sales", 1).project_columns(&["sname"]).unwrap();
        let name = shop.col("name").unwrap();
        let sublink = ScalarExpr::Sublink {
            kind: SublinkKind::InSubquery,
            operand: Some(Box::new(name.clone())),
            negated: true,
            plan: sales_sub.build_arc(),
        };
        // WHERE name NOT IN (SELECT sname FROM sales WHERE sname = 'Joba')  — restricting the
        // sublink to Joba rows so Merdies qualifies.
        let catalog2 = catalog.clone();
        let joba_sales = scan(&catalog2, "sales", 2);
        let sname = joba_sales.col("sname").unwrap();
        let joba_sub = joba_sales
            .filter(sname.clone().eq(ScalarExpr::literal("Joba")))
            .project_columns(&["sname"])
            .unwrap();
        let sublink_joba = ScalarExpr::Sublink {
            kind: SublinkKind::InSubquery,
            operand: Some(Box::new(name.clone())),
            negated: true,
            plan: joba_sub.build_arc(),
        };
        let _ = sublink; // the unrestricted variant is covered implicitly by Q16-style tests

        let plan = shop.filter(sublink_joba).project_columns(&["name"]).unwrap().build();
        let original = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(original.num_rows(), 1, "only Merdies is NOT IN the Joba sales");

        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let result = execute_plan(&catalog, &rewritten).unwrap();
        // Merdies' provenance includes both Joba sales tuples (they do not fulfil the condition).
        assert_eq!(result.num_rows(), 2);
        for t in result.tuples() {
            assert_eq!(t[0], perm_algebra::Value::text("Merdies"));
        }
    }

    #[test]
    fn baserelation_annotation_limits_provenance_scope() {
        let catalog = paper_catalog();
        let items = scan(&catalog, "items", 0);
        let price = items.col("price").unwrap();
        let agg = items
            .aggregate(
                vec![],
                vec![(AggregateExpr::new(AggregateFunction::Sum, price), "total".into())],
            )
            .alias("sub");
        let annotated = LogicalPlan::ProvenanceAnnotation {
            input: agg.build_arc(),
            kind: ProvenanceAnnotationKind::BaseRelation,
        };
        let plan = PlanBuilder::from_plan(annotated)
            .project(vec![(
                ScalarExpr::binary(
                    BinaryOperator::Mul,
                    ScalarExpr::column(0, "total"),
                    ScalarExpr::literal(10i64),
                ),
                "total10".into(),
            )])
            .build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let schema = rewritten.schema();
        // Provenance is the subquery's own output, not the base relation items.
        assert_eq!(schema.attribute_names(), vec!["total10", "prov_sub_total"]);
        let result = execute_plan(&catalog, &rewritten).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.tuples()[0], tuple![1350, 135]);
    }

    #[test]
    fn already_rewritten_annotation_reuses_stored_provenance() {
        // Incremental provenance (§IV-A.3): a stored provenance result is declared via
        // PROVENANCE (attrs) and reused instead of being recomputed.
        let catalog = Catalog::new();
        let stored = Relation::new(
            Schema::new(vec![
                Attribute::new("total", DataType::Int),
                Attribute::new("prov_items_id", DataType::Int),
                Attribute::new("prov_items_price", DataType::Int),
            ]),
            vec![tuple![135, 1, 100], tuple![135, 2, 10], tuple![135, 3, 25]],
        )
        .unwrap();
        catalog.create_table_with_data("totalitemprice", stored).unwrap();
        let base = scan(&catalog, "totalitemprice", 0);
        let annotated = LogicalPlan::ProvenanceAnnotation {
            input: base.build_arc(),
            kind: ProvenanceAnnotationKind::AlreadyRewritten(vec![
                "prov_items_id".into(),
                "prov_items_price".into(),
            ]),
        };
        let plan = PlanBuilder::from_plan(annotated)
            .project(vec![(
                ScalarExpr::binary(
                    BinaryOperator::Mul,
                    ScalarExpr::column(0, "total"),
                    ScalarExpr::literal(10i64),
                ),
                "total10".into(),
            )])
            .build();
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        let schema = rewritten.schema();
        assert_eq!(schema.attribute_names(), vec!["total10", "prov_items_id", "prov_items_price"]);
        let result = execute_plan(&catalog, &rewritten).unwrap().sorted();
        assert_eq!(result.num_rows(), 3);
        assert_eq!(result.tuples()[0], tuple![1350, 1, 100]);
    }

    #[test]
    fn rewritten_plans_validate() {
        let catalog = paper_catalog();
        let plan = qex_plan(&catalog);
        let rewritten = ProvenanceRewriter::new().rewrite(&plan).unwrap();
        rewritten.validate().unwrap();
    }
}
