//! The error type of the Perm provenance management system.

use std::fmt;

use perm_algebra::AlgebraError;
use perm_exec::ExecError;
use perm_service::ServiceError;
use perm_sql::SqlError;
use perm_storage::CatalogError;

/// Errors surfaced by [`crate::PermDb`] and the provenance rewriter.
#[derive(Debug, Clone, PartialEq)]
pub enum PermError {
    /// SQL front-end error (lexing, parsing, analysis).
    Sql(SqlError),
    /// Execution error (including row-budget / timeout aborts).
    Exec(ExecError),
    /// Catalog error.
    Catalog(CatalogError),
    /// Algebra-level error.
    Algebra(AlgebraError),
    /// Provenance rewriting failed.
    Rewrite(String),
    /// Any other failure.
    Other(String),
}

impl PermError {
    /// Convenience constructor for rewrite errors.
    pub fn rewrite(msg: impl Into<String>) -> PermError {
        PermError::Rewrite(msg.into())
    }
}

impl fmt::Display for PermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermError::Sql(e) => write!(f, "{e}"),
            PermError::Exec(e) => write!(f, "{e}"),
            PermError::Catalog(e) => write!(f, "{e}"),
            PermError::Algebra(e) => write!(f, "{e}"),
            PermError::Rewrite(msg) => write!(f, "provenance rewrite error: {msg}"),
            PermError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PermError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PermError::Sql(e) => Some(e),
            PermError::Exec(e) => Some(e),
            PermError::Catalog(e) => Some(e),
            PermError::Algebra(e) => Some(e),
            PermError::Rewrite(_) | PermError::Other(_) => None,
        }
    }
}

impl From<SqlError> for PermError {
    fn from(e: SqlError) -> Self {
        PermError::Sql(e)
    }
}

impl From<ServiceError> for PermError {
    fn from(e: ServiceError) -> Self {
        // Unwrap the service envelope so callers keep matching on the layer errors they know.
        match e {
            ServiceError::Sql(e) => PermError::Sql(e),
            ServiceError::Exec(e) => PermError::Exec(e),
            ServiceError::Catalog(e) => PermError::Catalog(e),
            other => PermError::Other(other.to_string()),
        }
    }
}

impl From<ExecError> for PermError {
    fn from(e: ExecError) -> Self {
        PermError::Exec(e)
    }
}

impl From<CatalogError> for PermError {
    fn from(e: CatalogError) -> Self {
        PermError::Catalog(e)
    }
}

impl From<AlgebraError> for PermError {
    fn from(e: AlgebraError) -> Self {
        PermError::Algebra(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PermError = SqlError::analyze("nope").into();
        assert!(e.to_string().contains("nope"));
        let e: PermError = ExecError::RowBudgetExceeded { budget: 7 }.into();
        assert!(e.to_string().contains('7'));
        let e = PermError::rewrite("cannot rewrite");
        assert!(e.to_string().contains("cannot rewrite"));
    }

    #[test]
    fn source_exposes_the_layer_error_chain() {
        use std::error::Error;
        // PermError -> ExecError -> CatalogError is walkable end to end.
        let inner = ExecError::Catalog(CatalogError::NotFound("t".into()));
        let e: PermError = inner.into();
        let exec = e.source().expect("exec layer");
        assert!(exec.to_string().contains("does not exist"));
        let catalog = exec.source().expect("catalog layer");
        assert!(matches!(catalog.downcast_ref::<CatalogError>(), Some(CatalogError::NotFound(_))));
        // Leaf variants end the chain.
        assert!(PermError::rewrite("x").source().is_none());
    }

    #[test]
    fn service_errors_unwrap_to_layer_variants() {
        let e: PermError =
            perm_service::ServiceError::Exec(ExecError::Timeout { millis: 5 }).into();
        assert!(matches!(e, PermError::Exec(ExecError::Timeout { millis: 5 })));
        let e: PermError = perm_service::ServiceError::UnknownPrepared("q".into()).into();
        assert!(matches!(e, PermError::Other(_)));
        assert!(e.to_string().contains('q'));
    }
}
