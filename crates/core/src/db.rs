//! `PermDb`: the provenance management system facade.
//!
//! `PermDb` is a thin single-session wrapper over the multi-session
//! [`perm_service::Engine`]: it injects this crate's provenance rewriter into the engine's
//! pipeline of the paper's Figure 5:
//!
//! ```text
//!   SQL ──▶ parser & analyzer ──▶ view unfolding ──▶ provenance rewriter ──▶ optimizer ──▶ executor
//! ```
//!
//! Queries executed through `PermDb` therefore share everything the service layer provides —
//! atomic catalog snapshots and the engine's plan cache — while keeping the simple embedded
//! API. For concurrent multi-session workloads (prepared statements, the `permd` wire server),
//! use [`PermDb::engine`] and open [`perm_service::Session`]s directly.
//!
//! It supports lazy provenance computation (`SELECT PROVENANCE ...`), eager storage of
//! provenance (`SELECT PROVENANCE ... INTO table` or [`PermDb::store_provenance`]), provenance
//! views, external provenance (`PROVENANCE (attrs)` from-clause annotations) and limited-scope
//! provenance (`BASERELATION`).

use std::sync::Arc;
use std::time::Duration;

use perm_algebra::LogicalPlan;
use perm_exec::ExecOptions;
use perm_service::{Engine, Session, SessionOptions};
use perm_sql::Analyzer;
use perm_storage::{Catalog, Relation};

use crate::error::PermError;
use crate::rewrite::ProvenanceRewriter;

/// Configuration of a [`PermDb`] instance.
#[derive(Debug, Clone)]
pub struct ProvenanceOptions {
    /// Maximum number of rows any operator may produce (reproduces the paper's behaviour of
    /// aborting runaway provenance queries). `None` = unlimited.
    pub row_budget: Option<usize>,
    /// Wall-clock execution timeout. `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Whether plans are passed through the rule-based optimizer before execution.
    pub optimize: bool,
}

impl Default for ProvenanceOptions {
    fn default() -> Self {
        ProvenanceOptions { row_budget: None, timeout: None, optimize: true }
    }
}

impl ProvenanceOptions {
    /// Limit the number of rows any single operator may produce.
    pub fn with_row_budget(mut self, budget: usize) -> Self {
        self.row_budget = Some(budget);
        self
    }

    /// Limit wall-clock execution time.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Disable the optimizer (used by benchmarks that measure raw rewrite output).
    pub fn without_optimizer(mut self) -> Self {
        self.optimize = false;
        self
    }

    fn exec_options(&self) -> ExecOptions {
        let mut options = ExecOptions::default();
        if let Some(budget) = self.row_budget {
            options = options.with_row_budget(budget);
        }
        if let Some(timeout) = self.timeout {
            options = options.with_timeout(timeout);
        }
        options
    }

    fn session_options(&self) -> SessionOptions {
        SessionOptions {
            row_budget: self.row_budget,
            timeout: self.timeout,
            optimize: self.optimize,
        }
    }
}

/// The Perm provenance management system.
#[derive(Debug, Clone)]
pub struct PermDb {
    engine: Arc<Engine>,
    options: ProvenanceOptions,
    rewriter: Arc<ProvenanceRewriter>,
}

impl Default for PermDb {
    fn default() -> Self {
        PermDb::new()
    }
}

impl PermDb {
    /// Create an empty database.
    pub fn new() -> PermDb {
        PermDb::with_options(ProvenanceOptions::default())
    }

    /// Create an empty database with custom options.
    pub fn with_options(options: ProvenanceOptions) -> PermDb {
        PermDb::with_catalog(Catalog::new(), options)
    }

    /// Create a database over an existing catalog (shares the underlying data).
    pub fn with_catalog(catalog: Catalog, options: ProvenanceOptions) -> PermDb {
        let rewriter = Arc::new(ProvenanceRewriter::new());
        let engine = Arc::new(Engine::with_catalog(catalog).with_rewriter(rewriter.clone()));
        PermDb { engine, options, rewriter }
    }

    /// The shared engine behind this facade. Use [`Engine::session`] to open additional
    /// concurrent sessions (prepared statements, per-connection settings) over the same data.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The catalog backing this database.
    pub fn catalog(&self) -> &Catalog {
        self.engine.catalog()
    }

    /// A single-use session carrying this database's options.
    fn session(&self) -> Session {
        let mut session = Session::new(self.engine.clone());
        session.set_options(self.options.session_options());
        session
    }

    /// The current options.
    pub fn options(&self) -> &ProvenanceOptions {
        &self.options
    }

    /// Replace the options (row budget, timeout, optimizer switch).
    pub fn set_options(&mut self, options: ProvenanceOptions) {
        self.options = options;
    }

    /// Register a pre-built relation as a base table.
    pub fn register_table(&self, name: &str, relation: Relation) -> Result<(), PermError> {
        self.catalog().create_table_with_data(name, relation)?;
        Ok(())
    }

    /// The analyzer configured with this database's catalog and provenance rewriter.
    pub fn analyzer(&self) -> Analyzer {
        self.engine.analyzer()
    }

    /// Parse, analyze, optimize — but do not execute — a query. Returns the final plan exactly
    /// as it would be executed (after provenance rewriting and optimization). Used by the
    /// compilation-overhead experiment (paper Figure 9) and for plan inspection.
    pub fn plan_sql(&self, sql: &str) -> Result<LogicalPlan, PermError> {
        let plan = self.analyzer().analyze_query_sql(sql)?;
        self.maybe_optimize(plan)
    }

    /// Parse and analyze a query *without* optimization (the raw rewriter output).
    pub fn analyze_sql_plan(&self, sql: &str) -> Result<LogicalPlan, PermError> {
        Ok(self.analyzer().analyze_query_sql(sql)?)
    }

    /// Rewrite an already-bound plan into its provenance-computing form (programmatic
    /// equivalent of the `PROVENANCE` keyword).
    pub fn rewrite_plan(&self, plan: &LogicalPlan) -> Result<LogicalPlan, PermError> {
        self.rewriter.rewrite(plan)
    }

    /// Execute a bound plan.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> Result<Relation, PermError> {
        let plan = self.maybe_optimize(plan.clone())?;
        Ok(self.engine.run_plan(&plan, self.options.exec_options(), Vec::new())?)
    }

    /// Execute a single SQL statement (DDL, DML or query). DDL statements return an empty
    /// relation. Queries go through the engine's shared plan cache, so repeated statements are
    /// planned once.
    pub fn execute_sql(&self, sql: &str) -> Result<Relation, PermError> {
        Ok(self.session().execute(sql)?)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<Relation>, PermError> {
        Ok(self.session().execute_script(sql)?)
    }

    /// Compute the provenance of a (plain, non-PROVENANCE) SQL query programmatically.
    ///
    /// Equivalent to prefixing the query's select clause with the `PROVENANCE` keyword: the
    /// result contains the original columns followed by `prov_*` attributes.
    pub fn provenance_of_query(&self, sql: &str) -> Result<Relation, PermError> {
        let plan = self.analyzer().analyze_query_sql(sql)?;
        let rewritten = self.rewriter.rewrite(&plan)?;
        self.execute_plan(&rewritten)
    }

    /// Store the provenance of a query as a new base table (eager provenance computation, the
    /// paper's `SELECT PROVENANCE ... INTO table`).
    pub fn store_provenance(&self, table: &str, sql: &str) -> Result<usize, PermError> {
        let result = self.provenance_of_query(sql)?;
        let rows = result.num_rows();
        self.catalog().overwrite(table, result)?;
        Ok(rows)
    }

    /// Create a provenance view: a view whose body computes provenance lazily whenever the view
    /// is referenced.
    pub fn create_provenance_view(&self, name: &str, query_sql: &str) -> Result<(), PermError> {
        let body = format!("SELECT PROVENANCE * FROM ({query_sql}) AS {name}_body");
        // Validate eagerly so errors surface now.
        self.analyzer().analyze_query_sql(&body)?;
        self.catalog().create_view(name, &body)?;
        Ok(())
    }

    fn maybe_optimize(&self, plan: LogicalPlan) -> Result<LogicalPlan, PermError> {
        if self.options.optimize {
            Ok(self.engine.optimize_plan(&plan)?)
        } else {
            Ok(plan)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::{tuple, Value};

    fn shop_db() -> PermDb {
        let db = PermDb::new();
        db.execute_script(
            "CREATE TABLE shop (name TEXT, numEmpl INT);\n\
             CREATE TABLE sales (sName TEXT, itemId INT);\n\
             CREATE TABLE items (id INT, price INT);\n\
             INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14);\n\
             INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), ('Merdies', 2), ('Joba', 3), ('Joba', 3);\n\
             INSERT INTO items VALUES (1, 100), (2, 10), (3, 25);",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_paper_example_via_sql_ple() {
        let db = shop_db();
        let result = db
            .execute_sql(
                "SELECT PROVENANCE name, sum(price) AS total FROM shop, sales, items \
                 WHERE name = sName AND itemId = id GROUP BY name",
            )
            .unwrap();
        assert_eq!(
            result.schema().attribute_names(),
            vec![
                "name",
                "total",
                "prov_shop_name",
                "prov_shop_numempl",
                "prov_sales_sname",
                "prov_sales_itemid",
                "prov_items_id",
                "prov_items_price"
            ]
        );
        assert_eq!(result.num_rows(), 5);
        let sorted = result.sorted();
        assert_eq!(sorted.tuples()[0], tuple!["Joba", 50, "Joba", 14, "Joba", 3, 3, 25]);
        assert_eq!(sorted.tuples()[2], tuple!["Merdies", 120, "Merdies", 3, "Merdies", 1, 1, 100]);
    }

    #[test]
    fn provenance_query_as_subquery_q1_from_the_paper() {
        // q1 = Π_pId(σ_sum(price)>100(qex+)): which items were sold by shops with total > 100.
        let db = shop_db();
        let result = db
            .execute_sql(
                "SELECT prov_items_id FROM \
                   (SELECT PROVENANCE name, sum(price) AS total FROM shop, sales, items \
                    WHERE name = sName AND itemId = id GROUP BY name) AS prov \
                 WHERE total > 100",
            )
            .unwrap();
        let sorted = result.sorted();
        assert_eq!(sorted.tuples(), &[tuple![1], tuple![2], tuple![2]]);
    }

    #[test]
    fn normal_queries_are_unaffected() {
        let db = shop_db();
        let result = db
            .execute_sql("SELECT name, sum(price) AS total FROM shop, sales, items WHERE name = sName AND itemId = id GROUP BY name ORDER BY total DESC")
            .unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.tuples()[0], tuple!["Merdies", 120]);
        assert_eq!(result.schema().provenance_indices().len(), 0);
    }

    #[test]
    fn provenance_of_query_api_matches_sql_ple() {
        let db = shop_db();
        let via_api = db
            .provenance_of_query("SELECT name, sum(price) AS total FROM shop, sales, items WHERE name = sName AND itemId = id GROUP BY name")
            .unwrap();
        let via_sql = db
            .execute_sql("SELECT PROVENANCE name, sum(price) AS total FROM shop, sales, items WHERE name = sName AND itemId = id GROUP BY name")
            .unwrap();
        assert!(via_api.bag_eq(&via_sql));
    }

    #[test]
    fn select_into_stores_provenance_eagerly() {
        let db = shop_db();
        db.execute_sql("SELECT PROVENANCE id, price INTO item_prov FROM items WHERE price > 20")
            .unwrap();
        assert!(db.catalog().has_table("item_prov"));
        let stored = db.execute_sql("SELECT * FROM item_prov").unwrap();
        assert_eq!(stored.num_rows(), 2);
        assert_eq!(stored.schema().arity(), 4);
    }

    #[test]
    fn store_provenance_api() {
        let db = shop_db();
        let rows = db.store_provenance("stored", "SELECT sum(price) AS total FROM items").unwrap();
        assert_eq!(rows, 3);
        let stored = db.execute_sql("SELECT * FROM stored").unwrap();
        assert_eq!(
            stored.schema().attribute_names(),
            vec!["total", "prov_items_id", "prov_items_price"]
        );
    }

    #[test]
    fn incremental_provenance_from_stored_results() {
        // The paper's §IV-A.3 example: a view stores provenance; a later provenance query reuses
        // the stored provenance attributes instead of recomputing them.
        let db = shop_db();
        db.execute_sql(
            "CREATE VIEW totalItemPrice AS SELECT PROVENANCE sum(price) AS total FROM items",
        )
        .unwrap();
        let result = db
            .execute_sql(
                "SELECT PROVENANCE total * 10 AS total10 \
                 FROM totalItemPrice PROVENANCE (prov_items_id, prov_items_price)",
            )
            .unwrap();
        assert_eq!(
            result.schema().attribute_names(),
            vec!["total10", "prov_items_id", "prov_items_price"]
        );
        assert_eq!(result.num_rows(), 3);
        for t in result.tuples() {
            assert_eq!(t[0], Value::Int(1350));
        }
    }

    #[test]
    fn baserelation_annotation_via_sql() {
        let db = shop_db();
        let result = db
            .execute_sql(
                "SELECT PROVENANCE total * 10 AS total10 FROM \
                   (SELECT sum(price) AS total FROM items) BASERELATION AS sub",
            )
            .unwrap();
        assert_eq!(result.schema().attribute_names(), vec!["total10", "prov_sub_total"]);
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.tuples()[0], tuple![1350, 135]);
    }

    #[test]
    fn provenance_views_compute_lazily() {
        let db = shop_db();
        db.create_provenance_view("expensive_items_prov", "SELECT id FROM items WHERE price > 20")
            .unwrap();
        let result = db.execute_sql("SELECT * FROM expensive_items_prov").unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.schema().arity(), 3, "id plus two provenance attributes");
        // New data is picked up because the view is unfolded lazily.
        db.execute_sql("INSERT INTO items VALUES (4, 500)").unwrap();
        let result = db.execute_sql("SELECT * FROM expensive_items_prov").unwrap();
        assert_eq!(result.num_rows(), 3);
    }

    #[test]
    fn row_budget_aborts_runaway_provenance_queries() {
        let mut db = shop_db();
        db.set_options(ProvenanceOptions::default().with_row_budget(3));
        let err = db
            .execute_sql("SELECT PROVENANCE name, sum(price) AS total FROM shop, sales, items WHERE name = sName AND itemId = id GROUP BY name")
            .unwrap_err();
        assert!(matches!(err, PermError::Exec(perm_exec::ExecError::RowBudgetExceeded { .. })));
    }

    #[test]
    fn plan_sql_reports_rewritten_and_optimized_plan() {
        let db = shop_db();
        let plan = db.plan_sql("SELECT PROVENANCE name FROM shop WHERE numEmpl < 10").unwrap();
        assert!(plan.schema().attribute_names().contains(&"prov_shop_name".to_string()));
        let unoptimized =
            db.analyze_sql_plan("SELECT name FROM shop, sales WHERE name = sName").unwrap();
        let optimized = db.plan_sql("SELECT name FROM shop, sales WHERE name = sName").unwrap();
        // The cross product + selection must have become an inner join...
        fn find_join(plan: &LogicalPlan) -> Option<&LogicalPlan> {
            if let LogicalPlan::Join { .. } = plan {
                return Some(plan);
            }
            plan.children().iter().find_map(|c| find_join(c))
        }
        assert!(matches!(
            find_join(&unoptimized),
            Some(LogicalPlan::Join { kind: perm_algebra::JoinKind::Cross, .. })
        ));
        let joined = find_join(&optimized).expect("optimized plan keeps a join");
        assert!(matches!(
            joined,
            LogicalPlan::Join { kind: perm_algebra::JoinKind::Inner, condition: Some(_), .. }
        ));
        // ...and column pruning must have narrowed it: only `name` and `sName` survive below
        // the top projection (the unoptimized join carries all four attributes).
        assert_eq!(joined.schema().arity(), 2);
        assert_eq!(optimized.schema().attribute_names(), vec!["name"]);
    }

    #[test]
    fn ddl_and_errors() {
        let db = PermDb::new();
        db.execute_sql("CREATE TABLE t (a INT)").unwrap();
        assert!(db.execute_sql("CREATE TABLE t (a INT)").is_err());
        db.execute_sql("DROP TABLE t").unwrap();
        assert!(db.execute_sql("SELECT * FROM t").is_err());
        assert!(db.execute_sql("SELECT PROVENANCE x FROM missing").is_err());
    }
}
