//! The provenance attribute naming scheme of the paper (§IV-A.1).
//!
//! A provenance attribute name consists of the fixed prefix `prov_`, the name of the base
//! relation the attribute is derived from, and the original attribute name, separated by
//! underscores. If a relation is referenced more than once in a query, an identifying number is
//! attached to the relation name (`prov_items_1_price` for the second reference to `items`).

use std::collections::HashMap;

/// Generates unique provenance attribute names within one query rewrite.
#[derive(Debug, Default, Clone)]
pub struct ProvenanceNaming {
    reference_counts: HashMap<String, usize>,
}

impl ProvenanceNaming {
    /// Create a fresh naming context (one per rewritten query).
    pub fn new() -> ProvenanceNaming {
        ProvenanceNaming::default()
    }

    /// Reserve the next prefix for a reference to `relation` and return it.
    ///
    /// The first reference to `items` yields `prov_items`, the second `prov_items_1`, and so on.
    pub fn next_prefix(&mut self, relation: &str) -> String {
        let relation = sanitize(relation);
        let count = self.reference_counts.entry(relation.clone()).or_insert(0);
        let prefix = if *count == 0 {
            format!("prov_{relation}")
        } else {
            format!("prov_{relation}_{count}")
        };
        *count += 1;
        prefix
    }

    /// The full provenance attribute name for `attribute` of a reference with `prefix`.
    pub fn attribute_name(prefix: &str, attribute: &str) -> String {
        format!("{prefix}_{}", sanitize(attribute))
    }
}

fn sanitize(name: &str) -> String {
    name.to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Does `name` follow the provenance attribute naming scheme?
pub fn is_provenance_attribute_name(name: &str) -> bool {
    name.to_ascii_lowercase().starts_with("prov_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_and_repeated_references() {
        let mut naming = ProvenanceNaming::new();
        assert_eq!(naming.next_prefix("shop"), "prov_shop");
        assert_eq!(naming.next_prefix("items"), "prov_items");
        assert_eq!(naming.next_prefix("items"), "prov_items_1");
        assert_eq!(naming.next_prefix("items"), "prov_items_2");
        assert_eq!(naming.next_prefix("shop"), "prov_shop_1");
    }

    #[test]
    fn attribute_names_follow_the_paper_scheme() {
        let mut naming = ProvenanceNaming::new();
        let prefix = naming.next_prefix("sales");
        assert_eq!(ProvenanceNaming::attribute_name(&prefix, "sName"), "prov_sales_sname");
        assert!(is_provenance_attribute_name("prov_sales_sname"));
        assert!(!is_provenance_attribute_name("sname"));
    }

    #[test]
    fn odd_characters_are_sanitised() {
        let mut naming = ProvenanceNaming::new();
        let prefix = naming.next_prefix("my table");
        assert_eq!(prefix, "prov_my_table");
    }
}
