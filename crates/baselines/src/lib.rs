//! # perm-baselines
//!
//! Baseline provenance systems used in the paper's evaluation and in our correctness tests:
//!
//! * [`trio`] — a **Trio-style eager lineage** baseline (§V-C of the paper): derived tables are
//!   materialised together with *lineage relations* mapping each result tuple to its
//!   contributing source tuples; querying provenance afterwards performs the iterative,
//!   tuple-at-a-time lineage lookups that Trio's architecture implies. Perm's lazy rewriting is
//!   compared against this in the Figure 15 experiment.
//! * [`cui_widom`] — the **Cui–Widom inversion** approach (ICDE 2000), which computes the
//!   lineage of a result tuple as a *list of relations* via inverse queries. It serves both as
//!   the second baseline discussed in the related-work section and as the correctness oracle for
//!   Perm's influence-contribution semantics (§III-E equates the two).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Non-test code must surface failures as structured errors, never panic on a recoverable
// condition (tests are exempt via clippy.toml); `cargo xtask lint` checks this header.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cui_widom;
pub mod trio;

pub use cui_widom::CuiWidomTracer;
pub use trio::TrioStyleDb;
