//! The Cui–Widom inversion approach ("Lineage tracing in a data warehousing system", ICDE 2000).
//!
//! Cui and Widom compute the lineage of a result tuple by running *inverse queries* against the
//! base relations: for an SPJ view `Π_A(σ_C(R1 × ... × Rn))` the lineage of a result tuple `t`
//! with respect to `Ri` is `Π_{Ri}(σ_{C ∧ A = t}(R1 × ... × Rn))`, and for an aggregation view
//! the selection on the projected attributes is replaced by a selection on the grouping
//! attributes. The result is a *list of relations* — one per base relation — which, as §III-B of
//! the Perm paper discusses, cannot be represented as a single relational query result.
//!
//! In this reproduction the tracer serves two purposes:
//!
//! 1. It is the second comparison point discussed in the paper's related-work section (lineage
//!    through query inversion, requiring one inverse query per base relation and result tuple).
//! 2. It is the **correctness oracle** for the Perm rewriter: §III-E proves Perm's
//!    influence-contribution semantics equivalent to Cui–Widom lineage, and our property tests
//!    check exactly that equivalence on randomly generated queries and data.

use std::sync::Arc;

use perm_algebra::{AggregateExpr, JoinKind, LogicalPlan, ScalarExpr, Tuple};
use perm_exec::{ExecError, Executor, Optimizer};
use perm_storage::{Catalog, Relation};

/// A description of an SPJ or aggregation-SPJ view over base relations, in the decomposed form
/// Cui–Widom inversion operates on.
#[derive(Debug, Clone)]
pub struct ViewDefinition {
    /// The accessed base relations, in order.
    pub relations: Vec<String>,
    /// The selection condition over the concatenated schema of all base relations (`None` for a
    /// pure cross product).
    pub condition: Option<ScalarExpr>,
    /// The projected output expressions with names (ignored for aggregation views).
    pub projection: Vec<(ScalarExpr, String)>,
    /// Grouping expressions (empty for plain SPJ views).
    pub group_by: Vec<(ScalarExpr, String)>,
    /// Aggregate expressions (empty for plain SPJ views).
    pub aggregates: Vec<(AggregateExpr, String)>,
}

impl ViewDefinition {
    /// A plain select-project-join view.
    pub fn spj(
        relations: Vec<String>,
        condition: Option<ScalarExpr>,
        projection: Vec<(ScalarExpr, String)>,
    ) -> ViewDefinition {
        ViewDefinition {
            relations,
            condition,
            projection,
            group_by: Vec::new(),
            aggregates: Vec::new(),
        }
    }

    /// An aggregation-select-project-join view.
    pub fn aspj(
        relations: Vec<String>,
        condition: Option<ScalarExpr>,
        group_by: Vec<(ScalarExpr, String)>,
        aggregates: Vec<(AggregateExpr, String)>,
    ) -> ViewDefinition {
        ViewDefinition { relations, condition, projection: Vec::new(), group_by, aggregates }
    }

    /// Is this an aggregation view?
    pub fn is_aggregation(&self) -> bool {
        !self.aggregates.is_empty() || !self.group_by.is_empty()
    }
}

/// The Cui–Widom lineage tracer.
#[derive(Debug, Clone)]
pub struct CuiWidomTracer {
    catalog: Catalog,
}

impl CuiWidomTracer {
    /// Create a tracer over a catalog.
    pub fn new(catalog: Catalog) -> CuiWidomTracer {
        CuiWidomTracer { catalog }
    }

    /// Build the plan computing the view itself.
    pub fn view_plan(&self, view: &ViewDefinition) -> Result<LogicalPlan, ExecError> {
        let joined = self.joined_relations(view)?;
        let filtered = match &view.condition {
            Some(c) => LogicalPlan::Selection { input: Arc::new(joined), predicate: c.clone() },
            None => joined,
        };
        Ok(if view.is_aggregation() {
            LogicalPlan::Aggregation {
                input: Arc::new(filtered),
                group_by: view.group_by.clone(),
                aggregates: view.aggregates.clone(),
            }
        } else {
            LogicalPlan::Projection {
                input: Arc::new(filtered),
                exprs: view.projection.clone(),
                distinct: false,
            }
        })
    }

    /// Execute the view.
    ///
    /// The plans built here are selections over pure cross products (that is the shape the
    /// inversion operates on), so they are optimized before execution — join conversion turns
    /// them into hash joins instead of materialising the full cross product.
    pub fn evaluate_view(&self, view: &ViewDefinition) -> Result<Relation, ExecError> {
        let plan = Optimizer::new().optimize(&self.view_plan(view)?)?;
        Executor::new(self.catalog.clone()).execute(&plan)
    }

    /// Compute the lineage of `result_tuple` (a tuple of the view's result): one relation per
    /// accessed base relation, each containing the contributing tuples.
    ///
    /// This is the representation of the original approach — a *list* of relations, without any
    /// association to the original result tuple, which is exactly the drawback the Perm paper's
    /// §III-B motivates against.
    pub fn lineage(
        &self,
        view: &ViewDefinition,
        result_tuple: &Tuple,
    ) -> Result<Vec<Relation>, ExecError> {
        let mut out = Vec::with_capacity(view.relations.len());
        for target_index in 0..view.relations.len() {
            out.push(self.lineage_for_relation(view, result_tuple, target_index)?);
        }
        Ok(out)
    }

    /// The lineage of `result_tuple` with respect to the `target_index`-th base relation.
    pub fn lineage_for_relation(
        &self,
        view: &ViewDefinition,
        result_tuple: &Tuple,
        target_index: usize,
    ) -> Result<Relation, ExecError> {
        let joined = self.joined_relations(view)?;
        let mut predicates = Vec::new();
        if let Some(c) = &view.condition {
            predicates.push(c.clone());
        }

        // Equate the view's output (projection or grouping expressions) with the result tuple.
        let outputs: &[(ScalarExpr, String)] =
            if view.is_aggregation() { &view.group_by } else { &view.projection };
        for (i, (expr, _)) in outputs.iter().enumerate() {
            let value = result_tuple.get(i).cloned().ok_or_else(|| {
                ExecError::Internal(format!(
                    "result tuple has arity {} but the view defines {} output columns",
                    result_tuple.arity(),
                    outputs.len()
                ))
            })?;
            predicates.push(expr.clone().null_safe_eq(ScalarExpr::Literal(value)));
        }

        let selected = LogicalPlan::Selection {
            input: Arc::new(joined),
            predicate: ScalarExpr::conjunction(predicates),
        };

        // Project onto the target relation's attributes.
        let offset: usize = view.relations[..target_index]
            .iter()
            .map(|r| self.catalog.table_schema(r).map(|s| s.arity()).unwrap_or(0))
            .sum();
        let target_schema = self.catalog.table_schema(&view.relations[target_index])?;
        let exprs: Vec<(ScalarExpr, String)> = target_schema
            .attributes()
            .iter()
            .enumerate()
            .map(|(i, a)| (ScalarExpr::column(offset + i, a.name.clone()), a.name.clone()))
            .collect();
        // The distinct matching tuples (the inverse query proper). Optimized first: the raw
        // plan is a selection over a cross product of all accessed relations, which join
        // conversion reduces to hash joins.
        let plan = LogicalPlan::Projection { input: Arc::new(selected), exprs, distinct: true };
        let plan = Optimizer::new().optimize(&plan)?;
        let matches = Executor::new(self.catalog.clone()).execute(&plan)?;
        let match_set: std::collections::HashSet<&Tuple> = matches.tuples().iter().collect();
        // ...materialised as the subset of the base relation (bag semantics: contributing tuples
        // keep their multiplicity in the base relation, cf. footnote 1 of the paper's §III-B).
        let base = self.catalog.table(&view.relations[target_index])?;
        let contributing: Vec<Tuple> =
            base.tuples().iter().filter(|t| match_set.contains(t)).cloned().collect();
        Ok(Relation::from_parts(base.schema().clone(), contributing))
    }

    /// The number of inverse queries needed to trace every tuple of the view result — the cost
    /// profile the related-work section contrasts with Perm's single rewritten query.
    pub fn inverse_query_count(&self, view: &ViewDefinition, result: &Relation) -> usize {
        result.num_rows() * view.relations.len()
    }

    fn joined_relations(&self, view: &ViewDefinition) -> Result<LogicalPlan, ExecError> {
        let mut plan: Option<LogicalPlan> = None;
        for (ref_id, name) in view.relations.iter().enumerate() {
            let schema = self.catalog.table_schema(name)?;
            let scan = LogicalPlan::BaseRelation {
                name: name.clone(),
                alias: None,
                schema: schema.with_qualifier(name),
                ref_id,
            };
            plan = Some(match plan {
                None => scan,
                Some(left) => LogicalPlan::Join {
                    left: Arc::new(left),
                    right: Arc::new(scan),
                    kind: JoinKind::Cross,
                    condition: None,
                },
            });
        }
        plan.ok_or_else(|| ExecError::Internal("a view must access at least one relation".into()))
    }
}

/// Compare a Perm provenance result against the Cui–Widom oracle for a single original result
/// tuple: project the Perm rows matching `original` onto each relation's provenance attribute
/// group and compare as sets against the oracle's relations.
pub fn perm_matches_oracle(
    perm_result: &Relation,
    original_arity: usize,
    original: &Tuple,
    oracle: &[Relation],
) -> bool {
    let schema = perm_result.schema();
    let prov_positions = schema.provenance_indices();
    // Group provenance positions into consecutive runs of equal arity matching the oracle
    // relations (the rewriter appends one group per base relation, in order).
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut cursor = 0;
    for rel in oracle {
        let arity = rel.schema().arity();
        if cursor + arity > prov_positions.len() {
            return false;
        }
        groups.push(prov_positions[cursor..cursor + arity].to_vec());
        cursor += arity;
    }
    if cursor != prov_positions.len() {
        return false;
    }

    for (group, expected) in groups.iter().zip(oracle) {
        let mut actual: Vec<Tuple> = perm_result
            .tuples()
            .iter()
            .filter(|t| (0..original_arity).all(|i| t.get(i) == original.get(i)))
            .map(|t| t.project(group))
            .filter(|t| !t.values().iter().all(|v| v.is_null()))
            .collect();
        actual.sort();
        actual.dedup();
        let mut expected_tuples: Vec<Tuple> = expected.tuples().to_vec();
        expected_tuples.sort();
        expected_tuples.dedup();
        if actual != expected_tuples {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::{tuple, AggregateFunction, DataType, Schema, Value};
    use perm_core::ProvenanceRewriter;
    use perm_exec::execute_plan;

    fn paper_catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .create_table_with_data(
                "shop",
                Relation::new(
                    Schema::from_pairs(&[("name", DataType::Text), ("numempl", DataType::Int)]),
                    vec![tuple!["Merdies", 3], tuple!["Joba", 14]],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data(
                "sales",
                Relation::new(
                    Schema::from_pairs(&[("sname", DataType::Text), ("itemid", DataType::Int)]),
                    vec![
                        tuple!["Merdies", 1],
                        tuple!["Merdies", 2],
                        tuple!["Merdies", 2],
                        tuple!["Joba", 3],
                        tuple!["Joba", 3],
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data(
                "items",
                Relation::new(
                    Schema::from_pairs(&[("id", DataType::Int), ("price", DataType::Int)]),
                    vec![tuple![1, 100], tuple![2, 10], tuple![3, 25]],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
    }

    /// The paper's q_ex as a decomposed ASPJ view definition.
    fn qex_view() -> ViewDefinition {
        // Combined schema: shop(name, numempl) ++ sales(sname, itemid) ++ items(id, price).
        let name = ScalarExpr::column(0, "name");
        let sname = ScalarExpr::column(2, "sname");
        let itemid = ScalarExpr::column(3, "itemid");
        let id = ScalarExpr::column(4, "id");
        let price = ScalarExpr::column(5, "price");
        ViewDefinition::aspj(
            vec!["shop".into(), "sales".into(), "items".into()],
            Some(name.clone().eq(sname).and(itemid.eq(id))),
            vec![(name, "name".into())],
            vec![(AggregateExpr::new(AggregateFunction::Sum, price), "sum_price".into())],
        )
    }

    #[test]
    fn inversion_reproduces_the_papers_motivating_example() {
        // §III-B: the lineage of (Merdies, 120) is presented as a *list of relations*.
        let catalog = paper_catalog();
        let tracer = CuiWidomTracer::new(catalog);
        let view = qex_view();
        let result = tracer.evaluate_view(&view).unwrap();
        assert_eq!(result.num_rows(), 2);
        let merdies = tuple!["Merdies", 120];
        let lineage = tracer.lineage(&view, &merdies).unwrap();
        assert_eq!(lineage.len(), 3);
        assert_eq!(lineage[0].sorted().tuples(), &[tuple!["Merdies", 3]]);
        assert_eq!(
            lineage[1].sorted().tuples(),
            &[tuple!["Merdies", 1], tuple!["Merdies", 2], tuple!["Merdies", 2]]
        );
        assert_eq!(lineage[2].sorted().tuples(), &[tuple![1, 100], tuple![2, 10]]);
        assert_eq!(tracer.inverse_query_count(&view, &result), 6);
    }

    #[test]
    fn perm_rewrite_agrees_with_the_inversion_oracle_on_the_example() {
        // §III-E: Perm's influence-contribution semantics ≡ Cui–Widom lineage.
        let catalog = paper_catalog();
        let tracer = CuiWidomTracer::new(catalog.clone());
        let view = qex_view();
        let view_plan = tracer.view_plan(&view).unwrap();
        let rewritten = ProvenanceRewriter::new().rewrite(&view_plan).unwrap();
        let perm_result = execute_plan(&catalog, &rewritten).unwrap();
        let original = tracer.evaluate_view(&view).unwrap();
        for t in original.tuples() {
            let oracle = tracer.lineage(&view, t).unwrap();
            assert!(
                perm_matches_oracle(&perm_result, original.arity(), t, &oracle),
                "Perm provenance and Cui-Widom lineage disagree for {t}"
            );
        }
    }

    #[test]
    fn spj_lineage_for_a_selection() {
        let catalog = paper_catalog();
        let tracer = CuiWidomTracer::new(catalog);
        let view = ViewDefinition::spj(
            vec!["items".into()],
            Some(ScalarExpr::column(1, "price").eq(ScalarExpr::literal(10i64))),
            vec![(ScalarExpr::column(0, "id"), "id".into())],
        );
        let result = tracer.evaluate_view(&view).unwrap();
        assert_eq!(result.tuples(), &[tuple![2]]);
        let lineage = tracer.lineage(&view, &tuple![2]).unwrap();
        assert_eq!(lineage[0].tuples(), &[tuple![2, 10]]);
    }

    #[test]
    fn lineage_of_a_tuple_not_in_the_result_is_empty() {
        let catalog = paper_catalog();
        let tracer = CuiWidomTracer::new(catalog);
        let view = qex_view();
        let lineage = tracer.lineage(&view, &tuple!["Nowhere", 0]).unwrap();
        assert!(lineage.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn oracle_mismatch_is_detected() {
        let catalog = paper_catalog();
        let tracer = CuiWidomTracer::new(catalog.clone());
        let view = qex_view();
        let view_plan = tracer.view_plan(&view).unwrap();
        let rewritten = ProvenanceRewriter::new().rewrite(&view_plan).unwrap();
        let perm_result = execute_plan(&catalog, &rewritten).unwrap();
        // Deliberately wrong oracle: swap the lineage of Merdies and Joba.
        let joba_lineage = tracer.lineage(&view, &tuple!["Joba", 50]).unwrap();
        assert!(!perm_matches_oracle(&perm_result, 2, &tuple!["Merdies", 120], &joba_lineage));
        let _ = Value::Null; // keep the Value import exercised on all platforms
    }
}
