//! A Trio-style eager lineage baseline.
//!
//! Trio (Agrawal et al., 2006) computes the provenance of a query *during* execution and stores
//! it in lineage relations; tracing the provenance of a tuple later performs iterative lookups
//! through these lineage relations, one derivation level at a time. This module reproduces that
//! cost structure on top of the same storage/executor substrate that Perm uses, so that the
//! Figure 15 comparison measures the architectural difference (eager materialised lineage with
//! tuple-at-a-time tracing vs. Perm's lazy set-oriented query rewriting) rather than differences
//! in engine quality.
//!
//! Like Trio's published prototype, the baseline supports select-project-join queries and single
//! set operations; aggregation and sublinks are not supported (the paper notes the same
//! restriction, which is why the §V-C comparison uses simple selections).

use std::collections::HashMap;

use perm_algebra::{Schema, Tuple};
use perm_core::{PermDb, PermError};
use perm_storage::{Catalog, Relation};

/// One lineage fact: result row `result_row` of a derived table was produced (in part) from
/// `source_row` of `source_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageEntry {
    /// Index of the result tuple in the derived table.
    pub result_row: usize,
    /// Name of the source table (a base table or a previously derived table).
    pub source_table: String,
    /// Index of the contributing tuple in the source table.
    pub source_row: usize,
}

/// The lineage relation of one derived table.
#[derive(Debug, Clone, Default)]
pub struct LineageTable {
    entries: Vec<LineageEntry>,
}

impl LineageTable {
    /// All lineage entries.
    pub fn entries(&self) -> &[LineageEntry] {
        &self.entries
    }

    /// The lineage entries of one result row.
    pub fn for_row(&self, result_row: usize) -> impl Iterator<Item = &LineageEntry> {
        self.entries.iter().filter(move |e| e.result_row == result_row)
    }

    /// Number of stored lineage facts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the lineage relation empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A provenance fact returned by tracing: a contributing base tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedTuple {
    /// The base (or derived, when tracing stops early) table the tuple belongs to.
    pub table: String,
    /// The row index within that table.
    pub row: usize,
    /// The tuple itself.
    pub tuple: Tuple,
}

/// A Trio-style provenance management system: eager lineage computation at derivation time,
/// iterative lineage tracing at query time.
#[derive(Debug)]
pub struct TrioStyleDb {
    db: PermDb,
    lineage: HashMap<String, LineageTable>,
    /// Tables that were created by [`TrioStyleDb::derive_table`] (everything else is a base
    /// table and terminates tracing).
    derived: Vec<String>,
}

impl TrioStyleDb {
    /// Create a Trio-style database over an existing catalog (shares the stored data).
    pub fn new(catalog: Catalog) -> TrioStyleDb {
        TrioStyleDb {
            db: PermDb::with_catalog(catalog, Default::default()),
            lineage: HashMap::new(),
            derived: Vec::new(),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    /// Execute `sql` (a select-project-join query or single set operation), materialise its
    /// result as table `name` and **eagerly** record its lineage relation.
    ///
    /// This is the expensive step of the Trio architecture: provenance is computed and stored
    /// whether or not it is ever queried.
    pub fn derive_table(&mut self, name: &str, sql: &str) -> Result<usize, PermError> {
        // Compute result plus provenance in one pass (this stands in for Trio's instrumented
        // execution) and split it into the materialised result and the lineage relation.
        let annotated = self.db.provenance_of_query(sql)?;
        let schema = annotated.schema().clone();
        let normal_positions = schema.normal_indices();
        let prov_positions = schema.provenance_indices();

        // Group provenance columns by the base relation reference they were derived from. The
        // rewriter appends one group per base-relation reference, in plan pre-order, so the
        // groups can be recovered from the analyzed plan's relation list and arities.
        let plan = self.db.analyzer().analyze_query_sql(sql)?;
        let base_refs: Vec<(String, usize)> = plan
            .base_relations()
            .iter()
            .filter_map(|p| match p {
                perm_algebra::LogicalPlan::BaseRelation { name, schema, .. } => {
                    Some((name.clone(), schema.arity()))
                }
                _ => None,
            })
            .collect();
        let groups = group_provenance_columns(&prov_positions, &base_refs)?;

        // Materialise the result table (distinct original tuples, in first-appearance order —
        // Trio stores each derived tuple once and hangs lineage off it).
        let mut result_rows: Vec<Tuple> = Vec::new();
        let mut row_index: HashMap<Tuple, usize> = HashMap::new();
        let mut lineage = LineageTable::default();

        // Pre-build per-source-table tuple → row-index maps for lineage resolution.
        let mut source_indexes: HashMap<String, HashMap<Tuple, usize>> = HashMap::new();
        for (table, _) in &groups {
            if !source_indexes.contains_key(table) {
                let rel = self.db.catalog().table(table)?;
                let mut index = HashMap::new();
                for (i, t) in rel.tuples().iter().enumerate() {
                    index.entry(t.clone()).or_insert(i);
                }
                source_indexes.insert(table.clone(), index);
            }
        }

        for row in annotated.tuples() {
            let original = row.project(&normal_positions);
            let result_row = match row_index.get(&original) {
                Some(&i) => i,
                None => {
                    let i = result_rows.len();
                    row_index.insert(original.clone(), i);
                    result_rows.push(original);
                    i
                }
            };
            for (table, positions) in &groups {
                let source_tuple = row.project(positions);
                if source_tuple.values().iter().all(|v| v.is_null()) {
                    continue; // outer-join padding: no contribution from this relation
                }
                if let Some(&source_row) =
                    source_indexes.get(table).and_then(|idx| idx.get(&source_tuple))
                {
                    let entry =
                        LineageEntry { result_row, source_table: table.clone(), source_row };
                    if !lineage.entries.contains(&entry) {
                        lineage.entries.push(entry);
                    }
                }
            }
        }

        let result_schema =
            Schema::new(normal_positions.iter().map(|&i| schema.attributes()[i].clone()).collect());
        let rows = result_rows.len();
        self.db.catalog().overwrite(name, Relation::from_parts(result_schema, result_rows))?;

        // Materialise the lineage relation as an ordinary table, exactly like Trio does: later
        // tracing queries it through SQL, one result tuple at a time.
        let lineage_schema = Schema::from_pairs(&[
            ("result_row", perm_algebra::DataType::Int),
            ("source_table", perm_algebra::DataType::Text),
            ("source_row", perm_algebra::DataType::Int),
        ]);
        let lineage_rows: Vec<Tuple> = lineage
            .entries
            .iter()
            .map(|e| {
                Tuple::new(vec![
                    perm_algebra::Value::Int(e.result_row as i64),
                    perm_algebra::Value::text(e.source_table.clone()),
                    perm_algebra::Value::Int(e.source_row as i64),
                ])
            })
            .collect();
        self.db.catalog().overwrite(
            &lineage_table_name(name),
            Relation::from_parts(lineage_schema, lineage_rows),
        )?;

        self.lineage.insert(name.to_ascii_lowercase(), lineage);
        self.derived.push(name.to_ascii_lowercase());
        Ok(rows)
    }

    /// The stored lineage relation of a derived table.
    pub fn lineage_of(&self, table: &str) -> Option<&LineageTable> {
        self.lineage.get(&table.to_ascii_lowercase())
    }

    /// Trace the provenance of one tuple of a derived table down to base tables, iteratively
    /// following lineage relations one level at a time (Trio's tracing strategy).
    ///
    /// Each step issues an SQL query against the stored lineage relation of the current level —
    /// the tuple-at-a-time access pattern that the Figure 15 comparison contrasts with Perm's
    /// single set-oriented rewritten query.
    pub fn trace(&self, table: &str, row: usize) -> Result<Vec<TracedTuple>, PermError> {
        let mut out = Vec::new();
        let mut frontier = vec![(table.to_ascii_lowercase(), row)];
        while let Some((current_table, current_row)) = frontier.pop() {
            if self.lineage.contains_key(&current_table) {
                // A derived table: query its stored lineage relation for this one result row.
                let lineage_sql = format!(
                    "SELECT source_table, source_row FROM {} WHERE result_row = {current_row}",
                    lineage_table_name(&current_table)
                );
                let entries = self.db.execute_sql(&lineage_sql)?;
                for entry in entries.tuples() {
                    let source_table = entry[0].to_string();
                    let source_row = entry[1].as_i64().unwrap_or(0) as usize;
                    frontier.push((source_table, source_row));
                }
            } else {
                // A base table: fetch the tuple itself (tuple-at-a-time, as Trio does).
                let rel = self.db.catalog().table(&current_table)?;
                let tuple = rel
                    .tuples()
                    .get(current_row)
                    .cloned()
                    .ok_or_else(|| PermError::Other(format!(
                        "lineage points to row {current_row} of '{current_table}', which does not exist"
                    )))?;
                out.push(TracedTuple { table: current_table.clone(), row: current_row, tuple });
            }
        }
        Ok(out)
    }

    /// Trace the provenance of *every* tuple of a derived table (the operation measured in the
    /// Figure 15 comparison). Returns, per result row, the list of contributing base tuples.
    pub fn trace_all(&self, table: &str) -> Result<Vec<Vec<TracedTuple>>, PermError> {
        let rel = self.db.catalog().table(table)?;
        (0..rel.num_rows()).map(|row| self.trace(table, row)).collect()
    }

    /// Names of all derived tables, in derivation order.
    pub fn derived_tables(&self) -> &[String] {
        &self.derived
    }
}

/// Name of the stored lineage relation of a derived table.
fn lineage_table_name(table: &str) -> String {
    format!("{}__lineage", table.to_ascii_lowercase())
}

/// Group provenance attribute positions by the base relation reference they belong to.
///
/// The provenance rewriter appends one contiguous group of provenance attributes per base
/// relation reference, in plan pre-order; `base_refs` lists those references with their arities,
/// so the groups are simply consecutive runs of the corresponding widths.
fn group_provenance_columns(
    prov_positions: &[usize],
    base_refs: &[(String, usize)],
) -> Result<Vec<(String, Vec<usize>)>, PermError> {
    let expected: usize = base_refs.iter().map(|(_, arity)| arity).sum();
    if expected != prov_positions.len() {
        return Err(PermError::Other(format!(
            "cannot align {} provenance columns with base relations of total arity {expected}; \
             the Trio-style baseline supports select-project-join queries over base tables only",
            prov_positions.len()
        )));
    }
    let mut groups = Vec::with_capacity(base_refs.len());
    let mut cursor = 0;
    for (name, arity) in base_refs {
        groups.push((name.clone(), prov_positions[cursor..cursor + arity].to_vec()));
        cursor += arity;
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::{tuple, DataType, Value};

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .create_table_with_data(
                "supplier",
                Relation::new(
                    Schema::from_pairs(&[("s_suppkey", DataType::Int), ("s_name", DataType::Text)]),
                    (1..=10).map(|i| tuple![i, format!("Supplier#{i}")]).collect(),
                )
                .unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data(
                "nation",
                Relation::new(
                    Schema::from_pairs(&[
                        ("n_nationkey", DataType::Int),
                        ("n_name", DataType::Text),
                    ]),
                    vec![tuple![0, "GERMANY"], tuple![1, "FRANCE"]],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
    }

    #[test]
    fn derive_and_trace_simple_selection() {
        let mut trio = TrioStyleDb::new(catalog());
        let rows = trio
            .derive_table(
                "small_suppliers",
                "SELECT s_suppkey, s_name FROM supplier WHERE s_suppkey <= 3",
            )
            .unwrap();
        assert_eq!(rows, 3);
        let lineage = trio.lineage_of("small_suppliers").unwrap();
        assert_eq!(lineage.len(), 3);
        let traced = trio.trace("small_suppliers", 0).unwrap();
        assert_eq!(traced.len(), 1);
        assert_eq!(traced[0].table, "supplier");
        assert_eq!(traced[0].tuple[0], Value::Int(1));
    }

    #[test]
    fn derive_join_has_lineage_from_both_relations() {
        let mut trio = TrioStyleDb::new(catalog());
        trio.derive_table(
            "sup_nation",
            "SELECT s_name, n_name FROM supplier, nation WHERE s_suppkey % 2 = n_nationkey",
        )
        .unwrap();
        let all = trio.trace_all("sup_nation").unwrap();
        assert_eq!(all.len(), 10);
        for contributors in &all {
            let tables: Vec<&str> = contributors.iter().map(|t| t.table.as_str()).collect();
            assert!(tables.contains(&"supplier"));
            assert!(tables.contains(&"nation"));
        }
    }

    #[test]
    fn multi_level_derivation_traces_to_base_tables() {
        let mut trio = TrioStyleDb::new(catalog());
        trio.derive_table("level1", "SELECT s_suppkey, s_name FROM supplier WHERE s_suppkey <= 5")
            .unwrap();
        trio.derive_table("level2", "SELECT s_suppkey FROM level1 WHERE s_suppkey >= 4").unwrap();
        let traced = trio.trace("level2", 0).unwrap();
        // Tracing level2 row 0 goes through level1 down to the supplier base table.
        assert_eq!(traced.len(), 1);
        assert_eq!(traced[0].table, "supplier");
        assert!(matches!(traced[0].tuple[0], Value::Int(4 | 5)));
        assert_eq!(trio.derived_tables(), &["level1".to_string(), "level2".to_string()]);
    }

    #[test]
    fn tracing_missing_rows_is_an_error() {
        let mut trio = TrioStyleDb::new(catalog());
        trio.derive_table("d", "SELECT s_suppkey FROM supplier WHERE s_suppkey = 1").unwrap();
        assert!(
            trio.trace("d", 99).is_ok_and(|v| v.is_empty()),
            "no lineage entries for unknown rows"
        );
    }
}
