//! The TPC-H benchmark queries supported by Perm and a seeded parameter generator (`qgen`
//! equivalent).
//!
//! The paper evaluates the fifteen TPC-H queries that do not require correlated sublinks:
//! 1, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16 and 19 (§V: "we can not compute the
//! provenance of queries 2, 4, 17, 18, 20, 21 and 22"). The templates below follow the official
//! query definitions with two pragmatic adaptations, both documented in `DESIGN.md`:
//!
//! * Q15's `revenue` view is inlined (the view body appears as a derived table and inside the
//!   scalar sublink) so the query is self-contained.
//! * Q19's join predicate `p_partkey = l_partkey`, which the official text repeats inside each
//!   disjunct, is factored out in front of the disjunction — a semantically identical form that
//!   lets a simple optimizer recognise the equi-join.
//!
//! Each template substitutes randomised parameters from a seeded RNG, mirroring the paper's use
//! of the TPC-H query generator to produce 100 parameter variants per query.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use perm_algebra::value::format_date;

use crate::dbgen::{
    NATIONS, REGIONS, SEGMENTS, SHIP_MODES, TYPE_SYLLABLE_1, TYPE_SYLLABLE_2, TYPE_SYLLABLE_3,
};

/// The TPC-H query numbers supported by the Perm prototype (and this reproduction).
pub fn supported_query_ids() -> Vec<u32> {
    vec![1, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 19]
}

/// The TPC-H query numbers that require correlated sublinks and are therefore unsupported,
/// matching the paper.
pub fn unsupported_query_ids() -> Vec<u32> {
    vec![2, 4, 17, 18, 20, 21, 22]
}

/// A parameterised TPC-H query template.
#[derive(Debug, Clone)]
pub struct TpchQueryTemplate {
    /// The official query number.
    pub id: u32,
    /// A short description of what the query computes.
    pub description: &'static str,
}

impl TpchQueryTemplate {
    /// Generate the query text with parameters drawn from `rng`.
    pub fn generate(&self, rng: &mut SmallRng) -> String {
        query_sql(self.id, rng)
    }

    /// Generate the SQL-PLE provenance variant (`SELECT PROVENANCE ...`) of the query.
    pub fn generate_provenance(&self, rng: &mut SmallRng) -> String {
        add_provenance_keyword(&self.generate(rng))
    }
}

/// The template for a supported TPC-H query.
///
/// # Panics
/// Panics if `id` is not one of [`supported_query_ids`].
pub fn tpch_query(id: u32) -> TpchQueryTemplate {
    let description = match id {
        1 => "pricing summary report (aggregation over most of lineitem)",
        3 => "shipping priority (customer/orders/lineitem join, top-10)",
        5 => "local supplier volume (six-way join)",
        6 => "forecasting revenue change (selective aggregation)",
        7 => "volume shipping (two nation references, derived table)",
        8 => "national market share (eight-way join, CASE aggregation)",
        9 => "product type profit measure (six-way join, LIKE)",
        10 => "returned item reporting (top-20 customers)",
        11 => "important stock identification (HAVING with scalar sublink)",
        12 => "shipping modes and order priority (CASE aggregation)",
        13 => "customer distribution (outer join, nested aggregation)",
        14 => "promotion effect (CASE / LIKE aggregation)",
        15 => "top supplier (derived table + scalar sublink, view inlined)",
        16 => "parts/supplier relationship (NOT IN sublink, count distinct)",
        19 => "discounted revenue (disjunctive predicate)",
        other => panic!("TPC-H query {other} is not supported by Perm (correlated sublinks)"),
    };
    TpchQueryTemplate { id, description }
}

/// All supported query templates.
pub fn all_templates() -> Vec<TpchQueryTemplate> {
    supported_query_ids().into_iter().map(tpch_query).collect()
}

/// Deterministic RNG for a `(query, variant)` pair — the equivalent of running qgen with a seed.
pub fn variant_rng(query: u32, variant: u64) -> SmallRng {
    SmallRng::seed_from_u64(0x5EED_0000 + u64::from(query) * 1_000 + variant)
}

/// Insert the SQL-PLE `PROVENANCE` keyword into the outermost SELECT of a query.
pub fn add_provenance_keyword(sql: &str) -> String {
    let trimmed = sql.trim_start();
    let rest = &trimmed["SELECT".len()..];
    format!("SELECT PROVENANCE{rest}")
}

fn date_in(rng: &mut SmallRng, year_lo: i32, year_hi: i32) -> String {
    let year = rng.gen_range(year_lo..=year_hi);
    let month = rng.gen_range(1..=12u32);
    format_date(perm_algebra::value::days_from_civil(year, month, 1))
}

fn pick<'a>(rng: &mut SmallRng, items: &'a [&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

fn nation(rng: &mut SmallRng) -> &'static str {
    NATIONS[rng.gen_range(0..NATIONS.len())].0
}

fn query_sql(id: u32, rng: &mut SmallRng) -> String {
    match id {
        1 => {
            let delta = rng.gen_range(60..=120);
            format!(
                "SELECT l_returnflag, l_linestatus, \
                        sum(l_quantity) AS sum_qty, \
                        sum(l_extendedprice) AS sum_base_price, \
                        sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                        sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
                        avg(l_quantity) AS avg_qty, \
                        avg(l_extendedprice) AS avg_price, \
                        avg(l_discount) AS avg_disc, \
                        count(*) AS count_order \
                 FROM lineitem \
                 WHERE l_shipdate <= date '1998-12-01' - interval '{delta}' day \
                 GROUP BY l_returnflag, l_linestatus \
                 ORDER BY l_returnflag, l_linestatus"
            )
        }
        3 => {
            let segment = pick(rng, &SEGMENTS);
            let date = date_in(rng, 1995, 1995);
            format!(
                "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue, o_orderdate, o_shippriority \
                 FROM customer, orders, lineitem \
                 WHERE c_mktsegment = '{segment}' AND c_custkey = o_custkey AND l_orderkey = o_orderkey \
                   AND o_orderdate < date '{date}' AND l_shipdate > date '{date}' \
                 GROUP BY l_orderkey, o_orderdate, o_shippriority \
                 ORDER BY revenue DESC, o_orderdate LIMIT 10"
            )
        }
        5 => {
            let region = pick(rng, &REGIONS);
            let date = format!("{}-01-01", rng.gen_range(1993..=1997));
            format!(
                "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue \
                 FROM customer, orders, lineitem, supplier, nation, region \
                 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey \
                   AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                   AND r_name = '{region}' AND o_orderdate >= date '{date}' \
                   AND o_orderdate < date '{date}' + interval '1' year \
                 GROUP BY n_name ORDER BY revenue DESC"
            )
        }
        6 => {
            let date = format!("{}-01-01", rng.gen_range(1993..=1997));
            let discount = rng.gen_range(2..=9) as f64 / 100.0;
            let quantity = rng.gen_range(24..=25);
            format!(
                "SELECT sum(l_extendedprice * l_discount) AS revenue \
                 FROM lineitem \
                 WHERE l_shipdate >= date '{date}' AND l_shipdate < date '{date}' + interval '1' year \
                   AND l_discount BETWEEN {lo:.2} AND {hi:.2} AND l_quantity < {quantity}",
                lo = discount - 0.01,
                hi = discount + 0.01
            )
        }
        7 => {
            let n1 = nation(rng);
            let mut n2 = nation(rng);
            while n2 == n1 {
                n2 = nation(rng);
            }
            format!(
                "SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue \
                 FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
                              extract(year FROM l_shipdate) AS l_year, \
                              l_extendedprice * (1 - l_discount) AS volume \
                       FROM supplier, lineitem, orders, customer, nation n1, nation n2 \
                       WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey \
                         AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey \
                         AND ((n1.n_name = '{n1}' AND n2.n_name = '{n2}') OR (n1.n_name = '{n2}' AND n2.n_name = '{n1}')) \
                         AND l_shipdate BETWEEN date '1995-01-01' AND date '1996-12-31') AS shipping \
                 GROUP BY supp_nation, cust_nation, l_year \
                 ORDER BY supp_nation, cust_nation, l_year"
            )
        }
        8 => {
            let nation_name = nation(rng);
            let region = pick(rng, &REGIONS);
            let p_type = format!(
                "{} {} {}",
                pick(rng, &TYPE_SYLLABLE_1),
                pick(rng, &TYPE_SYLLABLE_2),
                pick(rng, &TYPE_SYLLABLE_3)
            );
            format!(
                "SELECT o_year, sum(CASE WHEN nation = '{nation_name}' THEN volume ELSE 0 END) / sum(volume) AS mkt_share \
                 FROM (SELECT extract(year FROM o_orderdate) AS o_year, \
                              l_extendedprice * (1 - l_discount) AS volume, n2.n_name AS nation \
                       FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
                       WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey \
                         AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey \
                         AND r_name = '{region}' AND s_nationkey = n2.n_nationkey \
                         AND o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31' \
                         AND p_type = '{p_type}') AS all_nations \
                 GROUP BY o_year ORDER BY o_year"
            )
        }
        9 => {
            let color = pick(
                rng,
                &["green", "blue", "almond", "antique", "azure", "beige", "blush", "brown"],
            );
            format!(
                "SELECT nation, o_year, sum(amount) AS sum_profit \
                 FROM (SELECT n_name AS nation, extract(year FROM o_orderdate) AS o_year, \
                              l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount \
                       FROM part, supplier, lineitem, partsupp, orders, nation \
                       WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
                         AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
                         AND p_name LIKE '%{color}%') AS profit \
                 GROUP BY nation, o_year ORDER BY nation, o_year DESC"
            )
        }
        10 => {
            let date = format!("{}-0{}-01", rng.gen_range(1993..=1994), rng.gen_range(1..=9));
            format!(
                "SELECT c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) AS revenue, \
                        c_acctbal, n_name, c_address, c_phone, c_comment \
                 FROM customer, orders, lineitem, nation \
                 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                   AND o_orderdate >= date '{date}' AND o_orderdate < date '{date}' + interval '3' month \
                   AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
                 GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
                 ORDER BY revenue DESC LIMIT 20"
            )
        }
        11 => {
            let nation_name = nation(rng);
            let fraction = 0.0001;
            format!(
                "SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS part_value \
                 FROM partsupp, supplier, nation \
                 WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = '{nation_name}' \
                 GROUP BY ps_partkey \
                 HAVING sum(ps_supplycost * ps_availqty) > \
                   (SELECT sum(ps_supplycost * ps_availqty) * {fraction} \
                    FROM partsupp, supplier, nation \
                    WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = '{nation_name}') \
                 ORDER BY part_value DESC"
            )
        }
        12 => {
            let m1 = pick(rng, &SHIP_MODES);
            let mut m2 = pick(rng, &SHIP_MODES);
            while m2 == m1 {
                m2 = pick(rng, &SHIP_MODES);
            }
            let date = format!("{}-01-01", rng.gen_range(1993..=1997));
            format!(
                "SELECT l_shipmode, \
                        sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, \
                        sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count \
                 FROM orders, lineitem \
                 WHERE o_orderkey = l_orderkey AND l_shipmode IN ('{m1}', '{m2}') \
                   AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
                   AND l_receiptdate >= date '{date}' AND l_receiptdate < date '{date}' + interval '1' year \
                 GROUP BY l_shipmode ORDER BY l_shipmode"
            )
        }
        13 => {
            let word1 = pick(rng, &["special", "pending", "unusual", "express"]);
            let word2 = pick(rng, &["packages", "requests", "accounts", "deposits"]);
            format!(
                "SELECT c_count, count(*) AS custdist \
                 FROM (SELECT c_custkey, count(o_orderkey) AS c_count \
                       FROM customer LEFT OUTER JOIN orders \
                         ON c_custkey = o_custkey AND o_comment NOT LIKE '%{word1}%{word2}%' \
                       GROUP BY c_custkey) AS c_orders \
                 GROUP BY c_count ORDER BY custdist DESC, c_count DESC"
            )
        }
        14 => {
            let date = format!("{}-0{}-01", rng.gen_range(1993..=1997), rng.gen_range(1..=9));
            format!(
                "SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0 END) \
                        / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue \
                 FROM lineitem, part \
                 WHERE l_partkey = p_partkey AND l_shipdate >= date '{date}' \
                   AND l_shipdate < date '{date}' + interval '1' month"
            )
        }
        15 => {
            let date = format!("{}-0{}-01", rng.gen_range(1993..=1997), rng.gen_range(1..=9));
            let revenue_body = format!(
                "SELECT l_suppkey AS supplier_no, sum(l_extendedprice * (1 - l_discount)) AS total_revenue \
                 FROM lineitem \
                 WHERE l_shipdate >= date '{date}' AND l_shipdate < date '{date}' + interval '3' month \
                 GROUP BY l_suppkey"
            );
            format!(
                "SELECT s_suppkey, s_name, s_address, s_phone, total_revenue \
                 FROM supplier, ({revenue_body}) AS revenue \
                 WHERE s_suppkey = supplier_no AND total_revenue = \
                   (SELECT max(total_revenue) FROM ({revenue_body}) AS revenue_inner) \
                 ORDER BY s_suppkey"
            )
        }
        16 => {
            let brand = format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
            let p_type = format!("{} {}", pick(rng, &TYPE_SYLLABLE_1), pick(rng, &TYPE_SYLLABLE_2));
            let mut sizes: Vec<String> = Vec::new();
            while sizes.len() < 8 {
                let s = rng.gen_range(1..=50).to_string();
                if !sizes.contains(&s) {
                    sizes.push(s);
                }
            }
            format!(
                "SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt \
                 FROM partsupp, part \
                 WHERE p_partkey = ps_partkey AND p_brand <> '{brand}' AND p_type NOT LIKE '{p_type}%' \
                   AND p_size IN ({sizes}) \
                   AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%') \
                 GROUP BY p_brand, p_type, p_size \
                 ORDER BY supplier_cnt DESC, p_brand, p_type, p_size",
                sizes = sizes.join(", ")
            )
        }
        19 => {
            let b1 = format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
            let b2 = format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
            let b3 = format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
            let q1 = rng.gen_range(1..=10);
            let q2 = rng.gen_range(10..=20);
            let q3 = rng.gen_range(20..=30);
            format!(
                "SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue \
                 FROM lineitem, part \
                 WHERE p_partkey = l_partkey AND l_shipinstruct = 'DELIVER IN PERSON' \
                   AND l_shipmode IN ('AIR', 'REG AIR') \
                   AND ((p_brand = '{b1}' AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
                         AND l_quantity >= {q1} AND l_quantity <= {q1} + 10 AND p_size BETWEEN 1 AND 5) \
                     OR (p_brand = '{b2}' AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
                         AND l_quantity >= {q2} AND l_quantity <= {q2} + 10 AND p_size BETWEEN 1 AND 10) \
                     OR (p_brand = '{b3}' AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
                         AND l_quantity >= {q3} AND l_quantity <= {q3} + 10 AND p_size BETWEEN 1 AND 15))"
            )
        }
        other => panic!("TPC-H query {other} is not supported"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{generate_catalog, TpchScale};
    use perm_core::PermDb;

    #[test]
    fn fifteen_supported_and_seven_unsupported_queries() {
        assert_eq!(supported_query_ids().len(), 15);
        assert_eq!(unsupported_query_ids().len(), 7);
        let mut all: Vec<u32> = supported_query_ids();
        all.extend(unsupported_query_ids());
        all.sort_unstable();
        assert_eq!(all, (1..=22).collect::<Vec<_>>());
    }

    #[test]
    fn templates_generate_deterministic_sql() {
        for id in supported_query_ids() {
            let a = tpch_query(id).generate(&mut variant_rng(id, 0));
            let b = tpch_query(id).generate(&mut variant_rng(id, 0));
            assert_eq!(a, b, "query {id} must be deterministic for a fixed variant");
            let c = tpch_query(id).generate(&mut variant_rng(id, 1));
            // Different variants usually differ (Q1 only varies a number, so check containment
            // of the SELECT keyword as a minimum).
            assert!(c.starts_with("SELECT"));
        }
    }

    #[test]
    fn provenance_variant_adds_the_keyword_to_the_outer_select_only() {
        let sql = tpch_query(13).generate(&mut variant_rng(13, 0));
        let prov = add_provenance_keyword(&sql);
        assert!(prov.starts_with("SELECT PROVENANCE"));
        assert_eq!(prov.matches("PROVENANCE").count(), 1);
    }

    #[test]
    fn all_supported_queries_parse_analyze_and_execute_at_tiny_scale() {
        let catalog = generate_catalog(TpchScale::test(), 11);
        let db = PermDb::with_catalog(catalog, Default::default());
        for id in supported_query_ids() {
            let sql = tpch_query(id).generate(&mut variant_rng(id, 0));
            let result = db.execute_sql(&sql);
            assert!(result.is_ok(), "query {id} failed: {:?}\nSQL: {sql}", result.err());
        }
    }

    #[test]
    fn all_supported_queries_compute_provenance_at_tiny_scale() {
        let catalog = generate_catalog(TpchScale::test(), 11);
        let db = PermDb::with_catalog(catalog, Default::default());
        for id in supported_query_ids() {
            let sql = tpch_query(id).generate_provenance(&mut variant_rng(id, 0));
            let result = db.execute_sql(&sql);
            assert!(
                result.is_ok(),
                "provenance of query {id} failed: {:?}\nSQL: {sql}",
                result.err()
            );
            let relation = result.unwrap();
            assert!(
                !relation.schema().provenance_indices().is_empty(),
                "provenance of query {id} should expose provenance attributes"
            );
        }
    }
}
