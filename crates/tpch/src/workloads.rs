//! Artificial workload generators for the paper's §V-B and §V-C experiments.
//!
//! * [`set_operation_query`] — random set-operation trees (union/intersection only, as in the
//!   paper) over selections on `part`, parameterised by the number of leaf selections
//!   (`numSetOp`, Figure 12).
//! * [`spj_query`] — random select-project-join trees with `numSub` leaf subqueries
//!   (Figure 13).
//! * [`nested_aggregation_query`] — chains of `agg` aggregation operators, each grouping its
//!   child's output on the primary key divided by `numGrp = |part|^(1/agg)` (Figure 14).
//! * [`trio_selection_queries`] — the 1000 simple key-range selections on `supplier` used for
//!   the Trio comparison (Figure 15).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a workload run.
pub fn workload_rng(experiment: &str, variant: u64) -> SmallRng {
    let tag: u64 = experiment.bytes().map(u64::from).sum();
    SmallRng::seed_from_u64(0xA11CE ^ (tag << 16) ^ variant)
}

/// A random key-range selection on `part`, used as the leaf of the artificial queries.
fn part_selection(rng: &mut SmallRng, num_parts: usize) -> String {
    let width = (num_parts / 4).max(1);
    let lo = rng.gen_range(1..=num_parts.max(1));
    let hi = lo + rng.gen_range(1..=width);
    format!("SELECT p_partkey, p_size FROM part WHERE p_partkey BETWEEN {lo} AND {hi}")
}

/// A random set-operation query with `num_set_ops` leaf selections over `part`.
///
/// Only `UNION ALL` and `INTERSECT ALL` are used, matching the paper's experiment (set
/// difference degenerates to cross products and is evaluated separately in §V-A).
pub fn set_operation_query(rng: &mut SmallRng, num_set_ops: usize, num_parts: usize) -> String {
    let leaves = num_set_ops.max(1) + 1;
    let mut sql = part_selection(rng, num_parts);
    for _ in 1..leaves {
        let op = if rng.gen_bool(0.5) { "UNION ALL" } else { "INTERSECT ALL" };
        sql = format!("{sql} {op} {}", part_selection(rng, num_parts));
    }
    sql
}

/// A random select-project-join query with `num_sub` leaf subqueries over `part`.
///
/// The leaves are key-range selections; consecutive leaves are equi-joined on `p_partkey`, which
/// yields a random left-deep join tree like the paper's generator.
pub fn spj_query(rng: &mut SmallRng, num_sub: usize, num_parts: usize) -> String {
    let num_sub = num_sub.max(1);
    let mut from_items = Vec::with_capacity(num_sub);
    for i in 0..num_sub {
        from_items.push(format!("({}) AS s{i}", part_selection(rng, num_parts)));
    }
    let mut conditions = Vec::new();
    for i in 1..num_sub {
        conditions.push(format!("s{}.p_partkey = s{}.p_partkey", i - 1, i));
    }
    let where_clause = if conditions.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conditions.join(" AND "))
    };
    format!("SELECT s0.p_partkey, s0.p_size FROM {}{}", from_items.join(", "), where_clause)
}

/// A chain of `agg_levels` nested aggregations over `part` (Figure 14).
///
/// Each level groups its input on the key attribute divided by `numGrp = |part|^(1/agg)`, so
/// every level performs roughly the same number of aggregate computations, mirroring the paper's
/// construction.
pub fn nested_aggregation_query(agg_levels: usize, num_parts: usize) -> String {
    let agg_levels = agg_levels.max(1);
    let num_grp = (num_parts.max(2) as f64).powf(1.0 / agg_levels as f64).max(2.0).round() as i64;
    // Innermost level aggregates the base table.
    let mut sql = format!(
        "SELECT p_partkey / {num_grp} AS k1, sum(p_size) AS v1 FROM part GROUP BY p_partkey / {num_grp}"
    );
    for level in 2..=agg_levels {
        let prev_k = format!("k{}", level - 1);
        let prev_v = format!("v{}", level - 1);
        sql = format!(
            "SELECT {prev_k} / {num_grp} AS k{level}, sum({prev_v}) AS v{level} \
             FROM ({sql}) AS a{level} GROUP BY {prev_k} / {num_grp}"
        );
    }
    sql
}

/// The Figure 15 workload: `count` simple key-range selections on `supplier`.
pub fn trio_selection_queries(
    rng: &mut SmallRng,
    count: usize,
    num_suppliers: usize,
) -> Vec<String> {
    (0..count)
        .map(|_| {
            let width = (num_suppliers / 10).max(1);
            let lo = rng.gen_range(1..=num_suppliers.max(1));
            let hi = lo + rng.gen_range(1..=width);
            format!(
                "SELECT s_suppkey, s_name, s_acctbal FROM supplier WHERE s_suppkey BETWEEN {lo} AND {hi}"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{generate_catalog, TpchScale};
    use crate::queries::add_provenance_keyword;
    use perm_core::PermDb;

    fn test_db() -> PermDb {
        PermDb::with_catalog(generate_catalog(TpchScale::test(), 3), Default::default())
    }

    #[test]
    fn set_operation_queries_run_normally_and_with_provenance() {
        let db = test_db();
        let parts = db.catalog().table_row_count("part").unwrap();
        for n in 1..=4 {
            let mut rng = workload_rng("setop", n as u64);
            let sql = set_operation_query(&mut rng, n, parts);
            assert!(db.execute_sql(&sql).is_ok(), "setop query failed: {sql}");
            let prov = add_provenance_keyword(&sql);
            assert!(db.execute_sql(&prov).is_ok(), "setop provenance failed: {prov}");
        }
    }

    #[test]
    fn spj_queries_run_normally_and_with_provenance() {
        let db = test_db();
        let parts = db.catalog().table_row_count("part").unwrap();
        for n in 1..=4 {
            let mut rng = workload_rng("spj", n as u64);
            let sql = spj_query(&mut rng, n, parts);
            let normal = db.execute_sql(&sql).unwrap();
            let prov = db.execute_sql(&add_provenance_keyword(&sql)).unwrap();
            assert!(prov.schema().arity() > normal.schema().arity());
        }
    }

    #[test]
    fn nested_aggregation_queries_reduce_cardinality_per_level() {
        let db = test_db();
        let parts = db.catalog().table_row_count("part").unwrap();
        let one = db.execute_sql(&nested_aggregation_query(1, parts)).unwrap();
        let three = db.execute_sql(&nested_aggregation_query(3, parts)).unwrap();
        assert!(three.num_rows() <= one.num_rows());
        let prov =
            db.execute_sql(&add_provenance_keyword(&nested_aggregation_query(3, parts))).unwrap();
        // Every provenance row carries the part tuple it derives from.
        assert!(prov.schema().attribute_names().iter().any(|n| n == "prov_part_p_partkey"));
        assert_eq!(prov.num_rows(), parts);
    }

    #[test]
    fn trio_workload_generates_distinct_selections() {
        let mut rng = workload_rng("trio", 0);
        let queries = trio_selection_queries(&mut rng, 50, 100);
        assert_eq!(queries.len(), 50);
        let distinct: std::collections::HashSet<&String> = queries.iter().collect();
        assert!(distinct.len() > 10, "queries should vary");
    }

    #[test]
    fn workload_generators_are_deterministic() {
        let parts = 1000;
        let a = set_operation_query(&mut workload_rng("setop", 7), 3, parts);
        let b = set_operation_query(&mut workload_rng("setop", 7), 3, parts);
        assert_eq!(a, b);
        let a = spj_query(&mut workload_rng("spj", 9), 4, parts);
        let b = spj_query(&mut workload_rng("spj", 9), 4, parts);
        assert_eq!(a, b);
    }
}
