//! A deterministic, scaled-down TPC-H data generator (`dbgen` equivalent).
//!
//! The generator reproduces the schema, key structure, value domains and correlations that the
//! benchmark queries rely on (dates within the TPC-H range, `p_type`/`p_brand`/`p_container`
//! vocabularies, nation/region hierarchy, order/lineitem fan-out, ...), at scale factors small
//! enough for an in-memory engine. Given the same [`TpchScale`] and seed it always produces the
//! same database, so benchmark runs are reproducible.

use perm_algebra::{value::days_from_civil, Tuple, Value};
use perm_storage::{Catalog, Relation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::schema::table_schema;

/// The 25 TPC-H nations with their region keys.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The 5 TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// TPC-H part type vocabulary (syllable combinations).
pub const TYPE_SYLLABLE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second syllable of `p_type`.
pub const TYPE_SYLLABLE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third syllable of `p_type`.
pub const TYPE_SYLLABLE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
/// Container vocabulary (first word).
pub const CONTAINER_1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// Container vocabulary (second word).
pub const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
/// Ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
/// Ship instructions.
pub const SHIP_INSTRUCTS: [&str; 4] =
    ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
/// Market segments.
pub const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
/// Part name words.
pub const PART_NAME_WORDS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "green",
];
/// Comment filler words (also used for the Q13/Q16 LIKE patterns).
pub const COMMENT_WORDS: [&str; 16] = [
    "special",
    "pending",
    "unusual",
    "express",
    "furiously",
    "carefully",
    "quickly",
    "deposits",
    "requests",
    "packages",
    "accounts",
    "theodolites",
    "instructions",
    "dependencies",
    "ideas",
    "foxes",
];

/// Scale configuration for the generator.
///
/// `sf = 1.0` corresponds to the official 1 GB scale factor; the evaluation of this reproduction
/// uses the proportionally scaled-down presets below so that the three database sizes of the
/// paper (10 MB / 100 MB / 1 GB) map onto small / medium / large in-memory databases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchScale {
    /// The scale factor.
    pub sf: f64,
}

impl TpchScale {
    /// An arbitrary scale factor.
    pub fn new(sf: f64) -> TpchScale {
        TpchScale { sf: sf.max(0.0001) }
    }

    /// The stand-in for the paper's 10 MB database.
    pub fn small() -> TpchScale {
        TpchScale::new(0.002)
    }

    /// The stand-in for the paper's 100 MB database.
    pub fn medium() -> TpchScale {
        TpchScale::new(0.01)
    }

    /// The stand-in for the paper's 1 GB database.
    pub fn large() -> TpchScale {
        TpchScale::new(0.05)
    }

    /// A minimal scale used by unit tests.
    pub fn test() -> TpchScale {
        TpchScale::new(0.0005)
    }

    fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.sf).round() as usize).max(1)
    }

    /// Number of suppliers.
    pub fn suppliers(&self) -> usize {
        self.scaled(10_000)
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.scaled(200_000)
    }

    /// Number of customers.
    pub fn customers(&self) -> usize {
        self.scaled(150_000)
    }

    /// Number of orders.
    pub fn orders(&self) -> usize {
        self.scaled(1_500_000)
    }
}

/// A human-readable label for the scale (used in benchmark reports).
pub fn scale_label(scale: TpchScale) -> String {
    if scale == TpchScale::small() {
        "small (≈10MB in the paper)".to_string()
    } else if scale == TpchScale::medium() {
        "medium (≈100MB in the paper)".to_string()
    } else if scale == TpchScale::large() {
        "large (≈1GB in the paper)".to_string()
    } else {
        format!("sf={}", scale.sf)
    }
}

/// Generate a full TPC-H catalog at the given scale with a fixed seed.
pub fn generate_catalog(scale: TpchScale, seed: u64) -> Catalog {
    let catalog = Catalog::new();
    let mut rng = SmallRng::seed_from_u64(seed);

    // region
    let region_rows: Vec<Tuple> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::text(*name),
                Value::text(comment(&mut rng, 4)),
            ])
        })
        .collect();
    insert(&catalog, "region", region_rows);

    // nation
    let nation_rows: Vec<Tuple> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::text(*name),
                Value::Int(*region),
                Value::text(comment(&mut rng, 5)),
            ])
        })
        .collect();
    insert(&catalog, "nation", nation_rows);

    // supplier
    let num_suppliers = scale.suppliers();
    let supplier_rows: Vec<Tuple> = (1..=num_suppliers)
        .map(|k| {
            let nation = rng.gen_range(0..NATIONS.len()) as i64;
            Tuple::new(vec![
                Value::Int(k as i64),
                Value::text(format!("Supplier#{k:09}")),
                Value::text(address(&mut rng)),
                Value::Int(nation),
                Value::text(phone(&mut rng, nation)),
                Value::Float(round2(rng.gen_range(-999.99..9999.99))),
                Value::text(supplier_comment(&mut rng, k)),
            ])
        })
        .collect();
    insert(&catalog, "supplier", supplier_rows);

    // customer
    let num_customers = scale.customers();
    let customer_rows: Vec<Tuple> = (1..=num_customers)
        .map(|k| {
            let nation = rng.gen_range(0..NATIONS.len()) as i64;
            Tuple::new(vec![
                Value::Int(k as i64),
                Value::text(format!("Customer#{k:09}")),
                Value::text(address(&mut rng)),
                Value::Int(nation),
                Value::text(phone(&mut rng, nation)),
                Value::Float(round2(rng.gen_range(-999.99..9999.99))),
                Value::text(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                Value::text(comment(&mut rng, 8)),
            ])
        })
        .collect();
    insert(&catalog, "customer", customer_rows);

    // part
    let num_parts = scale.parts();
    let part_rows: Vec<Tuple> = (1..=num_parts)
        .map(|k| {
            let p_type = format!(
                "{} {} {}",
                TYPE_SYLLABLE_1[rng.gen_range(0..TYPE_SYLLABLE_1.len())],
                TYPE_SYLLABLE_2[rng.gen_range(0..TYPE_SYLLABLE_2.len())],
                TYPE_SYLLABLE_3[rng.gen_range(0..TYPE_SYLLABLE_3.len())]
            );
            let brand = format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
            let container = format!(
                "{} {}",
                CONTAINER_1[rng.gen_range(0..CONTAINER_1.len())],
                CONTAINER_2[rng.gen_range(0..CONTAINER_2.len())]
            );
            let name = format!(
                "{} {}",
                PART_NAME_WORDS[rng.gen_range(0..PART_NAME_WORDS.len())],
                PART_NAME_WORDS[rng.gen_range(0..PART_NAME_WORDS.len())]
            );
            Tuple::new(vec![
                Value::Int(k as i64),
                Value::text(name),
                Value::text(format!("Manufacturer#{}", rng.gen_range(1..=5))),
                Value::text(brand),
                Value::text(p_type),
                Value::Int(rng.gen_range(1..=50)),
                Value::text(container),
                Value::Float(round2(900.0 + (k % 1000) as f64 / 10.0)),
                Value::text(comment(&mut rng, 3)),
            ])
        })
        .collect();
    insert(&catalog, "part", part_rows);

    // partsupp: 4 suppliers per part.
    let mut partsupp_rows = Vec::with_capacity(num_parts * 4);
    for part in 1..=num_parts {
        for i in 0..4usize {
            let supplier = ((part + i * (num_suppliers / 4 + 1)) % num_suppliers) + 1;
            partsupp_rows.push(Tuple::new(vec![
                Value::Int(part as i64),
                Value::Int(supplier as i64),
                Value::Int(rng.gen_range(1..=9999)),
                Value::Float(round2(rng.gen_range(1.0..1000.0))),
                Value::text(comment(&mut rng, 10)),
            ]));
        }
    }
    insert(&catalog, "partsupp", partsupp_rows);

    // orders + lineitem.
    let num_orders = scale.orders();
    let start_date = days_from_civil(1992, 1, 1);
    let end_date = days_from_civil(1998, 8, 2);
    let mut orders_rows = Vec::with_capacity(num_orders);
    let mut lineitem_rows = Vec::new();
    for k in 1..=num_orders {
        let custkey = rng.gen_range(1..=num_customers.max(1)) as i64;
        let orderdate = rng.gen_range(start_date..=end_date - 151);
        let num_lines = rng.gen_range(1..=7usize);
        let mut total = 0.0;
        let mut any_open = false;
        let mut all_filled = true;
        for line in 1..=num_lines {
            let partkey = rng.gen_range(1..=num_parts.max(1)) as i64;
            let suppkey = ((partkey as usize + line) % num_suppliers.max(1) + 1) as i64;
            let quantity = rng.gen_range(1..=50) as f64;
            let retail = 900.0 + (partkey % 1000) as f64 / 10.0;
            let extendedprice = round2(quantity * retail);
            let discount = round2(rng.gen_range(0.0..=0.10));
            let tax = round2(rng.gen_range(0.0..=0.08));
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            let today = days_from_civil(1995, 6, 17);
            let (returnflag, linestatus) = if receiptdate <= today {
                (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
            } else {
                ("N", "O")
            };
            if linestatus == "O" {
                any_open = true;
                all_filled = false;
            }
            total += extendedprice * (1.0 + tax) * (1.0 - discount);
            lineitem_rows.push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(line as i64),
                Value::Float(quantity),
                Value::Float(extendedprice),
                Value::Float(discount),
                Value::Float(tax),
                Value::text(returnflag),
                Value::text(linestatus),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::text(SHIP_INSTRUCTS[rng.gen_range(0..SHIP_INSTRUCTS.len())]),
                Value::text(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]),
                Value::text(comment(&mut rng, 4)),
            ]));
        }
        let status = if all_filled {
            "F"
        } else if any_open && !all_filled {
            "O"
        } else {
            "P"
        };
        orders_rows.push(Tuple::new(vec![
            Value::Int(k as i64),
            Value::Int(custkey),
            Value::text(status),
            Value::Float(round2(total)),
            Value::Date(orderdate),
            Value::text(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            Value::text(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
            Value::Int(0),
            Value::text(order_comment(&mut rng)),
        ]));
    }
    insert(&catalog, "orders", orders_rows);
    insert(&catalog, "lineitem", lineitem_rows);

    catalog
}

fn insert(catalog: &Catalog, table: &str, rows: Vec<Tuple>) {
    let relation = Relation::from_parts(table_schema(table), rows);
    catalog
        .create_table_with_data(table, relation)
        .unwrap_or_else(|e| panic!("failed to create TPC-H table {table}: {e}"));
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn comment(rng: &mut SmallRng, words: usize) -> String {
    (0..words)
        .map(|_| COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Supplier comments occasionally contain the "Customer Complaints" marker that query 16
/// filters on (as in the official generator).
fn supplier_comment(rng: &mut SmallRng, suppkey: usize) -> String {
    if suppkey.is_multiple_of(20) {
        format!("{} Customer Complaints {}", comment(rng, 2), comment(rng, 2))
    } else {
        comment(rng, 6)
    }
}

/// Order comments occasionally contain the "special requests" marker that query 13 filters on.
fn order_comment(rng: &mut SmallRng) -> String {
    if rng.gen_bool(0.05) {
        format!("{} special requests {}", comment(rng, 2), comment(rng, 2))
    } else {
        comment(rng, 6)
    }
}

fn address(rng: &mut SmallRng) -> String {
    format!("{} {} street", comment(rng, 1), rng.gen_range(1..=9999))
}

fn phone(rng: &mut SmallRng, nation: i64) -> String {
    format!(
        "{}-{}-{}-{}",
        10 + nation,
        rng.gen_range(100..=999),
        rng.gen_range(100..=999),
        rng.gen_range(1000..=9999)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_catalog(TpchScale::test(), 42);
        let b = generate_catalog(TpchScale::test(), 42);
        for table in crate::schema::table_names() {
            assert!(a.table(table).unwrap().bag_eq(&b.table(table).unwrap()), "{table} differs");
        }
        let c = generate_catalog(TpchScale::test(), 43);
        assert!(!a.table("lineitem").unwrap().bag_eq(&c.table("lineitem").unwrap()));
    }

    #[test]
    fn cardinalities_scale_with_the_scale_factor() {
        let small = generate_catalog(TpchScale::new(0.001), 1);
        let larger = generate_catalog(TpchScale::new(0.002), 1);
        assert!(
            larger.table_row_count("orders").unwrap() > small.table_row_count("orders").unwrap()
        );
        assert_eq!(small.table_row_count("region").unwrap(), 5);
        assert_eq!(small.table_row_count("nation").unwrap(), 25);
        // partsupp has 4 entries per part.
        assert_eq!(
            small.table_row_count("partsupp").unwrap(),
            4 * small.table_row_count("part").unwrap()
        );
    }

    #[test]
    fn foreign_keys_are_within_range() {
        let catalog = generate_catalog(TpchScale::test(), 7);
        let nations = catalog.table_row_count("nation").unwrap() as i64;
        let suppliers = catalog.table_row_count("supplier").unwrap() as i64;
        for row in catalog.table("supplier").unwrap().tuples() {
            let nation = row[3].as_i64().unwrap();
            assert!((0..nations).contains(&nation));
        }
        let parts = catalog.table_row_count("part").unwrap() as i64;
        for row in catalog.table("lineitem").unwrap().tuples() {
            assert!((1..=parts).contains(&row[1].as_i64().unwrap()));
            assert!((1..=suppliers).contains(&row[2].as_i64().unwrap()));
        }
    }

    #[test]
    fn dates_are_within_the_tpch_range() {
        let catalog = generate_catalog(TpchScale::test(), 7);
        let lo = days_from_civil(1992, 1, 1);
        let hi = days_from_civil(1999, 1, 1);
        for row in catalog.table("orders").unwrap().tuples() {
            match &row.values()[4] {
                Value::Date(d) => assert!((lo..hi).contains(d)),
                other => panic!("o_orderdate should be a date, got {other:?}"),
            }
        }
    }

    #[test]
    fn scale_presets_are_ordered() {
        assert!(TpchScale::small().orders() < TpchScale::medium().orders());
        assert!(TpchScale::medium().orders() < TpchScale::large().orders());
        assert!(scale_label(TpchScale::small()).contains("10MB"));
    }
}
