//! # perm-tpch
//!
//! The TPC-H substrate of the Perm evaluation (paper §V): a deterministic, scaled-down TPC-H
//! data generator, the fifteen benchmark queries the Perm prototype supports
//! (1, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 19 — the remaining seven need correlated
//! sublinks), a seeded parameter generator standing in for `qgen`, and the artificial workload
//! generators used in §V-B (set-operation trees, random SPJ trees, nested aggregation chains)
//! and §V-C (the Trio comparison workload).
//!
//! The paper runs 10 MB / 100 MB / 1 GB databases on PostgreSQL; this reproduction runs an
//! in-memory engine, so [`TpchScale`] provides proportionally scaled-down factors. All findings
//! of the evaluation are about *relative* behaviour (provenance vs. normal execution, growth with
//! operator count and scale), which is preserved under uniform down-scaling; `EXPERIMENTS.md`
//! records the shape comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Non-test code must surface failures as structured errors, never panic on a recoverable
// condition (tests are exempt via clippy.toml); `cargo xtask lint` checks this header.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod dbgen;
pub mod queries;
pub mod schema;
pub mod workloads;

pub use dbgen::{generate_catalog, TpchScale};
pub use queries::{supported_query_ids, tpch_query, TpchQueryTemplate};
pub use schema::{table_names, table_schema};
