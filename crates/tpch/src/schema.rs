//! The TPC-H schema (all eight tables, full column sets).

use perm_algebra::{DataType, Schema};

/// The eight TPC-H table names in population order (respecting foreign-key dependencies).
pub fn table_names() -> Vec<&'static str> {
    vec!["region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"]
}

/// The schema of a TPC-H table.
///
/// # Panics
/// Panics if `table` is not a TPC-H table name.
pub fn table_schema(table: &str) -> Schema {
    use DataType::*;
    let columns: Vec<(&str, DataType)> = match table.to_ascii_lowercase().as_str() {
        "region" => vec![("r_regionkey", Int), ("r_name", Text), ("r_comment", Text)],
        "nation" => {
            vec![("n_nationkey", Int), ("n_name", Text), ("n_regionkey", Int), ("n_comment", Text)]
        }
        "supplier" => vec![
            ("s_suppkey", Int),
            ("s_name", Text),
            ("s_address", Text),
            ("s_nationkey", Int),
            ("s_phone", Text),
            ("s_acctbal", Float),
            ("s_comment", Text),
        ],
        "customer" => vec![
            ("c_custkey", Int),
            ("c_name", Text),
            ("c_address", Text),
            ("c_nationkey", Int),
            ("c_phone", Text),
            ("c_acctbal", Float),
            ("c_mktsegment", Text),
            ("c_comment", Text),
        ],
        "part" => vec![
            ("p_partkey", Int),
            ("p_name", Text),
            ("p_mfgr", Text),
            ("p_brand", Text),
            ("p_type", Text),
            ("p_size", Int),
            ("p_container", Text),
            ("p_retailprice", Float),
            ("p_comment", Text),
        ],
        "partsupp" => vec![
            ("ps_partkey", Int),
            ("ps_suppkey", Int),
            ("ps_availqty", Int),
            ("ps_supplycost", Float),
            ("ps_comment", Text),
        ],
        "orders" => vec![
            ("o_orderkey", Int),
            ("o_custkey", Int),
            ("o_orderstatus", Text),
            ("o_totalprice", Float),
            ("o_orderdate", Date),
            ("o_orderpriority", Text),
            ("o_clerk", Text),
            ("o_shippriority", Int),
            ("o_comment", Text),
        ],
        "lineitem" => vec![
            ("l_orderkey", Int),
            ("l_partkey", Int),
            ("l_suppkey", Int),
            ("l_linenumber", Int),
            ("l_quantity", Float),
            ("l_extendedprice", Float),
            ("l_discount", Float),
            ("l_tax", Float),
            ("l_returnflag", Text),
            ("l_linestatus", Text),
            ("l_shipdate", Date),
            ("l_commitdate", Date),
            ("l_receiptdate", Date),
            ("l_shipinstruct", Text),
            ("l_shipmode", Text),
            ("l_comment", Text),
        ],
        other => panic!("unknown TPC-H table '{other}'"),
    };
    Schema::from_pairs(&columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_have_schemas() {
        for name in table_names() {
            let schema = table_schema(name);
            assert!(schema.arity() >= 3, "{name} should have at least 3 columns");
        }
    }

    #[test]
    fn lineitem_has_sixteen_columns_like_the_spec() {
        assert_eq!(table_schema("lineitem").arity(), 16);
        assert_eq!(table_schema("orders").arity(), 9);
        assert_eq!(table_schema("part").arity(), 9);
    }

    #[test]
    #[should_panic]
    fn unknown_table_panics() {
        table_schema("warehouse");
    }
}
