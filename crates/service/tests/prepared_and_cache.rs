//! Prepared-statement edge cases (re-bind, wrong arity, NULL parameters) and plan-cache
//! behaviour (hit on repetition, invalidation on DDL/DML commits).

use std::sync::Arc;

use perm_algebra::Value;
use perm_core::ProvenanceRewriter;
use perm_service::{Engine, ServiceError};

fn shop_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new().with_rewriter(Arc::new(ProvenanceRewriter::new())));
    let session = engine.session();
    session
        .execute_script(
            "CREATE TABLE shop (name TEXT, numEmpl INT);\n\
             CREATE TABLE sales (sName TEXT, itemId INT);\n\
             CREATE TABLE items (id INT, price INT);\n\
             INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14);\n\
             INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), ('Merdies', 2), ('Joba', 3), ('Joba', 3);\n\
             INSERT INTO items VALUES (1, 100), (2, 10), (3, 25);",
        )
        .unwrap();
    engine
}

#[test]
fn prepare_bind_execute_many() {
    let engine = shop_engine();
    let mut session = engine.session();
    let params =
        session.prepare("pricey", "SELECT id FROM items WHERE price > $1 ORDER BY id").unwrap();
    assert_eq!(params, 1);

    // Re-binding the same plan with different values.
    let r = session.execute_prepared("pricey", vec![Value::Int(20)]).unwrap();
    assert_eq!(r.num_rows(), 2);
    let r = session.execute_prepared("pricey", vec![Value::Int(99)]).unwrap();
    assert_eq!(r.num_rows(), 1);

    // NULL parameters follow SQL three-valued logic: the comparison is UNKNOWN everywhere.
    let r = session.execute_prepared("pricey", vec![Value::Null]).unwrap();
    assert_eq!(r.num_rows(), 0);

    // Wrong arity is a typed error, in both directions.
    let err = session.execute_prepared("pricey", vec![]).unwrap_err();
    assert!(matches!(err, ServiceError::ParameterCount { expected: 1, got: 0, .. }));
    let err = session.execute_prepared("pricey", vec![Value::Int(1), Value::Int(2)]).unwrap_err();
    assert!(matches!(err, ServiceError::ParameterCount { expected: 1, got: 2, .. }));

    // Unknown names and deallocation.
    assert!(matches!(
        session.execute_prepared("nope", vec![]).unwrap_err(),
        ServiceError::UnknownPrepared(_)
    ));
    assert!(session.deallocate("pricey"));
    assert!(!session.deallocate("pricey"));
    assert!(matches!(
        session.execute_prepared("pricey", vec![Value::Int(1)]).unwrap_err(),
        ServiceError::UnknownPrepared(_)
    ));
}

#[test]
fn prepared_provenance_query_with_parameters() {
    let engine = shop_engine();
    let mut session = engine.session();
    session
        .prepare(
            "prov",
            "SELECT PROVENANCE name FROM shop, sales WHERE name = sName AND itemId = $1",
        )
        .unwrap();
    // Item 2 was sold twice by Merdies.
    let r = session.execute_prepared("prov", vec![Value::Int(2)]).unwrap();
    assert_eq!(r.num_rows(), 2);
    assert!(r.schema().attribute_names().iter().any(|n| n.starts_with("prov_sales")));
    // Item 3 was sold twice by Joba; same plan, new binding.
    let r = session.execute_prepared("prov", vec![Value::Int(3)]).unwrap();
    assert_eq!(r.num_rows(), 2);
}

#[test]
fn preparing_non_queries_and_direct_parameterized_queries_are_rejected() {
    let engine = shop_engine();
    let mut session = engine.session();
    assert!(matches!(
        session.prepare("ddl", "DROP TABLE shop").unwrap_err(),
        ServiceError::Unsupported(_)
    ));
    assert!(matches!(
        session.execute("SELECT id FROM items WHERE price > $1").unwrap_err(),
        ServiceError::Unsupported(_)
    ));
    // Parameters never appear in INSERT ... VALUES.
    assert!(session.execute("INSERT INTO items VALUES ($1, 1)").is_err());
}

#[test]
fn plan_cache_hits_and_is_invalidated_by_commits() {
    let engine = shop_engine();
    let session = engine.session();
    let sql = "SELECT PROVENANCE name, sum(price) AS total FROM shop, sales, items \
               WHERE name = sName AND itemId = id GROUP BY name";

    let before = engine.cache_stats();
    session.execute(sql).unwrap();
    let after_first = engine.cache_stats();
    assert_eq!(after_first.misses, before.misses + 1, "cold run misses");

    // Trivial reformatting still hits: keys are normalized.
    session
        .execute(
            "SELECT   PROVENANCE name,\n\tsum(price) AS total FROM shop, sales, items \
             WHERE name = sName AND itemId = id GROUP BY name;",
        )
        .unwrap();
    let after_second = engine.cache_stats();
    assert_eq!(after_second.hits, after_first.hits + 1, "warm run hits");

    // Another session shares the cache.
    engine.session().execute(sql).unwrap();
    assert_eq!(engine.cache_stats().hits, after_second.hits + 1);

    // A DML commit invalidates; the next run re-plans, then caches again.
    session.execute("INSERT INTO items VALUES (4, 500)").unwrap();
    session.execute(sql).unwrap();
    let after_dml = engine.cache_stats();
    assert_eq!(after_dml.invalidations, after_second.invalidations + 1);
    session.execute(sql).unwrap();
    assert_eq!(engine.cache_stats().hits, after_dml.hits + 1, "cache warm again after re-plan");

    // A DDL commit invalidates too.
    session.execute("CREATE TABLE scratch (x INT)").unwrap();
    session.execute(sql).unwrap();
    assert!(engine.cache_stats().invalidations > after_dml.invalidations);

    // And the results are still correct after all of that (new item 4 never joins).
    let result = session.execute(sql).unwrap();
    assert_eq!(result.num_rows(), 5);
}

#[test]
fn leading_comments_still_route_queries_through_the_query_path() {
    let engine = shop_engine();
    let session = engine.session();
    // Query-shaped despite the leading comment: must hit the plan cache...
    let sql = "-- the paper's example\nSELECT id FROM items WHERE price > 20";
    let before = engine.cache_stats();
    assert_eq!(session.execute(sql).unwrap().num_rows(), 2);
    session.execute(sql).unwrap();
    assert_eq!(engine.cache_stats().hits, before.hits + 1);
    // ...and a parameterized direct query must hit the prepare/execute guard, not a confusing
    // unbound-parameter execution error.
    let err =
        session.execute("-- needs a binding\nSELECT id FROM items WHERE price > $1").unwrap_err();
    assert!(matches!(err, ServiceError::Unsupported(_)), "got {err:?}");
}

#[test]
fn sessions_have_independent_settings() {
    let engine = shop_engine();
    let mut bounded = engine.session();
    bounded.set_row_budget(Some(3));
    let unbounded = engine.session();
    let sql = "SELECT PROVENANCE name, sum(price) AS total FROM shop, sales, items \
               WHERE name = sName AND itemId = id GROUP BY name";
    assert!(matches!(
        bounded.execute(sql).unwrap_err(),
        ServiceError::Exec(perm_exec::ExecError::RowBudgetExceeded { .. })
    ));
    assert_eq!(unbounded.execute(sql).unwrap().num_rows(), 5);
}
