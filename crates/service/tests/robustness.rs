//! Lifecycle-governor robustness tests: the engine-wide buffered-bytes gauge and the
//! governor's reservation ledger must return to exactly zero however a query ends — drained,
//! dropped mid-iteration, cancelled in process, cancelled over the wire, or rejected by a
//! memory limit — and the session must stay usable afterwards.
//!
//! No test here arms failpoints (those are process-global and live in `chaos.rs`).

use std::sync::Arc;

use perm_algebra::{DataType, Schema, Tuple, Value, DEFAULT_CHUNK_SIZE};
use perm_service::shell::ResponseFrame;
use perm_service::{serve, Client, Engine, GovernorLimits};
use perm_storage::{Catalog, Relation};

/// Rows in the `big` table — enough for several dozen chunks, so every test has a genuine
/// mid-stream to interrupt.
const BIG_ROWS: usize = 64 * DEFAULT_CHUNK_SIZE;

/// An engine over a catalog with a 64-chunk `big` table and a 3-row `tiny` table.
fn big_engine() -> Arc<Engine> {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("payload", DataType::Text)]);
    let rows = (0..BIG_ROWS as i64)
        .map(|i| Tuple::new(vec![Value::Int(i), Value::text(format!("payload-{:06}", i % 97))]))
        .collect::<Vec<_>>();
    catalog.create_table_with_data("big", Relation::from_parts(schema, rows)).unwrap();

    let tiny_schema = Schema::from_pairs(&[("id", DataType::Int)]);
    let tiny = (0..3).map(|i| Tuple::new(vec![Value::Int(i)])).collect::<Vec<_>>();
    catalog.create_table_with_data("tiny", Relation::from_parts(tiny_schema, tiny)).unwrap();

    Arc::new(Engine::with_catalog(catalog).with_workers(2))
}

fn assert_quiescent(engine: &Engine) {
    // The stream gauge is exact: producers roll back on failed sends and the consumer (or
    // `Drop`) drains and joins, so zero is guaranteed the moment a stream ends.
    assert_eq!(engine.stream_buffered_bytes(), 0, "stream gauge must drain to zero");
    // Governor stats quiesce within an instant rather than atomically with the query's end:
    // helper jobs queued on the shared worker pool can hold a context clone (and with it the
    // query's grant) until a worker pops them and finds nothing left to claim.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = engine.governor().stats();
        if stats.active_queries == 0 && stats.reserved_bytes == 0 {
            return;
        }
        if std::time::Instant::now() > deadline {
            panic!("governor did not quiesce: {stats:?}");
        }
        std::thread::yield_now();
    }
}

/// Regression for the gauge leak: dropping a stream after pulling only one chunk used to
/// strand the byte accounting of everything the producer had already buffered. `Drop` now
/// drains the channel and joins the producer, so the gauge is zero the instant `drop`
/// returns — no retries, no sleeps.
#[test]
fn dropped_stream_mid_iteration_releases_gauge_and_reservations() {
    let engine = big_engine();
    let session = engine.session();

    let mut stream = session.execute_streaming("SELECT * FROM big").unwrap();
    let first = stream.next_chunk().unwrap().unwrap();
    assert!(first.num_rows() > 0);
    drop(stream);
    assert_quiescent(&engine);

    // The same holds on the pull-based pipeline (row budgets force it) when the producer
    // *errors* mid-stream rather than being abandoned.
    let mut session = engine.session();
    session.set_row_budget(Some(DEFAULT_CHUNK_SIZE * 2));
    let mut stream = session.execute_streaming("SELECT * FROM big").unwrap();
    let mut saw_error = false;
    while let Some(item) = stream.next_chunk() {
        if let Err(e) = item {
            assert!(e.to_string().contains("row budget"), "unexpected error: {e}");
            saw_error = true;
            break;
        }
    }
    assert!(saw_error, "the row budget must trip mid-stream");
    drop(stream);
    assert_quiescent(&engine);

    // And the session (engine) stays fully usable.
    let relation = engine.session().execute("SELECT * FROM tiny").unwrap();
    assert_eq!(relation.num_rows(), 3);
}

/// In-process cancellation: `QueryStream::cancel` trips the executor token, the stream ends
/// early (never delivering the full result), and every gauge returns to zero.
#[test]
fn cancelled_stream_stops_early_and_frees_memory() {
    let engine = big_engine();
    let session = engine.session();

    let mut stream = session.execute_streaming("SELECT * FROM big").unwrap();
    let first = stream.next_chunk().unwrap().unwrap();
    let mut delivered = first.num_rows();
    stream.cancel();
    // Drain whatever was already buffered; the producer must stop at a chunk boundary.
    for item in stream.by_ref() {
        match item {
            Ok(chunk) => delivered += chunk.num_rows(),
            Err(e) => {
                assert!(e.to_string().contains("cancelled"), "unexpected error: {e}");
                break;
            }
        }
    }
    assert!(delivered < BIG_ROWS, "cancel must cut the stream short, got all {delivered} rows");
    drop(stream);
    assert_quiescent(&engine);
}

/// Wire-level mid-stream cancel: the client sends `cancel` while result frames are in
/// flight, keeps acknowledging the frames it still receives, and the server answers with a
/// terminal `cancelled` error — never `Done` — then serves the next request as if nothing
/// happened.
#[test]
fn wire_cancel_mid_stream_stops_promptly_and_session_survives() {
    let engine = big_engine();
    let handle = serve(engine.clone(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    client.send("query SELECT * FROM big").unwrap();
    match client.read_response().unwrap() {
        ResponseFrame::Schema(schema) => assert_eq!(schema.arity(), 2),
        other => panic!("expected schema frame, got {other:?}"),
    }
    match client.read_response().unwrap() {
        ResponseFrame::Chunk(chunk) => assert!(chunk.num_rows() > 0),
        other => panic!("expected a result chunk, got {other:?}"),
    }

    client.send("cancel").unwrap();
    // Frames already in flight (bounded by the backpressure window) may still arrive and are
    // acknowledged by `read_response` as usual; then the terminal error must come.
    let mut in_flight = 0;
    loop {
        match client.read_response().unwrap() {
            ResponseFrame::Chunk(_) => {
                in_flight += 1;
                assert!(in_flight < 32, "server failed to stop within the in-flight window");
            }
            ResponseFrame::Err(message) => {
                assert!(message.contains("cancelled"), "unexpected terminal frame: {message}");
                break;
            }
            other => panic!("stream must end in a cancelled error, got {other:?}"),
        }
    }

    // The connection is back in request/response sync and the engine is clean.
    assert_eq!(client.roundtrip("ping").unwrap().unwrap(), "pong");
    assert_quiescent(&engine);
    let body = client.roundtrip("query SELECT * FROM tiny").unwrap().unwrap();
    assert_eq!(body.lines().count(), 4, "header plus three rows");

    // `cancel` outside a stream is a protocol error, not a hang.
    let err = client.roundtrip("cancel").unwrap().unwrap_err();
    assert!(err.contains("only valid during a result stream"), "got: {err}");

    drop(client);
    handle.shutdown();
}

/// Per-query memory limits reject oversized queries with a clean `resource exhausted` error
/// while the engine keeps serving everything that fits.
#[test]
fn per_query_memory_limit_rejects_cleanly() {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("payload", DataType::Text)]);
    let rows = (0..BIG_ROWS as i64)
        .map(|i| Tuple::new(vec![Value::Int(i), Value::text(format!("payload-{:06}", i % 97))]))
        .collect::<Vec<_>>();
    catalog.create_table_with_data("big", Relation::from_parts(schema, rows)).unwrap();
    let tiny_schema = Schema::from_pairs(&[("id", DataType::Int)]);
    let tiny = (0..3).map(|i| Tuple::new(vec![Value::Int(i)])).collect::<Vec<_>>();
    catalog.create_table_with_data("tiny", Relation::from_parts(tiny_schema, tiny)).unwrap();

    let engine =
        Arc::new(Engine::with_catalog(catalog).with_workers(2).with_memory_limits(
            GovernorLimits { engine_bytes: None, query_bytes: Some(64 * 1024) },
        ));
    let session = engine.session();

    let err = session.execute("SELECT * FROM big ORDER BY id DESC").unwrap_err();
    assert!(err.to_string().contains("resource exhausted"), "got: {err}");
    assert_quiescent(&engine);

    // Queries under the limit still run, on the same session.
    let relation = session.execute("SELECT * FROM tiny ORDER BY id").unwrap();
    assert_eq!(relation.num_rows(), 3);
    assert_quiescent(&engine);

    // The failure is visible in the governor's shed counter via server stats.
    let handle = serve(engine.clone(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.roundtrip("stats").unwrap().unwrap();
    assert!(stats.contains("governor active_queries=0"), "stats missing governor line: {stats}");
    drop(client);
    handle.shutdown();
}
