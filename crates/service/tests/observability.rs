//! Observability acceptance tests: the metrics registry's gauges return to exactly zero after
//! every query outcome (ok / error / cancelled / shed), the latency histogram counts every
//! ticketed query, and `EXPLAIN ANALYZE` reports the same row counts the query actually
//! streams.

use std::sync::Arc;
use std::time::{Duration, Instant};

use perm_algebra::{DataType, Schema, Tuple, Value};
use perm_core::ProvenanceRewriter;
use perm_service::{Engine, GovernorLimits};
use perm_storage::{Catalog, Relation};

const BIG_ROWS: usize = 40_000;

/// Catalog with a `big` table (large enough to shed under a tiny per-query memory limit and to
/// stream over multiple chunks) and a `tiny` one.
fn catalog() -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("payload", DataType::Text)]);
    let rows = (0..BIG_ROWS as i64)
        .map(|i| Tuple::new(vec![Value::Int(i), Value::text(format!("payload-{:06}", i % 97))]))
        .collect::<Vec<_>>();
    catalog.create_table_with_data("big", Relation::from_parts(schema, rows)).unwrap();

    let tiny_schema = Schema::from_pairs(&[("id", DataType::Int)]);
    let tiny = (0..3).map(|i| Tuple::new(vec![Value::Int(i)])).collect::<Vec<_>>();
    catalog.create_table_with_data("tiny", Relation::from_parts(tiny_schema, tiny)).unwrap();
    catalog
}

/// Wait for the gauges that quiesce asynchronously (governor grants held by worker-pool jobs,
/// stream buffers drained by producer threads) to reach zero.
fn wait_for_zero_gauges(engine: &Engine) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = engine.stats_snapshot();
        if snap.governor.active_queries == 0
            && snap.governor.reserved_bytes == 0
            && snap.stream_buffered == 0
            && snap.metrics.queries_active == 0
        {
            return;
        }
        assert!(Instant::now() < deadline, "gauges failed to quiesce: {snap:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Every query outcome — ok, error, cancelled and shed — leaves all gauges at exactly zero,
/// bumps its own outcome counter, and is counted once in the latency histogram.
#[test]
fn gauges_return_to_zero_after_every_outcome() {
    let engine =
        Arc::new(Engine::with_catalog(catalog()).with_workers(2).with_memory_limits(
            GovernorLimits { engine_bytes: None, query_bytes: Some(64 * 1024) },
        ));
    let session = engine.session();

    // ok: streams to completion.
    let relation = session.execute("SELECT * FROM tiny").unwrap();
    assert_eq!(relation.num_rows(), 3);

    // error: the row budget trips mid-execution (after the ticket is open).
    let mut limited = engine.session();
    limited.set_row_budget(Some(10));
    limited.execute("SELECT * FROM big").unwrap_err();

    // cancelled: drop the stream before draining it.
    let stream = session.execute_streaming("SELECT * FROM big").unwrap();
    drop(stream);

    // shed: the sort buffer blows the 64 KiB per-query memory limit.
    let err = session.execute("SELECT * FROM big ORDER BY id DESC").unwrap_err();
    assert!(err.to_string().contains("resource exhausted"), "got: {err}");

    wait_for_zero_gauges(&engine);
    let snap = engine.stats_snapshot();
    assert_eq!(snap.metrics.queries_ok, 1, "{snap:?}");
    assert_eq!(snap.metrics.queries_error, 1, "{snap:?}");
    assert_eq!(snap.metrics.queries_cancelled, 1, "{snap:?}");
    assert_eq!(snap.metrics.queries_shed, 1, "{snap:?}");
    // Four tickets were opened, so the latency histogram saw four observations.
    assert_eq!(snap.metrics.latency.count, 4);
    // All four queries passed admission; the per-query limit rejects during reservation, which
    // counts as a shed *outcome* but not as an engine-wide governor shed.
    assert_eq!(snap.governor.admitted, 4, "{snap:?}");
    assert_eq!(snap.governor.shed_queries, 0, "{snap:?}");
}

/// The histogram's total count tracks the number of queries issued, and concurrent traffic
/// still leaves every gauge at zero once it drains.
#[test]
fn histogram_counts_concurrent_queries_and_gauges_drain() {
    let engine = Arc::new(Engine::with_catalog(catalog()).with_workers(2));
    const THREADS: usize = 4;
    const PER_THREAD: usize = 8;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let engine = engine.clone();
        handles.push(std::thread::spawn(move || {
            let session = engine.session();
            for _ in 0..PER_THREAD {
                let relation = session.execute("SELECT * FROM tiny").unwrap();
                assert_eq!(relation.num_rows(), 3);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    wait_for_zero_gauges(&engine);
    let snap = engine.stats_snapshot();
    let issued = (THREADS * PER_THREAD) as u64;
    assert_eq!(snap.metrics.queries_ok, issued);
    assert_eq!(snap.metrics.latency.count, issued);
    // The histogram's per-bucket counts are consistent with the total.
    let buckets: u64 = snap.metrics.latency.buckets.iter().sum();
    assert_eq!(buckets, issued);
}

/// `EXPLAIN ANALYZE` reports the row count the query actually produces — both on the root
/// operator line and in the trailing `Total rows:` line — for plain and provenance-rewritten
/// queries.
#[test]
fn explain_analyze_row_counts_match_direct_execution() {
    let engine = Arc::new(
        Engine::with_catalog(catalog())
            .with_workers(2)
            .with_rewriter(Arc::new(ProvenanceRewriter::new())),
    );
    let session = engine.session();

    for sql in [
        "SELECT * FROM tiny",
        "SELECT * FROM big WHERE id < 1500",
        "SELECT PROVENANCE * FROM tiny",
        "SELECT PROVENANCE t.id FROM tiny t, tiny u WHERE t.id = u.id",
    ] {
        let direct_rows = session.execute(sql).unwrap().num_rows();

        let profile = session.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        let lines: Vec<String> = profile
            .tuples()
            .iter()
            .map(|t| match &t.values()[0] {
                Value::Text(s) => s.to_string(),
                other => panic!("profile column must be text, got {other:?}"),
            })
            .collect();
        let text = lines.join("\n");

        // The root operator's actuals carry the result cardinality...
        let root = lines.first().unwrap_or_else(|| panic!("empty profile for {sql}"));
        assert!(
            root.contains(&format!("rows={direct_rows} ")) || root.contains("(fused"),
            "root line should report rows={direct_rows} for {sql}:\n{text}"
        );
        // ...and the summary line matches the directly-executed result exactly.
        assert!(
            text.ends_with(&format!("Total rows: {direct_rows}")),
            "profile should end with 'Total rows: {direct_rows}' for {sql}:\n{text}"
        );
        // Provenance queries must show the *rewritten* plan — the one that ran carries the
        // rewrite's `prov_*` output attributes.
        if sql.contains("PROVENANCE") {
            assert!(
                text.contains("prov_"),
                "rewritten plan should project prov_* attributes:\n{text}"
            );
        }
    }
    wait_for_zero_gauges(&engine);
}

/// Plain `EXPLAIN` renders the optimized plan with per-operator row estimates and does *not*
/// execute the query; `EXPLAIN ANALYZE` carries the same estimates next to the actuals.
#[test]
fn explain_shows_estimated_rows_without_executing() {
    let engine = Arc::new(
        Engine::with_catalog(catalog())
            .with_workers(2)
            .with_rewriter(Arc::new(ProvenanceRewriter::new())),
    );
    let session = engine.session();

    let plan = session.execute("EXPLAIN SELECT * FROM big WHERE id < 1500").unwrap();
    assert_eq!(plan.schema().attributes()[0].name, "QUERY PLAN");
    let text = plan
        .tuples()
        .iter()
        .map(|t| match &t.values()[0] {
            Value::Text(s) => s.to_string(),
            other => panic!("plan column must be text, got {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("est_rows="), "every operator line carries an estimate:\n{text}");
    // The scan estimate comes from real table statistics, not the no-stats default.
    assert!(
        text.contains(&format!("est_rows={BIG_ROWS}")),
        "base relation estimate should match the table row count:\n{text}"
    );
    // EXPLAIN only plans: nothing executed, so no query latency was recorded for it beyond
    // the EXPLAIN itself and the row counter never saw `big`'s 40k rows.
    let snap = engine.stats_snapshot();
    assert!(snap.metrics.rows_streamed < BIG_ROWS as u64, "EXPLAIN must not execute: {snap:?}");

    // EXPLAIN ANALYZE executes and shows estimate vs. actual side by side.
    let profile = session
        .execute("EXPLAIN ANALYZE SELECT PROVENANCE t.id FROM tiny t, tiny u WHERE t.id = u.id")
        .unwrap();
    let text = profile
        .tuples()
        .iter()
        .map(|t| match &t.values()[0] {
            Value::Text(s) => s.to_string(),
            other => panic!("profile column must be text, got {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("est_rows="), "profile lines carry estimates:\n{text}");
    assert!(text.contains("(actual:"), "profile lines carry actuals:\n{text}");
    wait_for_zero_gauges(&engine);
}

/// The stats snapshot exposes per-table row counts with their freshness version, and planning
/// join queries drives the optimizer counters (estimator calls, build-side swaps).
#[test]
fn stats_snapshot_reports_tables_and_optimizer_counters() {
    let engine = Arc::new(Engine::with_catalog(catalog()).with_workers(2));
    let session = engine.session();

    let snap = engine.stats_snapshot();
    let big = snap.tables.iter().find(|t| t.name == "big").expect("big table listed");
    let tiny = snap.tables.iter().find(|t| t.name == "tiny").expect("tiny table listed");
    assert_eq!(big.rows, BIG_ROWS);
    assert_eq!(tiny.rows, 3);

    // A join whose build side (the right input) is the larger table: planning must consult
    // the estimator and swap the build side so `tiny` is built and `big` is probed.
    session.execute("SELECT t.id FROM tiny t, big b WHERE t.id = b.id").unwrap();
    let snap = engine.stats_snapshot();
    assert!(snap.metrics.estimator_invocations > 0, "estimator should run: {snap:?}");
    assert!(snap.metrics.build_sides_swapped > 0, "build side should swap: {snap:?}");

    // The per-table lines surface in the human-readable stats rendering too.
    let text = perm_service::render_stats_text(&snap, 16);
    assert!(text.contains("table big rows=40000"), "{text}");
    assert!(text.contains("table tiny rows=3"), "{text}");
    wait_for_zero_gauges(&engine);
}
