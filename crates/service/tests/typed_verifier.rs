//! PREPARE-time typed-plan verification: queries that parse and bind fine but are ill-typed
//! must be rejected when the plan is compiled — with a `type mismatch` error naming the
//! operator path — instead of failing (or silently misbehaving) at execution time. Also checks
//! that EXPLAIN output carries the inferred per-operator types.

use std::sync::Arc;

use perm_algebra::Value;
use perm_core::ProvenanceRewriter;
use perm_service::Engine;

fn shop_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new().with_rewriter(Arc::new(ProvenanceRewriter::new())));
    let session = engine.session();
    session
        .execute_script(
            "CREATE TABLE shop (name TEXT, numEmpl INT);\n\
             INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14);",
        )
        .unwrap();
    engine
}

#[test]
fn prepare_rejects_text_int_comparison_with_operator_path() {
    let engine = shop_engine();
    let mut session = engine.session();
    let err = session.prepare("bad", "SELECT name FROM shop WHERE name > numEmpl").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("type mismatch"), "want a type mismatch, got: {msg}");
    assert!(msg.contains("TEXT") && msg.contains("INT"), "names both sides: {msg}");
    assert!(msg.contains("Selection"), "names the operator path: {msg}");
    // Rejected at PREPARE time: nothing was registered.
    assert!(session.prepared("bad").is_none());
}

#[test]
fn direct_query_rejects_text_arithmetic_before_execution() {
    let engine = shop_engine();
    let session = engine.session();
    let err = session.execute("SELECT name + numEmpl FROM shop").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("type mismatch"), "want a type mismatch, got: {msg}");
    assert!(msg.contains("Projection"), "names the operator path: {msg}");
}

#[test]
fn prepare_rejects_parameter_without_concrete_type() {
    let engine = shop_engine();
    let mut session = engine.session();
    // `$1` is never used in a context that fixes its type, so binding cannot choose one.
    let err = session.prepare("anyparam", "SELECT $1 FROM shop").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("parameter $1"), "names the parameter: {msg}");
    assert!(msg.contains("unresolved"), "explains what is missing: {msg}");
}

#[test]
fn well_typed_provenance_query_still_prepares() {
    let engine = shop_engine();
    let mut session = engine.session();
    let params =
        session.prepare("ok", "SELECT PROVENANCE name FROM shop WHERE numEmpl > $1").unwrap();
    assert_eq!(params, 1);
    let r = session.execute_prepared("ok", vec![Value::Int(5)]).unwrap();
    assert_eq!(r.num_rows(), 1);
}

#[test]
fn explain_carries_inferred_types() {
    let engine = shop_engine();
    let session = engine.session();
    let plan = session.execute("EXPLAIN SELECT name FROM shop WHERE numEmpl > 5").unwrap();
    let text = plan
        .tuples()
        .iter()
        .map(|t| match &t.values()[0] {
            Value::Text(s) => s.to_string(),
            other => panic!("plan column must be text, got {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("types="), "operator lines carry inferred types:\n{text}");
    // The scan exposes both columns; base-table columns are nullable (no NOT NULL metadata).
    assert!(text.contains("types=(TEXT?, INT?)"), "scan line types:\n{text}");
}
