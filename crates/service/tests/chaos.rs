//! Chaos harness: one long test that hammers a live server with the failure modes the
//! lifecycle governor exists to contain — slow-loris half-frames, mid-stream disconnects,
//! corrupt and oversized frames, injected worker panics and injected socket I/O errors —
//! while a background thread churns DDL on the same engine. After every iteration the server
//! must answer a fresh client; at the end every gauge must be back at zero and the catalog
//! must still accept and serve new tables.
//!
//! This is deliberately a **single `#[test]`**: failpoints (`perm_exec::faults`) are
//! process-global, so fault-arming scenarios must not run concurrently with each other or
//! with unrelated tests in the same binary.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use perm_algebra::{DataType, Schema, Tuple, Value, DEFAULT_CHUNK_SIZE};
use perm_exec::faults;
use perm_service::shell::ResponseFrame;
use perm_service::{serve, Client, Engine};
use perm_storage::{Catalog, Relation};

const ITERATIONS: usize = 50;
const BIG_ROWS: usize = 8 * DEFAULT_CHUNK_SIZE;

fn chaos_engine() -> Arc<Engine> {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("payload", DataType::Text)]);
    let rows = (0..BIG_ROWS as i64)
        .map(|i| Tuple::new(vec![Value::Int(i), Value::text(format!("payload-{:04}", i % 53))]))
        .collect::<Vec<_>>();
    catalog.create_table_with_data("big", Relation::from_parts(schema, rows)).unwrap();
    Arc::new(Engine::with_catalog(catalog).with_workers(2))
}

/// Open a connection and leave a half-written frame on it: a 4-byte length prefix promising
/// more bytes than are ever sent. The caller keeps the socket alive so the server-side
/// connection thread sits in its frame-completion read until the socket drops.
fn slow_loris(addr: std::net::SocketAddr) -> TcpStream {
    let mut socket = TcpStream::connect(addr).unwrap();
    socket.write_all(&64u32.to_be_bytes()).unwrap();
    socket.write_all(b"hel").unwrap();
    socket
}

/// Start a streaming query, take the schema and one chunk, then vanish without acking the
/// rest — the server's next write fails and it must tear the stream down cleanly.
fn mid_stream_disconnect(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).unwrap();
    client.send("query SELECT * FROM big").unwrap();
    match client.read_response().unwrap() {
        ResponseFrame::Schema(_) => {}
        other => panic!("expected schema frame, got {other:?}"),
    }
    match client.read_response().unwrap() {
        ResponseFrame::Chunk(_) => {}
        other => panic!("expected a result chunk, got {other:?}"),
    }
    drop(client);
}

/// Throw corrupt bytes at the server: a garbage-filled frame where the handshake belongs,
/// then an absurd length prefix. Both connections are abandoned; the server must shrug.
fn corrupt_frames(addr: std::net::SocketAddr) {
    let mut socket = TcpStream::connect(addr).unwrap();
    let garbage = [0xBAu8; 32];
    socket.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
    socket.write_all(&garbage).unwrap();
    drop(socket);

    let mut socket = TcpStream::connect(addr).unwrap();
    // Larger than any sane frame cap; the server must reject it without allocating it.
    socket.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let _ = socket.write_all(b"x");
    drop(socket);
}

/// Arm a one-shot panic in the executor's sort and run an `ORDER BY` query: the panic fence
/// must convert it into a clean error frame on this connection only.
fn injected_panic(addr: std::net::SocketAddr) {
    faults::configure("sort=panic*1").unwrap();
    let mut client = Client::connect(addr).unwrap();
    let err = client.roundtrip("query SELECT * FROM big ORDER BY id DESC").unwrap().unwrap_err();
    assert!(err.contains("panicked"), "expected the fenced panic message, got: {err}");
    faults::clear();
    // The same session keeps working once the fault is spent.
    assert_eq!(client.roundtrip("ping").unwrap().unwrap(), "pong");
}

/// Arm a one-shot socket-write error. Whichever connection writes next (this probe or the
/// background DDL churn) loses its connection mid-response; the server itself must survive.
fn injected_io_error(addr: std::net::SocketAddr) {
    // Connect *before* arming, or the server's own handshake reply consumes the fault.
    let mut client = Client::connect(addr).unwrap();
    faults::configure("socket-write=error*1").unwrap();
    // Either this roundtrip absorbs the fault (I/O error / mid-frame close) or another
    // connection did — both are fine, the per-iteration probe below proves liveness.
    let _ = client.roundtrip("ping");
    faults::clear();
}

#[test]
fn server_survives_fifty_iterations_of_chaos() {
    let engine = chaos_engine();
    let handle = serve(engine.clone(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // Background DDL churn on the shared catalog for the whole run; it reconnects whenever an
    // injected fault takes its connection down.
    let stop = Arc::new(AtomicBool::new(false));
    let ddl = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect_with_retry(addr, 5).unwrap();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let name = format!("chaos_ddl_{}", i % 4);
                let churn = client
                    .roundtrip(&format!("query CREATE TABLE {name} (id INT)"))
                    .and_then(|_| client.roundtrip(&format!("query INSERT INTO {name} VALUES (1)")))
                    .and_then(|_| client.roundtrip(&format!("query DROP TABLE IF EXISTS {name}")));
                if churn.is_err() {
                    match Client::connect_with_retry(addr, 5) {
                        Ok(fresh) => client = fresh,
                        Err(_) => break,
                    }
                }
                i += 1;
            }
        })
    };

    let mut lorises: Vec<TcpStream> = Vec::new();
    for i in 0..ITERATIONS {
        match i % 5 {
            0 => lorises.push(slow_loris(addr)),
            1 => mid_stream_disconnect(addr),
            2 => corrupt_frames(addr),
            3 => injected_panic(addr),
            4 => injected_io_error(addr),
            _ => unreachable!(),
        }
        // Liveness probe: a fresh client must get a prompt answer after every round.
        let mut probe = Client::connect(addr).unwrap();
        assert_eq!(probe.roundtrip("ping").unwrap().unwrap(), "pong", "iteration {i}");
    }

    stop.store(true, Ordering::Relaxed);
    ddl.join().unwrap();
    faults::clear();
    drop(lorises);

    // Every per-query resource must drain back to zero once the dust settles.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = engine.governor().stats();
        if engine.stream_buffered_bytes() == 0
            && stats.active_queries == 0
            && stats.reserved_bytes == 0
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gauges failed to return to zero: buffered={} stats={stats:?}",
            engine.stream_buffered_bytes()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Catalog consistency: the survivor still serves the original data and accepts new DDL.
    let mut client = Client::connect(addr).unwrap();
    let body = client.roundtrip("query SELECT * FROM big").unwrap().unwrap();
    assert_eq!(body.lines().count(), BIG_ROWS + 1, "big table intact (header + rows)");
    client.roundtrip("query CREATE TABLE chaos_final (id INT)").unwrap().unwrap();
    client.roundtrip("query INSERT INTO chaos_final VALUES (1), (2)").unwrap().unwrap();
    let body = client.roundtrip("query SELECT * FROM chaos_final ORDER BY id").unwrap().unwrap();
    assert_eq!(body, "id\n1\n2");
    drop(client);

    handle.shutdown();
}
