//! Concurrency acceptance tests: many sessions interleaving DML and `SELECT PROVENANCE`
//! queries over one shared engine, with every result matching *some* committed snapshot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use perm_core::ProvenanceRewriter;
use perm_service::Engine;

fn provenance_engine() -> Arc<Engine> {
    Arc::new(Engine::new().with_rewriter(Arc::new(ProvenanceRewriter::new())))
}

/// ≥ 8 concurrent sessions: 4 writers issue single-statement `INSERT` commits while 6 readers
/// run provenance-rewritten SPJ queries. Each reader query self-joins the table, so its result
/// cardinality is only a perfect square (and only consistent with the committed-row counter) if
/// the whole execution saw one atomic snapshot.
#[test]
fn interleaved_dml_and_provenance_queries_see_committed_snapshots() {
    let engine = provenance_engine();
    let setup = engine.session();
    setup.execute("CREATE TABLE events (id INT, payload INT)").unwrap();
    setup.execute("INSERT INTO events VALUES (-1, 0)").unwrap();

    // One committed row so far; every writer bumps this *after* its INSERT commits, so at any
    // instant `committed <= true rows <= committed + writers`.
    let committed = Arc::new(AtomicU64::new(1));
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    const WRITERS: usize = 4;
    const READERS: usize = 6;

    // Each writer commits a bounded number of rows (keeping the readers' O(n²) consistency
    // probes cheap) but keeps going while readers run, which creates the race window.
    const ROWS_PER_WRITER: u64 = 100;
    for w in 0..WRITERS {
        let engine = engine.clone();
        let committed = committed.clone();
        let stop = stop.clone();
        threads.push(thread::spawn(move || {
            let session = engine.session();
            for i in 0..ROWS_PER_WRITER {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let id = (w as u64) * 1_000_000 + i;
                session.execute(&format!("INSERT INTO events VALUES ({id}, {i})")).unwrap();
                committed.fetch_add(1, Ordering::SeqCst);
                thread::yield_now();
            }
        }));
    }

    for r in 0..READERS {
        let engine = engine.clone();
        let committed = committed.clone();
        threads.push(thread::spawn(move || {
            let session = engine.session();
            for _ in 0..25 {
                let lo = committed.load(Ordering::SeqCst);
                // A provenance-rewritten SPJ query whose FROM clause scans `events` twice: the
                // equi-join on the unique id yields exactly one row per stored row, with the
                // provenance attributes of both references attached.
                let result = session
                    .execute(
                        "SELECT PROVENANCE a.id FROM events AS a, events AS b WHERE a.id = b.id",
                    )
                    .unwrap();
                let hi = committed.load(Ordering::SeqCst) + WRITERS as u64;
                let n = result.num_rows() as u64;
                assert!(
                    lo <= n && n <= hi,
                    "reader {r}: result of {n} rows matches no committed snapshot \
                     (expected between {lo} and {hi})"
                );
                // Both provenance attribute groups (a and b) are present: id, payload twice.
                assert_eq!(result.schema().arity(), 1 + 4, "original column + 2x2 prov attrs");
                // Cross-check with an unfiltered self cross product: a torn snapshot would make
                // the cardinality a non-square.
                let square =
                    session.execute("SELECT count(*) AS c FROM events AS a, events AS b").unwrap();
                let rows = match square.tuples()[0][0] {
                    perm_algebra::Value::Int(c) => c as u64,
                    ref other => panic!("unexpected count value {other:?}"),
                };
                let root = (rows as f64).sqrt().round() as u64;
                assert_eq!(root * root, rows, "reader {r}: torn snapshot in self cross product");
            }
        }));
    }

    // Readers run a fixed number of iterations; once they finish, stop the writers.
    let writers: Vec<_> = threads.drain(..WRITERS).collect();
    for reader in threads {
        reader.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    for writer in writers {
        writer.join().unwrap();
    }

    // Post-condition: the table really grew and everything still queries cleanly.
    let final_count = engine.session().execute("SELECT count(*) AS c FROM events").unwrap();
    assert_eq!(
        final_count.tuples()[0][0],
        perm_algebra::Value::Int(committed.load(Ordering::SeqCst) as i64)
    );
}

/// Writers committing to *two* tables atomically via SQL-visible sessions: readers joining both
/// tables must always see matching row counts.
#[test]
fn multi_table_commits_are_atomic_for_readers() {
    let engine = provenance_engine();
    let setup = engine.session();
    setup.execute("CREATE TABLE orders (id INT)").unwrap();
    setup.execute("CREATE TABLE lines (order_id INT)").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let engine = engine.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            for i in 0i64..3000 {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // The storage-level atomic multi-table commit the service builds on.
                engine
                    .catalog()
                    .insert_many(vec![
                        ("orders", vec![perm_algebra::tuple![i]]),
                        ("lines", vec![perm_algebra::tuple![i]]),
                    ])
                    .unwrap();
                thread::yield_now();
            }
        })
    };

    let session = engine.session();
    for _ in 0..150 {
        let result = session
            .execute("SELECT count(*) AS c FROM orders UNION ALL SELECT count(*) AS c FROM lines")
            .unwrap();
        assert_eq!(
            result.tuples()[0],
            result.tuples()[1],
            "orders and lines must never diverge within one query"
        );
    }
    stop.store(true, Ordering::SeqCst);
    writer.join().unwrap();
}
