//! Property fuzz of the protocol-v2 frame decoders: take valid encoded frames, flip random
//! bytes, and feed the result to every decoder. A mutation may happen to produce another
//! valid frame (fine) or a corrupt one (must return a clean `ServiceError`) — but decoding
//! must never panic, hang, or allocate beyond the frame's own size. The deterministic tests
//! at the bottom pin the no-over-allocation guarantee directly: frames *claiming* huge
//! element counts with tiny bodies must fail fast instead of pre-allocating gigabytes.

use std::sync::Arc;

use perm_algebra::{Array, DataChunk, DataType, Schema, Value};
use perm_service::codec::{
    decode_chunk, decode_done, decode_schema, encode_chunk, encode_done, encode_schema,
};
use proptest::prelude::*;

/// A spread of valid frames covering every frame kind, array type and array encoding.
fn sample_frames() -> Vec<Vec<u8>> {
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("name", DataType::Text),
        ("price", DataType::Float),
        ("since", DataType::Date),
        ("flag", DataType::Bool),
        ("nothing", DataType::Null),
    ]);
    let plain = DataChunk::new(vec![
        Arc::new(Array::from_values([Value::Int(1), Value::Null, Value::Int(-7)].into_iter())),
        Arc::new(Array::from_values(
            [Value::text("a"), Value::text("bc"), Value::Null].into_iter(),
        )),
        Arc::new(Array::from_values(
            [Value::Float(1.5), Value::Float(-0.25), Value::Null].into_iter(),
        )),
        Arc::new(Array::from_values(
            [Value::Bool(true), Value::Null, Value::Bool(false)].into_iter(),
        )),
        Arc::new(Array::from_values([Value::Date(1), Value::Date(-400), Value::Null].into_iter())),
        Arc::new(Array::Null { len: 3 }),
        Arc::new(Array::Any { values: vec![Value::Int(1), Value::text("mixed"), Value::Null] }),
    ]);
    let dict = Arc::new(Array::from_values((0..4).map(|i| Value::text(format!("v{i}").as_str()))));
    let dict_chunk =
        DataChunk::new(vec![Arc::new(Array::Dict { indices: vec![1, 1, 3, 3, 1], dict })]);
    let rle_chunk =
        DataChunk::new(vec![Arc::new(Array::from_values(std::iter::repeat_n(Value::Int(9), 300)))]);
    vec![
        encode_schema(&schema),
        encode_chunk(&plain),
        encode_chunk(&dict_chunk),
        encode_chunk(&rle_chunk),
        encode_done(12345),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn mutated_frames_decode_or_error_but_never_panic(
        which in 0usize..5,
        mutations in proptest::collection::vec((0usize..4096, 0u16..256), 1..8),
        truncate in 0usize..4096,
    ) {
        let frames = sample_frames();
        let mut bytes = frames[which].clone();
        for &(pos, val) in &mutations {
            let len = bytes.len();
            bytes[pos % len] = val as u8;
        }
        // Also exercise truncation, the most common real-world corruption.
        bytes.truncate(1 + truncate % bytes.len());
        // The server routes on the frame kind it *expects*, so a mutated body can reach any
        // decoder regardless of its (possibly mutated) tag byte — run all of them. The
        // property is the absence of panics and runaway allocations; Ok results are fine.
        let body = &bytes[1..];
        let _ = decode_schema(body);
        let _ = decode_chunk(body);
        let _ = decode_done(body);
    }
}

/// A frame claiming `u32::MAX` plain values with an empty body must fail fast. Before the
/// decoder capped preallocations by the bytes actually remaining, this aborted the process
/// trying to reserve 32 GiB.
#[test]
fn huge_claimed_plain_length_errors_without_allocating() {
    for type_tag in [1u8, 2, 3, 4, 6] {
        let mut body = Vec::new();
        body.extend_from_slice(&3u32.to_be_bytes()); // rows
        body.extend_from_slice(&1u16.to_be_bytes()); // ncols
        body.push(0); // plain encoding
        body.push(type_tag);
        body.extend_from_slice(&u32::MAX.to_be_bytes()); // claimed len, no payload
        assert!(decode_chunk(&body).is_err(), "type tag {type_tag}");
    }
}

/// Same for the encoded forms: dictionary index counts and run counts are wire-controlled.
#[test]
fn huge_claimed_encoded_counts_error_without_allocating() {
    for enc_tag in [1u8, 2] {
        let mut body = Vec::new();
        body.extend_from_slice(&3u32.to_be_bytes()); // rows
        body.extend_from_slice(&1u16.to_be_bytes()); // ncols
        body.push(enc_tag);
        body.extend_from_slice(&u32::MAX.to_be_bytes()); // claimed count, no payload
        assert!(decode_chunk(&body).is_err(), "encoding tag {enc_tag}");
    }
}

/// And for the schema header's column count.
#[test]
fn huge_claimed_schema_arity_errors_without_allocating() {
    let body = u16::MAX.to_be_bytes().to_vec();
    assert!(decode_schema(&body).is_err());
}
