//! End-to-end wire-protocol tests: boot `permd`'s server on an OS-assigned port and drive it
//! with the client, including concurrent connections, slow clients and graceful shutdown.

use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use perm_core::ProvenanceRewriter;
use perm_service::{serve, Client, Engine};

fn provenance_engine() -> Arc<Engine> {
    Arc::new(Engine::new().with_rewriter(Arc::new(ProvenanceRewriter::new())))
}

#[test]
fn ddl_dml_and_provenance_over_the_wire() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    assert_eq!(client.roundtrip("ping").unwrap().unwrap(), "pong");
    client.roundtrip("query CREATE TABLE items (id INT, price INT)").unwrap().unwrap();
    client.roundtrip("query INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)").unwrap().unwrap();

    let body = client
        .roundtrip("query SELECT PROVENANCE sum(price) AS total FROM items")
        .unwrap()
        .unwrap();
    let mut lines = body.lines();
    assert_eq!(lines.next(), Some("total\tprov_items_id\tprov_items_price"));
    assert_eq!(lines.clone().count(), 3, "every item contributes to the sum");
    assert!(lines.all(|l| l.starts_with("135\t")));

    // Prepared statements with parameters over the wire.
    client
        .roundtrip("prepare pricey SELECT id FROM items WHERE price > $1 ORDER BY id")
        .unwrap()
        .unwrap();
    let body = client.roundtrip("exec pricey (20)").unwrap().unwrap();
    assert_eq!(body, "id\n1\n3");
    let err = client.roundtrip("exec pricey (1, 2)").unwrap().unwrap_err();
    assert!(err.contains("expects 1 parameter"));

    // Session settings over the wire.
    client.roundtrip("set budget 1").unwrap().unwrap();
    let err = client.roundtrip("query SELECT * FROM items").unwrap().unwrap_err();
    assert!(err.contains("row budget"));
    client.roundtrip("set budget none").unwrap().unwrap();
    client.roundtrip("query SELECT * FROM items").unwrap().unwrap();

    // Errors are reported uniformly with the layer's Display text.
    let err = client.roundtrip("query SELECT * FROM ghost").unwrap().unwrap_err();
    assert!(err.contains("does not exist"));
    let err = client.roundtrip("bogus command").unwrap().unwrap_err();
    assert!(err.contains("unknown command"));

    let stats = client.roundtrip("stats").unwrap().unwrap();
    assert!(stats.starts_with("plan_cache"));

    assert_eq!(client.roundtrip("shutdown").unwrap().unwrap(), "bye");
    handle.wait();
}

#[test]
fn concurrent_connections_share_the_catalog() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut setup = Client::connect(addr).unwrap();
    setup.roundtrip("query CREATE TABLE t (x INT)").unwrap().unwrap();

    let mut threads = Vec::new();
    for i in 0..8 {
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for j in 0..10 {
                client
                    .roundtrip(&format!("query INSERT INTO t VALUES ({})", i * 100 + j))
                    .unwrap()
                    .unwrap();
                client.roundtrip("query SELECT count(*) AS c FROM t").unwrap().unwrap();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    let body = setup.roundtrip("query SELECT count(*) AS c FROM t").unwrap().unwrap();
    assert_eq!(body, "c\n80");
    handle.shutdown();
}

/// Read one raw length-prefixed response frame.
fn read_raw_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut body = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut body).unwrap();
    body
}

/// Write one raw length-prefixed request frame.
fn write_raw_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream.write_all(&(payload.len() as u32).to_be_bytes()).unwrap();
    stream.write_all(payload).unwrap();
    stream.flush().unwrap();
}

/// A client that delivers a frame in pieces — with stalls longer than the server's idle poll
/// interval both between the length prefix and the payload and inside the payload — must not
/// desync the protocol: the read timeout may only ever fire at a frame boundary.
#[test]
fn slow_clients_do_not_desync_the_protocol() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    write_raw_frame(&mut stream, b"hello 2");
    assert_eq!(read_raw_frame(&mut stream), b"+hello 2");

    let payload = b"ping";
    stream.write_all(&(payload.len() as u32).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    thread::sleep(Duration::from_millis(450)); // longer than the 200 ms poll interval
    stream.write_all(&payload[..2]).unwrap();
    stream.flush().unwrap();
    thread::sleep(Duration::from_millis(450));
    stream.write_all(&payload[2..]).unwrap();
    stream.flush().unwrap();

    assert_eq!(read_raw_frame(&mut stream), b"+pong");

    // The connection is still healthy for a normally-framed follow-up request.
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.roundtrip("ping").unwrap().unwrap(), "pong");
    handle.shutdown();
}

/// A legacy (pre-v2) client that skips the handshake and opens with a v1 command must get a
/// clean, versioned error it can render as text — not a hang and not a binary surprise.
#[test]
fn legacy_first_command_gets_a_versioned_error() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();

    write_raw_frame(&mut stream, b"query SELECT 1");
    let body = String::from_utf8(read_raw_frame(&mut stream)).unwrap();
    assert!(body.starts_with('-'), "v1-compatible error prefix: {body}");
    assert!(body.contains("hello"), "tells the client how to handshake: {body}");
    assert!(body.contains("version 2"), "names the server's protocol version: {body}");

    // The connection survives and can still handshake afterwards.
    write_raw_frame(&mut stream, b"hello 2");
    assert_eq!(read_raw_frame(&mut stream), b"+hello 2");
    write_raw_frame(&mut stream, b"ping");
    assert_eq!(read_raw_frame(&mut stream), b"+pong");
    handle.shutdown();
}

/// A client asking for a version the server does not speak is refused by name, and the
/// refusal states the version the server does speak.
#[test]
fn unsupported_hello_version_is_refused_with_the_supported_version() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();

    write_raw_frame(&mut stream, b"hello 99");
    let body = String::from_utf8(read_raw_frame(&mut stream)).unwrap();
    assert!(body.starts_with('-'));
    assert!(body.contains("99"), "names the rejected version: {body}");
    assert!(body.contains('2'), "names the supported version: {body}");

    // Retrying with the right version on the same connection works.
    write_raw_frame(&mut stream, b"hello 2");
    assert_eq!(read_raw_frame(&mut stream), b"+hello 2");
    handle.shutdown();
}

/// An error frame after partial RESULT frames must invalidate the partial result: the
/// buffering client discards the rows, and the incremental shell prints an explicit
/// invalidation notice.
#[test]
fn mid_stream_errors_invalidate_partial_results() {
    let engine = provenance_engine();
    let handle = serve(engine, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    client.roundtrip("query CREATE TABLE big (x INT)").unwrap().unwrap();
    for batch in 0..4 {
        let values: Vec<String> = (0..1000).map(|i| format!("({})", batch * 1000 + i)).collect();
        client
            .roundtrip(&format!("query INSERT INTO big VALUES {}", values.join(", ")))
            .unwrap()
            .unwrap();
    }
    // A budget larger than one chunk but smaller than the result: the stream delivers at
    // least one RESULT frame and then aborts.
    client.roundtrip("set budget 2500").unwrap().unwrap();
    let err = client.roundtrip("query SELECT x FROM big").unwrap().unwrap_err();
    assert!(err.contains("row budget"), "mid-stream error surfaces: {err}");

    // The same statement through the shell prints rows incrementally, then an explicit
    // invalidation notice (no silent truncated table).
    let script = "SELECT x FROM big\n\\q\n";
    let mut output = Vec::new();
    let errors =
        perm_service::shell::run_shell(&mut client, Cursor::new(script), &mut output).unwrap();
    assert_eq!(errors, 1);
    let text = String::from_utf8(output).unwrap();
    assert!(text.contains("row budget"), "error message printed: {text}");
    assert!(
        text.contains("result invalid") && text.contains("disregard"),
        "explicit invalidation notice: {text}"
    );

    // The connection stays usable after both shapes of failed stream.
    client.roundtrip("set budget none").unwrap().unwrap();
    assert_eq!(client.roundtrip("ping").unwrap().unwrap(), "pong");
    handle.shutdown();
}

/// The server must stop sending RESULT frames once the backpressure window is full of
/// unacknowledged chunks, and resume when the client acks.
#[test]
fn server_respects_the_backpressure_window() {
    // A single-worker engine streams through the executor's pull pipeline with deterministic
    // 1024-row chunks: 100 × 100 cross-joined rows = 10 chunks, more than the window of 8.
    let engine =
        Arc::new(Engine::new().with_rewriter(Arc::new(ProvenanceRewriter::new())).with_workers(1));
    let handle = serve(engine, "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    write_raw_frame(&mut stream, b"hello 2");
    assert_eq!(read_raw_frame(&mut stream), b"+hello 2");

    write_raw_frame(&mut stream, b"query CREATE TABLE t (x INT)");
    assert_eq!(read_raw_frame(&mut stream)[0], b'S');
    assert_eq!(read_raw_frame(&mut stream)[0], b'D');
    let values: Vec<String> = (0..100).map(|i| format!("({i})")).collect();
    write_raw_frame(
        &mut stream,
        format!("query INSERT INTO t VALUES {}", values.join(", ")).as_bytes(),
    );
    assert_eq!(read_raw_frame(&mut stream)[0], b'S');
    assert_eq!(read_raw_frame(&mut stream)[0], b'D');

    write_raw_frame(&mut stream, b"query SELECT a.x FROM t a, t b");
    assert_eq!(read_raw_frame(&mut stream)[0], b'S');

    // Without acks, the server may send at most BACKPRESSURE_WINDOW chunk frames. Count what
    // arrives until the socket goes quiet.
    stream.set_read_timeout(Some(Duration::from_millis(1500))).unwrap();
    let mut rows = 0u64;
    let mut unacked_chunks = 0;
    loop {
        let mut len = [0u8; 4];
        match stream.read_exact(&mut len) {
            Ok(()) => {}
            Err(_) => break, // quiet: the window is exhausted
        }
        let mut body = vec![0u8; u32::from_be_bytes(len) as usize];
        stream.read_exact(&mut body).unwrap();
        assert_eq!(body[0], b'R', "only chunk frames before the window closes");
        rows += u32::from_be_bytes(body[1..5].try_into().unwrap()) as u64;
        unacked_chunks += 1;
        assert!(
            unacked_chunks <= perm_service::server::BACKPRESSURE_WINDOW,
            "server sent more than the window without acks"
        );
    }
    assert_eq!(
        unacked_chunks,
        perm_service::server::BACKPRESSURE_WINDOW,
        "the full window is in flight before the server blocks"
    );
    assert!(rows < 10_000, "the stall happened before the result finished");

    // Ack everything received; the stream resumes and finishes.
    stream.set_read_timeout(None).unwrap();
    for _ in 0..unacked_chunks {
        write_raw_frame(&mut stream, b"ack");
    }
    let done_rows = loop {
        let body = read_raw_frame(&mut stream);
        match body[0] {
            b'R' => {
                rows += u32::from_be_bytes(body[1..5].try_into().unwrap()) as u64;
                write_raw_frame(&mut stream, b"ack");
            }
            b'D' => break u64::from_be_bytes(body[1..9].try_into().unwrap()),
            other => panic!("unexpected frame tag {other}"),
        }
    };
    assert_eq!(done_rows, 10_000, "trailer reports the full result size");
    assert_eq!(rows, 10_000, "every row arrived across the stall");

    write_raw_frame(&mut stream, b"shutdown");
    assert_eq!(read_raw_frame(&mut stream), b"+bye");
    handle.wait();
}

#[test]
fn shell_runs_scripts_and_counts_errors() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let script = "\
-- comment lines and blanks are skipped

CREATE TABLE items (id INT, price INT)
INSERT INTO items VALUES (1, 100), (2, 10)
\\prepare pricey SELECT id FROM items WHERE price > $1
\\exec pricey (50)
SELECT oops FROM nowhere
\\stats
\\q
";
    let mut output = Vec::new();
    let errors =
        perm_service::shell::run_shell(&mut client, Cursor::new(script), &mut output).unwrap();
    assert_eq!(errors, 1, "exactly the bad SELECT fails");
    let text = String::from_utf8(output).unwrap();
    assert!(text.contains("id\n1"), "prepared execution output present: {text}");
    assert!(text.contains("error:"), "error line present: {text}");
    assert!(text.contains("plan_cache"), "stats line present: {text}");

    handle.shutdown();
}
