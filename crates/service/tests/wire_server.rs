//! End-to-end wire-protocol tests: boot `permd`'s server on an OS-assigned port and drive it
//! with the client, including concurrent connections, slow clients and graceful shutdown.

use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use perm_core::ProvenanceRewriter;
use perm_service::{serve, Client, Engine};

fn provenance_engine() -> Arc<Engine> {
    Arc::new(Engine::new().with_rewriter(Arc::new(ProvenanceRewriter::new())))
}

#[test]
fn ddl_dml_and_provenance_over_the_wire() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    assert_eq!(client.roundtrip("ping").unwrap().unwrap(), "pong");
    client.roundtrip("query CREATE TABLE items (id INT, price INT)").unwrap().unwrap();
    client.roundtrip("query INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)").unwrap().unwrap();

    let body = client
        .roundtrip("query SELECT PROVENANCE sum(price) AS total FROM items")
        .unwrap()
        .unwrap();
    let mut lines = body.lines();
    assert_eq!(lines.next(), Some("total\tprov_items_id\tprov_items_price"));
    assert_eq!(lines.clone().count(), 3, "every item contributes to the sum");
    assert!(lines.all(|l| l.starts_with("135\t")));

    // Prepared statements with parameters over the wire.
    client
        .roundtrip("prepare pricey SELECT id FROM items WHERE price > $1 ORDER BY id")
        .unwrap()
        .unwrap();
    let body = client.roundtrip("exec pricey (20)").unwrap().unwrap();
    assert_eq!(body, "id\n1\n3");
    let err = client.roundtrip("exec pricey (1, 2)").unwrap().unwrap_err();
    assert!(err.contains("expects 1 parameter"));

    // Session settings over the wire.
    client.roundtrip("set budget 1").unwrap().unwrap();
    let err = client.roundtrip("query SELECT * FROM items").unwrap().unwrap_err();
    assert!(err.contains("row budget"));
    client.roundtrip("set budget none").unwrap().unwrap();
    client.roundtrip("query SELECT * FROM items").unwrap().unwrap();

    // Errors are reported uniformly with the layer's Display text.
    let err = client.roundtrip("query SELECT * FROM ghost").unwrap().unwrap_err();
    assert!(err.contains("does not exist"));
    let err = client.roundtrip("bogus command").unwrap().unwrap_err();
    assert!(err.contains("unknown command"));

    let stats = client.roundtrip("stats").unwrap().unwrap();
    assert!(stats.starts_with("plan_cache"));

    assert_eq!(client.roundtrip("shutdown").unwrap().unwrap(), "bye");
    handle.wait();
}

#[test]
fn concurrent_connections_share_the_catalog() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut setup = Client::connect(addr).unwrap();
    setup.roundtrip("query CREATE TABLE t (x INT)").unwrap().unwrap();

    let mut threads = Vec::new();
    for i in 0..8 {
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for j in 0..10 {
                client
                    .roundtrip(&format!("query INSERT INTO t VALUES ({})", i * 100 + j))
                    .unwrap()
                    .unwrap();
                client.roundtrip("query SELECT count(*) AS c FROM t").unwrap().unwrap();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    let body = setup.roundtrip("query SELECT count(*) AS c FROM t").unwrap().unwrap();
    assert_eq!(body, "c\n80");
    handle.shutdown();
}

/// A client that delivers a frame in pieces — with stalls longer than the server's idle poll
/// interval both between the length prefix and the payload and inside the payload — must not
/// desync the protocol: the read timeout may only ever fire at a frame boundary.
#[test]
fn slow_clients_do_not_desync_the_protocol() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();

    let payload = b"ping";
    stream.write_all(&(payload.len() as u32).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    thread::sleep(Duration::from_millis(450)); // longer than the 200 ms poll interval
    stream.write_all(&payload[..2]).unwrap();
    stream.flush().unwrap();
    thread::sleep(Duration::from_millis(450));
    stream.write_all(&payload[2..]).unwrap();
    stream.flush().unwrap();

    // Response: 4-byte length + "+pong".
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let mut body = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut body).unwrap();
    assert_eq!(body, b"+pong");

    // The connection is still healthy for a normally-framed follow-up request.
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.roundtrip("ping").unwrap().unwrap(), "pong");
    handle.shutdown();
}

#[test]
fn shell_runs_scripts_and_counts_errors() {
    let handle = serve(provenance_engine(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let script = "\
-- comment lines and blanks are skipped

CREATE TABLE items (id INT, price INT)
INSERT INTO items VALUES (1, 100), (2, 10)
\\prepare pricey SELECT id FROM items WHERE price > $1
\\exec pricey (50)
SELECT oops FROM nowhere
\\stats
\\q
";
    let mut output = Vec::new();
    let errors =
        perm_service::shell::run_shell(&mut client, Cursor::new(script), &mut output).unwrap();
    assert_eq!(errors, 1, "exactly the bad SELECT fails");
    let text = String::from_utf8(output).unwrap();
    assert!(text.contains("id\n1"), "prepared execution output present: {text}");
    assert!(text.contains("error:"), "error line present: {text}");
    assert!(text.contains("plan_cache"), "stats line present: {text}");

    handle.shutdown();
}
