//! Differential test for the streaming result path: the concatenation of streamed chunks —
//! after a full round-trip through the wire codec's factorized (dict/RLE) encoding — must be
//! bit-identical to the materialized `Relation` produced by every execution pipeline, at result
//! sizes straddling the chunk-size boundary (1, 1023, 1024, 1025 rows).

use perm_algebra::{
    BinaryOperator, DataType, JoinKind, PlanBuilder, ScalarExpr, Schema, Tuple, Value,
    DEFAULT_CHUNK_SIZE,
};
use perm_exec::{Executor, WorkerPool};
use perm_service::codec;
use perm_storage::{Catalog, Relation};

/// probe(x, k) joined to build(k, payload, weight): every probe row matches exactly one build
/// row, so `x < n` sizes the result to exactly `n` rows; the build side's wide text payload
/// repeats heavily, which is what the factorized wire encoding exists for.
fn catalog() -> Catalog {
    let catalog = Catalog::new();
    let probe_schema = Schema::from_pairs(&[("x", DataType::Int), ("k", DataType::Int)]);
    let probe =
        (0..1025).map(|x| Tuple::new(vec![Value::Int(x), Value::Int(x % 3)])).collect::<Vec<_>>();
    catalog.create_table_with_data("probe", Relation::from_parts(probe_schema, probe)).unwrap();

    let build_schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("payload", DataType::Text),
        ("weight", DataType::Float),
    ]);
    let build = (0..3)
        .map(|k| {
            let payload: String = std::iter::repeat_n(char::from(b'a' + k as u8), 64).collect();
            Tuple::new(vec![Value::Int(k), Value::text(payload), Value::Float(k as f64 + 0.5)])
        })
        .collect::<Vec<_>>();
    catalog.create_table_with_data("build", Relation::from_parts(build_schema, build)).unwrap();
    catalog
}

fn plan_with_result_size(catalog: &Catalog, n: i64) -> perm_algebra::LogicalPlan {
    let probe = PlanBuilder::scan("probe", catalog.table_schema("probe").unwrap(), 0).filter(
        ScalarExpr::binary(
            BinaryOperator::Lt,
            ScalarExpr::column(0, "x"),
            ScalarExpr::literal(Value::Int(n)),
        ),
    );
    let build = PlanBuilder::scan("build", catalog.table_schema("build").unwrap(), 1);
    probe
        .join(
            build,
            JoinKind::Inner,
            Some(ScalarExpr::column(1, "k").eq(ScalarExpr::column(2, "k"))),
        )
        .build()
}

/// Flatten a relation to plain row-major values — the common denominator every pipeline and
/// the decoded wire chunks are compared through.
fn rows_of(relation: &Relation) -> Vec<Vec<Value>> {
    let mut rows = Vec::with_capacity(relation.num_rows());
    for chunk in relation.chunks().iter() {
        for row in 0..chunk.num_rows() {
            rows.push((0..chunk.num_columns()).map(|c| chunk.column(c).value(row)).collect());
        }
    }
    rows
}

#[test]
fn streamed_chunks_match_every_materializing_pipeline() {
    let catalog = catalog();
    let pool = WorkerPool::new(4);

    for n in [1i64, 1023, 1024, 1025] {
        let plan = plan_with_result_size(&catalog, n);
        let executor = Executor::new(catalog.clone());

        // The reference row-at-a-time interpreter is ground truth.
        let reference = executor.execute_reference(&plan).unwrap();
        assert_eq!(reference.num_rows() as i64, n, "join sizes the result to n rows");
        let expected = rows_of(&reference);

        // Materializing pipelines: vectorized collect, tuple-iterator path, morsel-parallel.
        let materialized = executor.execute(&plan).unwrap();
        assert_eq!(rows_of(&materialized), expected, "vectorized execute, n={n}");
        let tuple_path = executor.execute_streaming(&plan).unwrap();
        assert_eq!(rows_of(&tuple_path), expected, "tuple-iterator path, n={n}");
        let parallel = executor.execute_parallel(&plan, &pool).unwrap();
        assert_eq!(rows_of(&parallel), expected, "morsel-parallel path, n={n}");

        // The streamed path: pull chunks, push each through the wire codec (encode → decode),
        // and concatenate the decoded chunks back into a relation.
        let stream = executor.execute_chunked(&plan).unwrap();
        let schema_frame = codec::encode_schema(stream.schema());
        let schema = codec::decode_schema(&schema_frame[1..]).unwrap();
        // The wire schema carries names and types (qualifiers are a planner concern).
        assert_eq!(
            schema.attribute_names(),
            materialized.schema().attribute_names(),
            "schema frame round-trips names, n={n}"
        );
        assert_eq!(
            schema.attributes().iter().map(|a| a.data_type).collect::<Vec<_>>(),
            materialized.schema().attributes().iter().map(|a| a.data_type).collect::<Vec<_>>(),
            "schema frame round-trips types, n={n}"
        );

        let mut decoded_chunks = Vec::new();
        let mut streamed_rows = 0usize;
        let mut encoded_on_wire = false;
        for chunk in stream {
            let chunk = chunk.unwrap();
            assert!(chunk.num_rows() <= DEFAULT_CHUNK_SIZE, "chunks respect the chunk size");
            let frame = codec::encode_chunk(&chunk);
            let decoded = codec::decode_chunk(&frame[1..]).unwrap();
            streamed_rows += decoded.num_rows();
            encoded_on_wire |= (0..decoded.num_columns()).any(|c| decoded.column(c).is_encoded());
            decoded_chunks.push(decoded);
        }
        assert_eq!(streamed_rows as i64, n, "stream delivers every row exactly once");
        let expected_chunks = (n as usize).div_ceil(DEFAULT_CHUNK_SIZE);
        assert_eq!(decoded_chunks.len(), expected_chunks, "boundary chunking at n={n}");
        if n > 1 {
            assert!(
                encoded_on_wire,
                "repeating join payloads ride the wire in factorized form, n={n}"
            );
        }

        let streamed = Relation::from_chunks(schema, decoded_chunks);
        assert_eq!(rows_of(&streamed), expected, "streamed wire round-trip, n={n}");
    }
}
