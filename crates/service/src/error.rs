//! The error type of the query service.

use std::fmt;

use perm_exec::ExecError;
use perm_sql::SqlError;
use perm_storage::CatalogError;

/// Errors surfaced by the service layer (engine, sessions, wire protocol).
///
/// Every variant carries enough context to be reported to a remote client as a single line of
/// text, and [`std::error::Error::source`] exposes the underlying layer error for callers that
/// want to walk the chain.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// SQL front-end error (lexing, parsing, analysis).
    Sql(SqlError),
    /// Execution error (including row-budget / timeout aborts and unbound parameters).
    Exec(ExecError),
    /// Catalog error.
    Catalog(CatalogError),
    /// `EXECUTE` referenced a prepared statement that does not exist in this session.
    UnknownPrepared(String),
    /// A prepared statement was executed with the wrong number of parameters.
    ParameterCount {
        /// Name of the prepared statement.
        name: String,
        /// Number of `$n` slots the statement references.
        expected: usize,
        /// Number of values that were bound.
        got: usize,
    },
    /// The requested operation is not supported (e.g. preparing a DDL statement).
    Unsupported(String),
    /// A malformed wire-protocol request.
    Protocol(String),
    /// An internal server failure (a caught panic in a worker or connection thread). The query
    /// that hit it fails with this error; the server itself keeps serving.
    Internal(String),
}

impl ServiceError {
    /// Convenience constructor for unsupported-operation errors.
    pub fn unsupported(msg: impl Into<String>) -> ServiceError {
        ServiceError::Unsupported(msg.into())
    }

    /// Convenience constructor for protocol errors.
    pub fn protocol(msg: impl Into<String>) -> ServiceError {
        ServiceError::Protocol(msg.into())
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Sql(e) => write!(f, "{e}"),
            ServiceError::Exec(e) => write!(f, "{e}"),
            ServiceError::Catalog(e) => write!(f, "{e}"),
            ServiceError::UnknownPrepared(name) => {
                write!(f, "prepared statement '{name}' does not exist")
            }
            ServiceError::ParameterCount { name, expected, got } => {
                write!(f, "prepared statement '{name}' expects {expected} parameter(s), got {got}")
            }
            ServiceError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Sql(e) => Some(e),
            ServiceError::Exec(e) => Some(e),
            ServiceError::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SqlError> for ServiceError {
    fn from(e: SqlError) -> Self {
        ServiceError::Sql(e)
    }
}

impl From<ExecError> for ServiceError {
    fn from(e: ExecError) -> Self {
        ServiceError::Exec(e)
    }
}

impl From<CatalogError> for ServiceError {
    fn from(e: CatalogError) -> Self {
        ServiceError::Catalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source_chain() {
        let e = ServiceError::from(ExecError::RowBudgetExceeded { budget: 9 });
        assert!(e.to_string().contains('9'));
        assert!(e.source().is_some());
        let e = ServiceError::ParameterCount { name: "q".into(), expected: 2, got: 1 };
        assert!(e.to_string().contains("expects 2"));
        assert!(e.source().is_none());
        let e = ServiceError::from(CatalogError::NotFound("t".into()));
        assert!(e.source().unwrap().to_string().contains('t'));
    }
}
