//! The shared plan cache: parse/analyze/rewrite/optimize once, execute many.
//!
//! Entries are keyed by *normalized* SQL text (whitespace collapsed outside quotes, trailing
//! semicolons stripped) and tagged with the catalog commit version observed at planning time.
//! Any DDL/DML commit bumps the catalog version, so stale plans are evicted lazily on their
//! next lookup — the cache never serves a plan created against a different catalog state.
//! Eviction is LRU with a fixed capacity.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::PreparedPlan;

/// Counters describing cache effectiveness (exposed for tests, benches and the wire `stats`
/// command).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached plan.
    pub hits: u64,
    /// Lookups that found nothing (or only a stale entry).
    pub misses: u64,
    /// Entries dropped because the catalog version moved past them.
    pub invalidations: u64,
    /// Current number of cached plans.
    pub entries: usize,
}

struct CacheEntry {
    plan: Arc<PreparedPlan>,
    version: u64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<String, CacheEntry>,
    /// Keys in least-recently-used-first order.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl CacheInner {
    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key.to_string());
    }
}

/// A thread-safe LRU cache of optimized query plans.
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl PlanCache {
    /// Create a cache holding at most `capacity` plans (a capacity of 0 disables caching).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache { inner: Mutex::new(CacheInner::default()), capacity }
    }

    /// The maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a plan for `key` that was created at exactly `version`. A stale entry counts as
    /// a miss and is dropped.
    pub fn get(&self, key: &str, version: u64) -> Option<Arc<PreparedPlan>> {
        let mut inner = self.inner.lock();
        match inner.map.get(key) {
            Some(entry) if entry.version == version => {
                let plan = entry.plan.clone();
                inner.hits += 1;
                inner.touch(key);
                Some(plan)
            }
            Some(_) => {
                inner.map.remove(key);
                if let Some(pos) = inner.order.iter().position(|k| k == key) {
                    inner.order.remove(pos);
                }
                inner.invalidations += 1;
                inner.misses += 1;
                None
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a plan created at `version`, evicting the least-recently-used entry when full.
    pub fn insert(&self, key: String, version: u64, plan: Arc<PreparedPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(evicted) = inner.order.pop_front() {
                inner.map.remove(&evicted);
            }
        }
        inner.map.insert(key.clone(), CacheEntry { plan, version });
        inner.touch(&key);
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            entries: inner.map.len(),
        }
    }
}

/// Normalize SQL text for use as a cache key: strip `--` line comments, collapse whitespace
/// runs to a single space *outside* quoted strings/identifiers and strip trailing semicolons,
/// so trivially reformatted queries share one plan. Comments must be removed (not just
/// space-collapsed): the newline that terminates a `--` comment is semantically load-bearing,
/// and collapsing it would give `a -- c\nFROM t` and `a -- c FROM t` the same key.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        match c {
            '-' if chars.peek() == Some(&'-') => {
                // Drop the comment through its terminating newline; the newline itself becomes
                // ordinary (collapsible) whitespace.
                for inner in chars.by_ref() {
                    if inner == '\n' {
                        break;
                    }
                }
                pending_space = true;
            }
            '\'' | '"' => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push(c);
                // Copy the quoted segment verbatim ('' escapes stay as-is: the closing quote of
                // the escape simply reopens a quoted segment of the same kind).
                for inner in chars.by_ref() {
                    out.push(inner);
                    if inner == c {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => pending_space = true,
            c => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push(c);
            }
        }
    }
    while out.ends_with(';') || out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Arc<PreparedPlan> {
        Arc::new(PreparedPlan {
            plan: perm_algebra::LogicalPlan::Values {
                schema: perm_algebra::Schema::empty(),
                rows: vec![],
            },
            into: None,
            param_count: 0,
            sql: String::new(),
        })
    }

    #[test]
    fn normalization_collapses_whitespace_but_not_strings() {
        assert_eq!(normalize_sql("  SELECT   x\nFROM\tt ; "), "SELECT x FROM t");
        assert_eq!(normalize_sql("SELECT 'a  b'  FROM t"), "SELECT 'a  b' FROM t");
        assert_eq!(normalize_sql("SELECT \"weird  col\" FROM t"), "SELECT \"weird  col\" FROM t");
        assert_eq!(normalize_sql("SELECT 'it''s   ok'"), "SELECT 'it''s   ok'");
        assert_eq!(normalize_sql("SELECT x - -1 FROM t"), "SELECT x - -1 FROM t");
    }

    #[test]
    fn normalization_strips_comments_instead_of_collapsing_their_newlines() {
        // These two texts are semantically different (the second comment swallows `FROM t`);
        // collapsing whitespace without removing comments would give them the same key.
        let query = normalize_sql("SELECT x -- note\nFROM t");
        let comment_eats_from = normalize_sql("SELECT x -- note FROM t");
        assert_eq!(query, "SELECT x FROM t");
        assert_eq!(comment_eats_from, "SELECT x");
        assert_ne!(query, comment_eats_from);
        // A `--` inside a string is not a comment.
        assert_eq!(normalize_sql("SELECT '--x'  FROM t"), "SELECT '--x' FROM t");
    }

    #[test]
    fn lru_eviction_and_version_invalidation() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), 1, plan());
        cache.insert("b".into(), 1, plan());
        assert!(cache.get("a", 1).is_some());
        // "b" is now least recently used; inserting "c" evicts it.
        cache.insert("c".into(), 1, plan());
        assert!(cache.get("b", 1).is_none());
        assert!(cache.get("a", 1).is_some());
        // A version bump invalidates on lookup.
        assert!(cache.get("a", 2).is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert!(stats.hits >= 2 && stats.misses >= 2);
    }
}
