//! Per-connection sessions: settings, statement execution and prepared statements.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use perm_algebra::{Attribute, DataType, Schema, Tuple, Value};
use perm_exec::profile::ProfileSink;
use perm_exec::{render_plan_with_estimates, ExecOptions};
use perm_storage::Relation;

use crate::engine::{is_query_sql, Engine, PreparedPlan};
use crate::error::ServiceError;
use crate::stream::QueryStream;

/// Per-session settings, applied to every statement the session executes.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Maximum number of rows any single operator may produce (`None` = unlimited).
    pub row_budget: Option<usize>,
    /// Wall-clock execution timeout (`None` = unlimited).
    pub timeout: Option<Duration>,
    /// Whether plans pass through the rule-based optimizer (and hence the plan cache).
    pub optimize: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions { row_budget: None, timeout: None, optimize: true }
    }
}

impl SessionOptions {
    fn exec_options(&self) -> ExecOptions {
        let mut options = ExecOptions::default();
        if let Some(budget) = self.row_budget {
            options = options.with_row_budget(budget);
        }
        if let Some(timeout) = self.timeout {
            options = options.with_timeout(timeout);
        }
        options
    }
}

/// One client's connection state: settings and named prepared statements over a shared
/// [`Engine`]. Sessions are cheap to create (one `Arc` clone plus an empty map) and are *not*
/// shared between threads — each connection owns its own.
#[derive(Debug)]
pub struct Session {
    engine: Arc<Engine>,
    options: SessionOptions,
    prepared: HashMap<String, Arc<PreparedPlan>>,
}

impl Session {
    /// Open a session over `engine` with default settings.
    pub fn new(engine: Arc<Engine>) -> Session {
        Session { engine, options: SessionOptions::default(), prepared: HashMap::new() }
    }

    /// The engine this session runs against.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The current session settings.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Replace the session settings.
    pub fn set_options(&mut self, options: SessionOptions) {
        self.options = options;
    }

    /// Limit the number of rows any single operator may produce (`None` = unlimited).
    pub fn set_row_budget(&mut self, budget: Option<usize>) {
        self.options.row_budget = budget;
    }

    /// Limit wall-clock execution time (`None` = unlimited).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.options.timeout = timeout;
    }

    /// Execute a single SQL statement and stream the result: the output schema is available
    /// immediately, rows arrive as [`perm_algebra::DataChunk`]s on demand, and dropping the
    /// stream cancels the execution at its next chunk boundary.
    ///
    /// Queries go through the shared plan cache. Statements whose results are side effects
    /// rather than streams — DDL, DML and `SELECT ... INTO` (which must complete its catalog
    /// write atomically) — execute eagerly and come back as an already-materialized stream.
    pub fn execute_streaming(&self, sql: &str) -> Result<QueryStream, ServiceError> {
        if let Some(inner) = strip_explain_analyze(sql) {
            return self.explain_analyze(inner);
        }
        if let Some(inner) = strip_explain(sql) {
            return self.explain(inner);
        }
        if is_query_sql(sql) {
            let prepared = self.engine.plan_query(sql, self.options.optimize)?;
            if prepared.param_count > 0 {
                return Err(ServiceError::unsupported(
                    "the query references $n parameters; use prepare/execute_prepared to bind \
                     values",
                ));
            }
            if prepared.into.is_some() {
                let result = self.engine.execute_prepared_plan(
                    &prepared,
                    self.options.exec_options(),
                    Vec::new(),
                )?;
                return Ok(QueryStream::from_relation(result));
            }
            return self.engine.run_plan_streaming(
                prepared,
                self.options.exec_options(),
                Vec::new(),
            );
        }
        let statement = self.engine.analyzer().analyze_sql(sql)?;
        let result = self.engine.execute_statement(
            statement,
            self.options.exec_options(),
            self.options.optimize,
        )?;
        Ok(QueryStream::from_relation(result))
    }

    /// Execute `EXPLAIN ANALYZE <query>`: run the (provenance-rewritten, optimized) plan to
    /// completion with per-operator instrumentation attached, then return the annotated plan
    /// tree — each operator with its actual wall time (inclusive of children), output rows,
    /// chunks and peak materialized bytes — as a one-column result.
    ///
    /// The plan shown is the plan that *ran*: for `SELECT PROVENANCE` queries that is the
    /// join stack the provenance rewrite produced, not the query the user typed. The query
    /// executes fully (it is counted in the metrics registry and the recent-query ring like
    /// any other statement); only its result rows are discarded in favor of the profile.
    fn explain_analyze(&self, sql: &str) -> Result<QueryStream, ServiceError> {
        if !is_query_sql(sql) {
            return Err(ServiceError::unsupported(
                "EXPLAIN ANALYZE supports queries (SELECT ...) only",
            ));
        }
        let prepared = self.engine.plan_query(sql, self.options.optimize)?;
        if prepared.param_count > 0 {
            return Err(ServiceError::unsupported(
                "EXPLAIN ANALYZE cannot bind $n parameters; run the query via \
                 prepare/execute_prepared instead",
            ));
        }
        if prepared.into.is_some() {
            return Err(ServiceError::unsupported(
                "EXPLAIN ANALYZE does not support SELECT ... INTO (it would write the target \
                 table)",
            ));
        }
        let mut sink = ProfileSink::new(&prepared.plan);
        sink.annotate_estimates(&prepared.plan, &self.engine.table_stats_view());
        let sink = Arc::new(sink);
        let options = self.options.exec_options().with_profile(sink.clone());
        let result =
            self.engine.run_plan_streaming(prepared, options, Vec::new())?.collect_relation()?;
        let profile = sink.snapshot();
        let mut lines: Vec<String> = profile.render().lines().map(str::to_string).collect();
        lines.push(format!("Total rows: {}", result.num_rows()));
        let schema = Schema::new(vec![Attribute::new("QUERY PLAN", DataType::Text)]);
        let tuples = lines.into_iter().map(|l| Tuple::new(vec![Value::Text(l.into())])).collect();
        let rendered = Relation::new(schema, tuples)
            .map_err(|e| ServiceError::Internal(format!("failed to render profile: {e}")))?;
        Ok(QueryStream::from_relation(rendered))
    }

    /// Execute `EXPLAIN <query>`: plan the query (provenance rewrite + optimization, through
    /// the shared plan cache) **without running it**, and return the optimized plan tree with
    /// the cardinality estimator's predicted output rows per operator.
    fn explain(&self, sql: &str) -> Result<QueryStream, ServiceError> {
        if !is_query_sql(sql) {
            return Err(ServiceError::unsupported("EXPLAIN supports queries (SELECT ...) only"));
        }
        let prepared = self.engine.plan_query(sql, self.options.optimize)?;
        let stats = self.engine.table_stats_view();
        let text = render_plan_with_estimates(&prepared.plan, &stats);
        let schema = Schema::new(vec![Attribute::new("QUERY PLAN", DataType::Text)]);
        let tuples = text.lines().map(|l| Tuple::new(vec![Value::Text(l.into())])).collect();
        let rendered = Relation::new(schema, tuples)
            .map_err(|e| ServiceError::Internal(format!("failed to render plan: {e}")))?;
        Ok(QueryStream::from_relation(rendered))
    }

    /// Execute a single SQL statement (DDL, DML or query). Queries go through the shared plan
    /// cache; DDL statements return an empty relation.
    ///
    /// Query results come back as chunk-backed [`Relation`]s straight from the vectorized
    /// executor: rows stay columnar through the session and the wire renderer, and are only
    /// boxed into tuples if a caller asks for [`Relation::tuples`].
    #[doc = "Convenience wrapper that drains [`Session::execute_streaming`] into a \
             materialized `Relation`; prefer `execute_streaming` for large results."]
    pub fn execute(&self, sql: &str) -> Result<Relation, ServiceError> {
        self.execute_streaming(sql)?.collect_relation()
    }

    /// Execute a `;`-separated script, returning one result per statement.
    #[doc = "Convenience wrapper that materializes every statement's result; prefer \
             [`Session::execute_streaming`] per statement for large results."]
    pub fn execute_script(&self, sql: &str) -> Result<Vec<Relation>, ServiceError> {
        let statements = perm_sql::parse_statements(sql)?;
        let analyzer = self.engine.analyzer();
        let mut results = Vec::with_capacity(statements.len());
        for stmt in &statements {
            let analyzed = analyzer.analyze_statement(stmt)?;
            results.push(self.engine.execute_statement(
                analyzed,
                self.options.exec_options(),
                self.options.optimize,
            )?);
        }
        Ok(results)
    }

    /// Prepare a query under `name`: parse, analyze, provenance-rewrite and optimize **once**.
    /// Returns the number of `$n` parameter slots the statement expects. Re-preparing an
    /// existing name replaces it.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<usize, ServiceError> {
        if !is_query_sql(sql) {
            return Err(ServiceError::unsupported("only queries (SELECT ...) can be prepared"));
        }
        // Prepared statements skip the shared cache: parameterized texts are rarely re-planned
        // verbatim by other sessions, and the session map already caches the plan.
        let prepared = Arc::new(self.engine.plan_query_uncached(sql, self.options.optimize)?);
        let param_count = prepared.param_count;
        self.prepared.insert(name.to_string(), prepared);
        Ok(param_count)
    }

    /// Execute a prepared statement with `params` bound to its `$1..$n` slots, streaming the
    /// result (see [`Session::execute_streaming`] for stream semantics).
    pub fn execute_prepared_streaming(
        &self,
        name: &str,
        params: Vec<Value>,
    ) -> Result<QueryStream, ServiceError> {
        let prepared = self
            .prepared
            .get(name)
            .ok_or_else(|| ServiceError::UnknownPrepared(name.to_string()))?;
        if params.len() != prepared.param_count {
            return Err(ServiceError::ParameterCount {
                name: name.to_string(),
                expected: prepared.param_count,
                got: params.len(),
            });
        }
        if prepared.into.is_some() {
            let result =
                self.engine.execute_prepared_plan(prepared, self.options.exec_options(), params)?;
            return Ok(QueryStream::from_relation(result));
        }
        self.engine.run_plan_streaming(prepared.clone(), self.options.exec_options(), params)
    }

    /// Execute a prepared statement with `params` bound to its `$1..$n` slots (exact arity
    /// required; pass `Value::Null` explicitly for SQL NULL).
    #[doc = "Convenience wrapper that drains [`Session::execute_prepared_streaming`] into a \
             materialized `Relation`; prefer the streaming variant for large results."]
    pub fn execute_prepared(
        &self,
        name: &str,
        params: Vec<Value>,
    ) -> Result<Relation, ServiceError> {
        self.execute_prepared_streaming(name, params)?.collect_relation()
    }

    /// Drop a prepared statement; returns whether it existed.
    pub fn deallocate(&mut self, name: &str) -> bool {
        self.prepared.remove(name).is_some()
    }

    /// The prepared statement registered under `name`, if any.
    pub fn prepared(&self, name: &str) -> Option<&Arc<PreparedPlan>> {
        self.prepared.get(name)
    }

    /// Names of all prepared statements, sorted.
    pub fn prepared_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.prepared.keys().cloned().collect();
        names.sort();
        names
    }
}

/// If `sql` is `EXPLAIN ANALYZE <inner>` (case-insensitive, any whitespace), return `inner`.
///
/// Detection is purely lexical on the two leading words: `EXPLAIN` is not a statement keyword
/// anywhere else in the grammar, so this cannot shadow a valid query.
fn strip_explain_analyze(sql: &str) -> Option<&str> {
    let rest = sql.trim_start();
    let rest = strip_keyword(rest, "EXPLAIN")?;
    let rest = strip_keyword(rest, "ANALYZE")?;
    Some(rest)
}

/// If `sql` is `EXPLAIN <inner>` (without `ANALYZE` — callers check that form first), return
/// `inner`. Same purely lexical detection as [`strip_explain_analyze`].
fn strip_explain(sql: &str) -> Option<&str> {
    strip_keyword(sql.trim_start(), "EXPLAIN")
}

/// Strip a leading case-insensitive `keyword` followed by at least one whitespace character.
fn strip_keyword<'a>(sql: &'a str, keyword: &str) -> Option<&'a str> {
    let head = sql.get(..keyword.len())?;
    if !head.eq_ignore_ascii_case(keyword) {
        return None;
    }
    let rest = &sql[keyword.len()..];
    let trimmed = rest.trim_start();
    // Require a word boundary: `EXPLAINX` must not match.
    if trimmed.len() == rest.len() {
        return None;
    }
    Some(trimmed)
}
