//! The thread-safe engine: one shared catalog, a provenance-aware SQL pipeline and a shared
//! plan cache, serving any number of concurrent [`Session`]s.

use std::sync::Arc;

use perm_algebra::{LogicalPlan, Schema, Value};
use perm_exec::{CancelToken, ExecOptions, Executor, Optimizer, TableStatsView, WorkerPool};
use perm_sql::{AnalyzedStatement, Analyzer, ProvenanceRewrite};
use perm_storage::{Catalog, Relation};

use crate::cache::{normalize_sql, CacheStats, PlanCache};
use crate::error::ServiceError;
use crate::governor::{Governor, GovernorLimits};
use crate::metrics::{outcome_of, Metrics, StatsSnapshot};
use crate::session::Session;
use crate::stream::QueryStream;

/// A fully planned query: analyzed, provenance-rewritten and optimized exactly once, ready to
/// be executed any number of times (with fresh parameter bindings each time).
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    /// The executable plan (may contain `$n` parameter slots).
    pub plan: LogicalPlan,
    /// Optional `SELECT ... INTO` target table.
    pub into: Option<String>,
    /// Number of parameter values an execution must bind (`$1..$param_count`).
    pub param_count: usize,
    /// The source SQL text (for query logging and the slow-query record; empty when the plan
    /// was built from an already-analyzed statement rather than SQL text).
    pub sql: String,
}

/// The shared, thread-safe query engine.
///
/// An `Engine` owns the pieces every connection shares — the [`Catalog`], the provenance
/// rewriter hook, the optimizer, the [`PlanCache`] and the [`WorkerPool`] that gives every
/// query intra-query (morsel-driven) parallelism — while per-connection state (settings,
/// prepared statements) lives in [`Session`]s. All methods take `&self`; the engine is meant to
/// be wrapped in an [`Arc`] and handed to one session per client connection.
pub struct Engine {
    catalog: Catalog,
    rewriter: Option<Arc<dyn ProvenanceRewrite>>,
    optimizer: Optimizer,
    cache: PlanCache,
    /// Parallelism degree of the worker pool (resolved at construction; see `with_workers`).
    workers: usize,
    /// The shared pool, spawned lazily on first use so builder-style reconfiguration
    /// (`Engine::new().with_workers(n)`) never spawns and immediately discards threads.
    pool: std::sync::OnceLock<Arc<WorkerPool>>,
    /// Bytes currently buffered in streaming result channels across all sessions (a gauge:
    /// stream producers add on send, consumers subtract on receive).
    stream_buffered: Arc<std::sync::atomic::AtomicUsize>,
    /// Memory governor: every statement is admitted here and charged for its
    /// materializations; see [`Governor`].
    governor: Arc<Governor>,
    /// The engine-wide metrics registry: query outcomes, latency, streamed volume, the recent
    /// query ring buffer; see [`crate::metrics`].
    metrics: Arc<Metrics>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("tables", &self.catalog.table_names())
            .field("has_rewriter", &self.rewriter.is_some())
            .field("cache", &self.cache)
            .field("workers", &self.workers)
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Default number of cached plans.
const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

impl Engine {
    /// Create an engine over an empty catalog.
    pub fn new() -> Engine {
        Engine::with_catalog(Catalog::new())
    }

    /// Create an engine over an existing catalog (shares the underlying data).
    ///
    /// The worker pool defaults to one worker per logical CPU; the `PERM_WORKERS` environment
    /// variable overrides that default (used by CI to run the whole test suite single-threaded
    /// and at a fixed parallelism degree), and [`Engine::with_workers`] overrides both.
    pub fn with_catalog(catalog: Catalog) -> Engine {
        let workers = std::env::var("PERM_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(WorkerPool::default_workers);
        Engine {
            catalog,
            rewriter: None,
            optimizer: Optimizer::new(),
            cache: PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
            workers: workers.max(1),
            pool: std::sync::OnceLock::new(),
            stream_buffered: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            governor: Arc::new(Governor::new(GovernorLimits::default())),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Attach a provenance rewriter (enables `SELECT PROVENANCE`; provided by `perm-core`).
    pub fn with_rewriter(mut self, rewriter: Arc<dyn ProvenanceRewrite>) -> Engine {
        self.rewriter = Some(rewriter);
        self
    }

    /// Replace the plan cache with one of the given capacity (0 disables caching).
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Engine {
        self.cache = PlanCache::new(capacity);
        self
    }

    /// Size the worker pool for intra-query parallelism: every query splits its work into
    /// morsels executed by up to `workers` threads (clamped to at least 1, where execution is
    /// fully single-threaded). The default is the number of logical CPUs.
    pub fn with_workers(mut self, workers: usize) -> Engine {
        self.workers = workers.max(1);
        self.pool = std::sync::OnceLock::new();
        self
    }

    /// Enforce memory limits: every statement is admitted against the engine-wide cap and
    /// charged against the per-query cap (`permd --mem-limit` / `--session-mem-limit`).
    pub fn with_memory_limits(mut self, limits: GovernorLimits) -> Engine {
        self.governor = Arc::new(Governor::new(limits));
        self
    }

    /// The engine's memory governor (admission gauges, shutdown draining).
    pub fn governor(&self) -> &Arc<Governor> {
        &self.governor
    }

    /// The engine-wide metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// One consistent snapshot of every stat the engine exposes: plan cache, governor, stream
    /// gauge and the metrics registry, collected in a single call so the wire `stats` text and
    /// the Prometheus exposition describe the same instant.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            cache: self.cache.stats(),
            governor: self.governor.stats(),
            stream_buffered: self.stream_buffered_bytes(),
            metrics: self.metrics.snapshot(),
            tables: self.catalog.table_infos(),
        }
    }

    /// The parallelism degree of the shared worker pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared worker pool queries execute on (spawned on first use).
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        self.pool.get_or_init(|| Arc::new(WorkerPool::new(self.workers)))
    }

    /// The plan cache's capacity (number of plans it can hold).
    pub fn plan_cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// An analyzer bound to this engine's catalog and provenance rewriter.
    pub fn analyzer(&self) -> Analyzer {
        let analyzer = Analyzer::new(self.catalog.clone());
        match &self.rewriter {
            Some(r) => analyzer.with_rewriter(r.clone()),
            None => analyzer,
        }
    }

    /// Plan-cache counters (hits / misses / invalidations / entries).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every cached plan (counters survive).
    pub fn clear_plan_cache(&self) {
        self.cache.clear();
    }

    /// Open a new session over this engine.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(self.clone())
    }

    /// A statistics view over every stored table, consistent with the current catalog state
    /// (per-table stats are cached on the relations, so repeat calls are cheap Arc clones).
    pub fn table_stats_view(&self) -> TableStatsView {
        TableStatsView::from_snapshot(&self.catalog.snapshot())
    }

    /// Run a plan through the optimizer with current table statistics, folding the
    /// cost-based pass counters into the metrics registry.
    pub fn optimize_plan(&self, plan: &LogicalPlan) -> Result<LogicalPlan, ServiceError> {
        let stats = self.table_stats_view();
        let (optimized, report) = self.optimizer.optimize_with_stats(plan, &stats)?;
        self.metrics.record_optimizer(&report);
        Ok(optimized)
    }

    /// Plan a query: analyze (view unfolding + provenance rewriting) and optimize, consulting
    /// the shared plan cache first. `optimize = false` bypasses both the optimizer and the
    /// cache (the cache only ever stores optimized plans).
    ///
    /// Cache entries are keyed by [`normalize_sql`]d text and tagged with the catalog version
    /// observed at planning time; any DDL/DML commit bumps the version and invalidates them.
    pub fn plan_query(&self, sql: &str, optimize: bool) -> Result<Arc<PreparedPlan>, ServiceError> {
        if !optimize {
            return Ok(Arc::new(self.plan_query_uncached(sql, false)?));
        }
        let key = normalize_sql(sql);
        // The version is read *before* planning: if a writer commits while we plan, the entry is
        // tagged with the older version and treated as stale on its next lookup — a wasted
        // cache slot, never a wrong answer.
        let version = self.catalog.version();
        if let Some(hit) = self.cache.get(&key, version) {
            return Ok(hit);
        }
        let planned = Arc::new(self.plan_query_uncached(sql, true)?);
        self.cache.insert(key, version, planned.clone());
        Ok(planned)
    }

    pub(crate) fn plan_query_uncached(
        &self,
        sql: &str,
        optimize: bool,
    ) -> Result<PreparedPlan, ServiceError> {
        match self.analyzer().analyze_sql(sql)? {
            AnalyzedStatement::Query { plan, into } => {
                // Post-binding type verification. This runs unconditionally (not only when
                // `perm_algebra::verification_enabled()`): it is the user-facing PREPARE-time
                // check that turns an ill-typed query into a clean `-` response naming the
                // operator path, and it sits on the compile path only — cache hits and
                // per-row execution never pay for it.
                if let Err(err) = plan.verify() {
                    return Err(ServiceError::Sql(perm_sql::SqlError::Algebra(err.into())));
                }
                let plan = if optimize { self.optimize_plan(&plan)? } else { plan };
                let param_count = plan.max_parameter().map_or(0, |max| max + 1);
                Ok(PreparedPlan { plan, into, param_count, sql: sql.to_string() })
            }
            _ => Err(ServiceError::unsupported(
                "only queries (SELECT ...) can be planned; execute DDL/DML statements directly",
            )),
        }
    }

    /// Bytes currently buffered in streaming result channels across all sessions.
    pub fn stream_buffered_bytes(&self) -> usize {
        self.stream_buffered.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Execute an already-planned query under `options`, binding `params` to its `$n` slots.
    ///
    /// The executor captures an atomic catalog snapshot, so the execution observes one
    /// consistent state of every table regardless of concurrent commits. A `SELECT ... INTO`
    /// target is written back to the shared catalog after execution.
    ///
    /// This is the materializing convenience wrapper over
    /// [`run_plan_streaming`](Engine::run_plan_streaming): it collects the stream before it
    /// starts, which runs the parallel executor inline.
    pub fn execute_prepared_plan(
        &self,
        prepared: &PreparedPlan,
        options: ExecOptions,
        params: Vec<Value>,
    ) -> Result<Relation, ServiceError> {
        let stream = self.run_plan_streaming(Arc::new(prepared.clone()), options, params)?;
        let result = stream.collect_relation()?;
        if let Some(target) = &prepared.into {
            self.catalog.overwrite(target, result.clone())?;
        }
        Ok(result)
    }

    /// Execute an already-planned query as a [`QueryStream`] of result chunks.
    ///
    /// The stream is lazy: no execution work happens until the first chunk is pulled (or the
    /// stream is collected). Single-worker engines and sessions with a row budget stream
    /// through the executor's pull-based chunk pipeline, which holds
    /// O(window × chunk size) memory end to end regardless of result size; multi-worker
    /// engines execute in parallel inside the stream's producer thread and feed the result out
    /// chunk-wise. **`SELECT ... INTO` is not handled here** — callers that support it
    /// materialize first (see [`Session::execute_streaming`]).
    pub fn run_plan_streaming(
        &self,
        prepared: Arc<PreparedPlan>,
        mut options: ExecOptions,
        params: Vec<Value>,
    ) -> Result<QueryStream, ServiceError> {
        // The ticket opens *before* admission so a statement the governor rejects at the door
        // (admission timeout under the engine-wide limit) is still counted — as shed.
        let mut ticket = self.metrics.start_query(&prepared.sql, options.profile.clone());
        let token = match self.govern(&mut options) {
            Ok(token) => token,
            Err(e) => {
                ticket.finish(outcome_of(&e), 0);
                return Err(e);
            }
        };
        let pull = self.workers <= 1 || options.row_budget.is_some();
        let executor = Executor::with_options(self.catalog.clone(), options).with_params(params);
        Ok(QueryStream::pending(
            executor,
            prepared,
            self.worker_pool().clone(),
            pull,
            self.stream_buffered.clone(),
            token,
            ticket,
        ))
    }

    /// Execute a bound plan as-is (no optimization) under `options` with `params` bound.
    ///
    /// Execution is morsel-driven parallel on the engine's shared [`WorkerPool`]; queries with
    /// a row budget run on the single-threaded vectorized pipeline, whose lazy pull order
    /// defines the budget semantics (see `perm_exec::parallel`).
    pub fn run_plan(
        &self,
        plan: &LogicalPlan,
        mut options: ExecOptions,
        params: Vec<Value>,
    ) -> Result<Relation, ServiceError> {
        self.govern(&mut options)?;
        let executor = Executor::with_options(self.catalog.clone(), options).with_params(params);
        Ok(executor.execute_parallel(plan, self.worker_pool())?)
    }

    /// Register one statement with the governor: ensure `options` carries a cancellation
    /// token (creating one when the caller did not supply its own), admit the statement
    /// against the engine-wide memory limit and thread its [`crate::governor::QueryGrant`]
    /// into the executor as the memory-accounting hook. The grant rides inside the executor's
    /// options and is released when the executor is dropped (query finished or unwound).
    ///
    /// Returns the token so callers that stay in control of the statement (streaming results,
    /// the wire server) can cancel it mid-flight.
    fn govern(&self, options: &mut ExecOptions) -> Result<Arc<CancelToken>, ServiceError> {
        let token = match &options.cancel {
            Some(token) => token.clone(),
            None => {
                let token = Arc::new(CancelToken::new());
                options.cancel = Some(token.clone());
                token
            }
        };
        if options.memory.is_none() {
            let grant = self.governor.admit(token.clone())?;
            options.memory = Some(Arc::new(grant));
        }
        Ok(token)
    }

    /// Execute an analyzed statement (DDL, DML or query) under `options`.
    pub fn execute_statement(
        &self,
        statement: AnalyzedStatement,
        options: ExecOptions,
        optimize: bool,
    ) -> Result<Relation, ServiceError> {
        let empty = || Relation::empty(Schema::empty());
        match statement {
            AnalyzedStatement::CreateTable { name, schema } => {
                self.catalog.create_table(&name, schema)?;
                Ok(empty())
            }
            AnalyzedStatement::DropTable { name, if_exists } => {
                self.catalog.drop_table(&name, if_exists)?;
                Ok(empty())
            }
            AnalyzedStatement::DropView { name, if_exists } => {
                self.catalog.drop_view(&name, if_exists)?;
                Ok(empty())
            }
            AnalyzedStatement::CreateView { name, body_sql } => {
                self.catalog.create_view(&name, &body_sql)?;
                Ok(empty())
            }
            AnalyzedStatement::Insert { table, rows } => {
                self.catalog.insert(&table, rows)?;
                Ok(empty())
            }
            AnalyzedStatement::InsertFromQuery { table, plan } => {
                let plan = if optimize { self.optimize_plan(&plan)? } else { plan };
                let result = self.run_plan(&plan, options, Vec::new())?;
                self.catalog.insert(&table, result.into_tuples())?;
                Ok(empty())
            }
            AnalyzedStatement::Query { plan, into } => {
                let plan = if optimize { self.optimize_plan(&plan)? } else { plan };
                let prepared = PreparedPlan { plan, into, param_count: 0, sql: String::new() };
                self.execute_prepared_plan(&prepared, options, Vec::new())
            }
        }
    }
}

/// Is this statement query-shaped (`SELECT ...` or a parenthesised query)? Decided from the
/// first *token* — mirroring the parser's statement dispatch — so leading whitespace and `--`
/// comments don't route a query down the non-query path (which would bypass the plan cache and
/// the parameter guard). A text that fails to tokenize is classified as a non-query; the
/// analyzer then reports the lexical error itself.
pub(crate) fn is_query_sql(sql: &str) -> bool {
    use perm_sql::token::{tokenize, TokenKind};
    match tokenize(sql) {
        Ok(tokens) => match tokens.first().map(|t| &t.kind) {
            Some(TokenKind::LeftParen) => true,
            Some(TokenKind::Ident(word)) => word.eq_ignore_ascii_case("select"),
            _ => false,
        },
        Err(_) => false,
    }
}
