//! The `permd` wire protocol (version 2): length-prefixed frames over TCP.
//!
//! Every message — request or response — is one frame: a 4-byte big-endian payload length
//! followed by that many payload bytes. Requests are single-line UTF-8 commands; a connection
//! must open with the `hello <version>` handshake before anything else:
//!
//! | request                          | effect                                                |
//! |----------------------------------|-------------------------------------------------------|
//! | `hello <version>`                | negotiate the protocol version (must be first)        |
//! | `query <sql>`                    | execute one statement (DDL, DML or query)             |
//! | `prepare <name> <sql>`           | plan a query once under `name`                        |
//! | `exec <name> (v1, v2, ...)`      | execute a prepared statement with literal bindings    |
//! | `deallocate <name>`              | drop a prepared statement                             |
//! | `set budget <n\|none>`           | session row budget                                    |
//! | `set timeout_ms <n\|none>`       | session wall-clock timeout                            |
//! | `stats`                          | plan-cache counters and stream memory gauge           |
//! | `ack`                            | acknowledge one `R` frame (backpressure; see below)   |
//! | `ping`                           | liveness check                                        |
//! | `shutdown`                       | stop the server gracefully                            |
//!
//! Responses are *tagged binary* payloads (see [`crate::codec`]): `+` text / `-` error for
//! simple commands, and for query results a streamed sequence `S` (schema), `R`* (chunks),
//! then `D` (done) or `-` (error — which **invalidates** every `R` frame before it). The
//! server sends at most [`crate::server::BACKPRESSURE_WINDOW`] unacknowledged `R` frames; the
//! client returns one `ack` request per `R` frame to open the window. Full layout:
//! `docs/PROTOCOL.md`.

use std::io::{self, Read, Write};

use perm_algebra::Value;
use perm_sql::token::{tokenize, TokenKind};
use perm_storage::Relation;

use crate::error::ServiceError;

/// Upper bound on a single frame's payload (16 MiB): protects the server from bogus lengths.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Write one length-prefixed text frame.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> io::Result<()> {
    write_bytes_frame(writer, payload.as_bytes())
}

/// Write one length-prefixed binary frame (protocol-v2 responses).
pub fn write_bytes_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Read one length-prefixed binary frame. Returns `None` on a clean EOF at a frame boundary.
pub fn read_bytes_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Read one length-prefixed frame. Returns `None` on a clean EOF at a frame boundary.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not valid UTF-8"))
}

/// Read the remainder of a frame whose first length byte has already been consumed (used by
/// the server, which polls for the first byte with a short timeout and must then finish the
/// frame without treating a mid-frame stall as "no request").
pub fn read_frame_rest(reader: &mut impl Read, first_len_byte: u8) -> io::Result<String> {
    let mut rest = [0u8; 3];
    reader.read_exact(&mut rest)?;
    let len = u32::from_be_bytes([first_len_byte, rest[0], rest[1], rest[2]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not valid UTF-8"))
}

/// Render a relation as the wire text format: a tab-separated header line, then one
/// tab-separated line per row. Statements without a result (DDL/DML) render as `ok`.
///
/// Rendering walks the relation's columnar chunks and formats each cell straight from the
/// typed arrays, so a query result produced by the vectorized executor streams onto the wire
/// without ever materializing a row-tuple vector (or boxing a single [`perm_algebra::Value`]).
pub fn render_relation(relation: &Relation) -> String {
    if relation.schema().arity() == 0 {
        return "ok".to_string();
    }
    let mut out = relation.schema().attribute_names().join("\t");
    for chunk in relation.chunks().iter() {
        for row in 0..chunk.num_rows() {
            out.push('\n');
            for col in 0..chunk.num_columns() {
                if col > 0 {
                    out.push('\t');
                }
                chunk.column(col).format_into(row, &mut out);
            }
        }
    }
    out
}

/// Parse an `exec` parameter list: `(v1, v2, ...)` of SQL literals (numbers, `'strings'`,
/// `TRUE`/`FALSE`, `NULL`, `DATE 'YYYY-MM-DD'`, optionally `-`-negated numbers). An empty or
/// absent list parses as no parameters.
pub fn parse_param_values(text: &str) -> Result<Vec<Value>, ServiceError> {
    let trimmed = text.trim();
    if trimmed.is_empty() || trimmed == "()" {
        return Ok(Vec::new());
    }
    let tokens = tokenize(trimmed).map_err(|e| ServiceError::protocol(e.to_string()))?;
    let mut pos = 0usize;
    let expect = |pos: &mut usize, kind: &TokenKind, tokens: &[perm_sql::token::Token]| {
        if &tokens[*pos].kind == kind {
            *pos += 1;
            Ok(())
        } else {
            Err(ServiceError::protocol(format!(
                "expected {kind:?} in parameter list, found {:?}",
                tokens[*pos].kind
            )))
        }
    };
    expect(&mut pos, &TokenKind::LeftParen, &tokens)?;
    let mut values = Vec::new();
    loop {
        let (value, consumed) = parse_one_value(&tokens[pos..])?;
        values.push(value);
        pos += consumed;
        match &tokens[pos].kind {
            TokenKind::Comma => pos += 1,
            TokenKind::RightParen => {
                pos += 1;
                break;
            }
            other => {
                return Err(ServiceError::protocol(format!(
                    "expected ',' or ')' in parameter list, found {other:?}"
                )))
            }
        }
    }
    if tokens[pos].kind != TokenKind::Eof {
        return Err(ServiceError::protocol("trailing input after parameter list"));
    }
    Ok(values)
}

fn parse_one_value(tokens: &[perm_sql::token::Token]) -> Result<(Value, usize), ServiceError> {
    let number = |text: &str, negate: bool| -> Result<Value, ServiceError> {
        if text.contains('.') {
            let f: f64 = text
                .parse()
                .map_err(|_| ServiceError::protocol(format!("invalid number '{text}'")))?;
            Ok(Value::Float(if negate { -f } else { f }))
        } else {
            let i: i64 = text
                .parse()
                .map_err(|_| ServiceError::protocol(format!("invalid number '{text}'")))?;
            Ok(Value::Int(if negate { -i } else { i }))
        }
    };
    match &tokens[0].kind {
        TokenKind::Number(n) => Ok((number(n, false)?, 1)),
        TokenKind::Minus => match &tokens[1].kind {
            TokenKind::Number(n) => Ok((number(n, true)?, 2)),
            other => {
                Err(ServiceError::protocol(format!("expected number after '-', found {other:?}")))
            }
        },
        TokenKind::String(s) => Ok((Value::text(s.as_str()), 1)),
        TokenKind::Ident(word) if word.eq_ignore_ascii_case("null") => Ok((Value::Null, 1)),
        TokenKind::Ident(word) if word.eq_ignore_ascii_case("true") => Ok((Value::Bool(true), 1)),
        TokenKind::Ident(word) if word.eq_ignore_ascii_case("false") => Ok((Value::Bool(false), 1)),
        TokenKind::Ident(word) if word.eq_ignore_ascii_case("date") => match &tokens[1].kind {
            TokenKind::String(s) => {
                let value =
                    Value::date_from_str(s).map_err(|e| ServiceError::protocol(e.to_string()))?;
                Ok((value, 2))
            }
            other => Err(ServiceError::protocol(format!(
                "expected a date string after DATE, found {other:?}"
            ))),
        },
        other => Err(ServiceError::protocol(format!("unsupported parameter literal {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::{tuple, DataType, Schema};

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "query SELECT 1").unwrap();
        write_frame(&mut buf, "+ok").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("query SELECT 1"));
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("+ok"));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn relation_rendering() {
        let rel = Relation::new(
            Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Text)]),
            vec![tuple![1, "a"], perm_algebra::Tuple::new(vec![Value::Int(2), Value::Null])],
        )
        .unwrap();
        assert_eq!(render_relation(&rel), "id\tname\n1\ta\n2\tNULL");
        assert_eq!(render_relation(&Relation::empty(Schema::empty())), "ok");
    }

    #[test]
    fn parameter_lists_parse_sql_literals() {
        let values =
            parse_param_values("(1, -2.5, 'it''s', NULL, true, date '1995-01-01')").unwrap();
        assert_eq!(values[0], Value::Int(1));
        assert_eq!(values[1], Value::Float(-2.5));
        assert_eq!(values[2], Value::text("it's"));
        assert_eq!(values[3], Value::Null);
        assert_eq!(values[4], Value::Bool(true));
        assert!(matches!(values[5], Value::Date(_)));
        assert!(parse_param_values("").unwrap().is_empty());
        assert!(parse_param_values("()").unwrap().is_empty());
        assert!(parse_param_values("(1").is_err());
        assert!(parse_param_values("(foo)").is_err());
        assert!(parse_param_values("(1) extra").is_err());
    }
}
