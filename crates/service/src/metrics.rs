//! The engine-wide metrics registry: lock-light counters, gauges and fixed-bucket histograms,
//! plus the per-query ticket machinery that classifies every statement's outcome.
//!
//! Perm's value proposition (conf_icde_GlavicA09) is provenance computed *inside* the DBMS by
//! query rewrite; operating it as a live service therefore needs the same visibility a host
//! DBMS would provide — how many queries ran, how they ended (ok / error / cancelled / shed by
//! the governor), where the latency distribution sits, and how much memory the streaming layer
//! holds. This module absorbs the counters that previous PRs scattered across the plan cache,
//! the governor and the stream gauge into one registry with one consistent snapshot
//! ([`StatsSnapshot`]) rendered both as the wire `stats` text and as Prometheus exposition
//! (`metrics` request / `permd --metrics-addr`).
//!
//! Everything on the hot path is a relaxed atomic: counters and gauges are single
//! `fetch_add`s, the latency histogram is one bucket increment per *query* (never per row or
//! chunk), and the only lock is around the bounded ring buffer of recent [`QueryRecord`]s,
//! taken once per query at completion.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use perm_exec::profile::ProfileSink;
use perm_exec::{log_info, log_warn, OptimizerReport};
use perm_storage::TableInfo;

use crate::cache::CacheStats;
use crate::error::ServiceError;
use crate::governor::GovernorStats;

/// A monotonically increasing counter (one relaxed `fetch_add` per bump).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A non-negative gauge. Decrements saturate at zero, so a bookkeeping bug can skew the gauge
/// but never wrap it to 2^64.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one (saturating at zero).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Query-latency bucket upper bounds, in milliseconds. Spans sub-millisecond plan-cache hits
/// to the paper's multi-second provenance rewrites; everything above the last bound lands in
/// the implicit `+Inf` bucket.
pub const LATENCY_BUCKETS_MS: [f64; 15] = [
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
    10000.0,
];

/// A fixed-bucket histogram: one relaxed increment per observation, quantiles estimated from
/// bucket upper bounds (the standard Prometheus-style estimator, biased at most one bucket
/// width upward).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations in microseconds (integer so it can be a relaxed atomic).
    sum_micros: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (upper bucket bounds in milliseconds, ascending) plus an
    /// implicit `+Inf` bucket.
    pub fn new(bounds: &'static [f64]) -> Histogram {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Record one observation of `ms` milliseconds.
    pub fn observe_ms(&self, ms: f64) {
        let idx = self.bounds.iter().position(|b| ms <= *b).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add((ms * 1000.0).max(0.0) as u64, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Immutable copy of the bucket counts and totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds,
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ms: self.sum_micros.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds in milliseconds (the last bucket in `buckets` is `+Inf`).
    pub bounds: &'static [f64],
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations in milliseconds.
    pub sum_ms: f64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`) in milliseconds: the upper bound of the bucket
    /// containing the `ceil(q * count)`-th observation. Returns 0 with no observations;
    /// observations beyond the last bound report that bound.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return self.bounds.get(i).copied().unwrap_or(*self.bounds.last().unwrap_or(&0.0));
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// How a query ended; the label of the `perm_queries_total` counter family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Completed and delivered its full result.
    Ok,
    /// Failed with an error (planning, execution, timeout, row budget).
    Error,
    /// Cancelled by the client (wire `cancel`, dropped stream, shutdown).
    Cancelled,
    /// Shed by the governor under memory pressure (or rejected at admission).
    Shed,
}

impl QueryOutcome {
    /// The Prometheus label / log value for this outcome.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryOutcome::Ok => "ok",
            QueryOutcome::Error => "error",
            QueryOutcome::Cancelled => "cancelled",
            QueryOutcome::Shed => "shed",
        }
    }

    fn index(self) -> usize {
        match self {
            QueryOutcome::Ok => 0,
            QueryOutcome::Error => 1,
            QueryOutcome::Cancelled => 2,
            QueryOutcome::Shed => 3,
        }
    }
}

/// Classify a service error as a query outcome: executor cancellation maps to `cancelled`,
/// governor shedding / admission rejection to `shed`, everything else to `error`.
pub fn outcome_of(error: &ServiceError) -> QueryOutcome {
    match error {
        ServiceError::Exec(perm_exec::ExecError::Cancelled) => QueryOutcome::Cancelled,
        ServiceError::Exec(perm_exec::ExecError::ResourceExhausted(_)) => QueryOutcome::Shed,
        _ => QueryOutcome::Error,
    }
}

/// One completed query in the in-engine ring buffer (the `profile` wire command and the
/// slow-query log read from here).
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Engine-wide query id (also the `qid` of the query's log lines).
    pub qid: u64,
    /// The (truncated) SQL text.
    pub sql: String,
    /// How the query ended.
    pub outcome: QueryOutcome,
    /// Wall-clock latency in milliseconds.
    pub latency_ms: f64,
    /// Rows the query delivered.
    pub rows: u64,
    /// Rendered operator profile, when the query ran under `EXPLAIN ANALYZE`.
    pub profile: Option<String>,
}

/// How many recent queries the ring buffer keeps.
pub const RECENT_QUERIES: usize = 64;

/// Longest SQL text stored in records and log lines.
const SQL_SNIPPET_LEN: usize = 200;

/// Truncate SQL for records and log lines (whole characters, with an ellipsis marker).
pub(crate) fn truncate_sql(sql: &str) -> String {
    let sql = sql.trim();
    if sql.len() <= SQL_SNIPPET_LEN {
        return sql.to_string();
    }
    let mut end = SQL_SNIPPET_LEN;
    while !sql.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}...", &sql[..end])
}

/// The engine-wide metrics registry; see the module docs.
#[derive(Debug)]
pub struct Metrics {
    /// Connections accepted since startup.
    pub connections_opened: Counter,
    /// Connections currently open.
    pub connections_active: Gauge,
    /// Queries currently executing (admitted tickets not yet finished).
    pub queries_active: Gauge,
    /// Completed queries by outcome (indexed by [`QueryOutcome::index`]).
    queries: [Counter; 4],
    /// Result rows sent to clients over the wire.
    pub rows_streamed: Counter,
    /// Result bytes (columnar chunk payload) sent to clients over the wire.
    pub bytes_streamed: Counter,
    /// Query wall-clock latency.
    pub query_latency: Histogram,
    /// Join regions reordered by the cost-based optimizer.
    pub plans_reordered: Counter,
    /// Hash-join build sides swapped to the estimated-smaller input.
    pub build_sides_swapped: Counter,
    /// Plan nodes the cardinality estimator was asked about.
    pub estimator_invocations: Counter,
    next_qid: AtomicU64,
    /// Slow-query threshold in milliseconds; 0 disables the slow-query log.
    slow_query_ms: AtomicU64,
    recent: Mutex<VecDeque<QueryRecord>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics {
            connections_opened: Counter::default(),
            connections_active: Gauge::default(),
            queries_active: Gauge::default(),
            queries: Default::default(),
            rows_streamed: Counter::default(),
            bytes_streamed: Counter::default(),
            query_latency: Histogram::new(&LATENCY_BUCKETS_MS),
            plans_reordered: Counter::default(),
            build_sides_swapped: Counter::default(),
            estimator_invocations: Counter::default(),
            next_qid: AtomicU64::new(0),
            slow_query_ms: AtomicU64::new(0),
            recent: Mutex::new(VecDeque::with_capacity(RECENT_QUERIES)),
        }
    }

    /// Set the slow-query threshold (`permd --slow-query-ms`); 0 disables the log.
    pub fn set_slow_query_ms(&self, ms: u64) {
        self.slow_query_ms.store(ms, Ordering::Relaxed);
    }

    /// Completed queries with the given outcome.
    pub fn queries_with_outcome(&self, outcome: QueryOutcome) -> u64 {
        self.queries[outcome.index()].get()
    }

    /// Fold one optimization run's cost-based counters into the registry.
    pub fn record_optimizer(&self, report: &OptimizerReport) {
        self.plans_reordered.add(report.joins_reordered);
        self.build_sides_swapped.add(report.build_sides_swapped);
        self.estimator_invocations.add(report.estimator_invocations);
    }

    /// Open a ticket for one query: assigns the engine-wide query id, bumps the active gauge
    /// and logs `query_start`. The ticket must be finished exactly once; dropping an
    /// unfinished ticket records the query as cancelled.
    pub fn start_query(self: &Arc<Self>, sql: &str, sink: Option<Arc<ProfileSink>>) -> QueryTicket {
        let qid = self.next_qid.fetch_add(1, Ordering::Relaxed) + 1;
        self.queries_active.inc();
        let sql = truncate_sql(sql);
        log_info!("query_start", qid = qid, sql = sql);
        QueryTicket {
            metrics: self.clone(),
            qid,
            sql,
            started: Instant::now(),
            sink,
            finished: false,
        }
    }

    /// The most recent completed queries, newest first.
    pub fn recent_queries(&self) -> Vec<QueryRecord> {
        self.recent.lock().iter().cloned().collect()
    }

    fn record(&self, record: QueryRecord) {
        let mut recent = self.recent.lock();
        if recent.len() == RECENT_QUERIES {
            recent.pop_back();
        }
        recent.push_front(record);
    }

    /// Point-in-time copy of every registry value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections_opened: self.connections_opened.get(),
            connections_active: self.connections_active.get(),
            queries_active: self.queries_active.get(),
            queries_ok: self.queries_with_outcome(QueryOutcome::Ok),
            queries_error: self.queries_with_outcome(QueryOutcome::Error),
            queries_cancelled: self.queries_with_outcome(QueryOutcome::Cancelled),
            queries_shed: self.queries_with_outcome(QueryOutcome::Shed),
            rows_streamed: self.rows_streamed.get(),
            bytes_streamed: self.bytes_streamed.get(),
            latency: self.query_latency.snapshot(),
            plans_reordered: self.plans_reordered.get(),
            build_sides_swapped: self.build_sides_swapped.get(),
            estimator_invocations: self.estimator_invocations.get(),
        }
    }

    /// Render the recent-query ring (newest first) for the wire `profile` command: one header
    /// line per query, followed by its annotated operator tree when it ran under
    /// `EXPLAIN ANALYZE`.
    pub fn render_profile(&self) -> String {
        let recent = self.recent_queries();
        if recent.is_empty() {
            return "no completed queries".to_string();
        }
        let mut out = String::new();
        for record in &recent {
            let _ = writeln!(
                out,
                "qid={} outcome={} latency_ms={:.3} rows={} sql={}",
                record.qid,
                record.outcome.as_str(),
                record.latency_ms,
                record.rows,
                record.sql,
            );
            if let Some(profile) = &record.profile {
                for line in profile.lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
        out.pop();
        out
    }
}

/// One admitted query's handle on the registry: finishing it (or dropping it) settles the
/// active gauge, the outcome counter, the latency histogram, the ring buffer and the
/// slow-query log in one place.
#[derive(Debug)]
pub struct QueryTicket {
    metrics: Arc<Metrics>,
    qid: u64,
    sql: String,
    started: Instant,
    sink: Option<Arc<ProfileSink>>,
    finished: bool,
}

impl QueryTicket {
    /// The engine-wide query id (tags this query's log lines as `qid=<id>`).
    pub fn query_id(&self) -> u64 {
        self.qid
    }

    /// Settle the ticket: gauge down, outcome counted, latency observed, `query_end` logged,
    /// record pushed to the ring buffer. Idempotent — only the first call counts.
    pub fn finish(&mut self, outcome: QueryOutcome, rows: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        let latency_ms = self.started.elapsed().as_secs_f64() * 1000.0;
        self.metrics.queries_active.dec();
        self.metrics.queries[outcome.index()].inc();
        self.metrics.query_latency.observe_ms(latency_ms);
        let latency = format!("{latency_ms:.3}");
        log_info!(
            "query_end",
            qid = self.qid,
            outcome = outcome.as_str(),
            latency_ms = latency,
            rows = rows,
        );
        let slow = self.metrics.slow_query_ms.load(Ordering::Relaxed);
        if slow > 0 && latency_ms >= slow as f64 {
            log_warn!(
                "slow_query",
                qid = self.qid,
                latency_ms = latency,
                threshold_ms = slow,
                rows = rows,
                sql = self.sql,
            );
        }
        let profile = self.sink.as_ref().map(|sink| sink.snapshot().render());
        self.metrics.record(QueryRecord {
            qid: self.qid,
            sql: std::mem::take(&mut self.sql),
            outcome,
            latency_ms,
            rows,
            profile,
        });
    }
}

impl Drop for QueryTicket {
    fn drop(&mut self) {
        // A ticket abandoned without an explicit outcome means the stream was dropped
        // mid-flight — classify as cancelled so the gauges still return to zero.
        self.finish(QueryOutcome::Cancelled, 0);
    }
}

/// A point-in-time copy of the registry's scalar values.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Connections accepted since startup.
    pub connections_opened: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Queries currently executing.
    pub queries_active: u64,
    /// Completed queries that delivered their full result.
    pub queries_ok: u64,
    /// Completed queries that failed with an error.
    pub queries_error: u64,
    /// Completed queries cancelled by the client.
    pub queries_cancelled: u64,
    /// Completed queries shed by the governor.
    pub queries_shed: u64,
    /// Result rows streamed to clients.
    pub rows_streamed: u64,
    /// Result bytes streamed to clients.
    pub bytes_streamed: u64,
    /// Query latency distribution.
    pub latency: HistogramSnapshot,
    /// Join regions reordered by the cost-based optimizer.
    pub plans_reordered: u64,
    /// Hash-join build sides swapped to the estimated-smaller input.
    pub build_sides_swapped: u64,
    /// Plan nodes the cardinality estimator was asked about.
    pub estimator_invocations: u64,
}

/// One consistent snapshot of every stat the engine exposes — the cache, governor, stream and
/// registry numbers are all collected by a single [`crate::Engine::stats_snapshot`] call, so
/// the wire `stats` text and the Prometheus exposition always describe the same instant
/// (previously `stats` interleaved three separate lock acquisitions).
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Governor gauges and counters.
    pub governor: GovernorStats,
    /// Bytes buffered in streaming result channels.
    pub stream_buffered: usize,
    /// The metrics registry.
    pub metrics: MetricsSnapshot,
    /// Per-table row counts and statistics freshness (catalog version of the last mutation,
    /// which is the version the table's statistics describe).
    pub tables: Vec<TableInfo>,
}

/// Render the wire `stats` text from one snapshot (the `window` is the server's backpressure
/// window, reported alongside the stream gauge).
pub fn render_stats_text(snap: &StatsSnapshot, window: usize) -> String {
    let m = &snap.metrics;
    let mut text = format!(
        "plan_cache hits={} misses={} invalidations={} entries={}\nstreams buffered_bytes={} \
         window={}\ngovernor active_queries={} reserved_bytes={} admitted={} \
         shed_queries={}\nqueries active={} ok={} error={} cancelled={} shed={}\nlatency_ms \
         p50={:.3} p95={:.3} p99={:.3} count={}\nstreamed rows={} bytes={}\nconnections \
         active={} opened={}",
        snap.cache.hits,
        snap.cache.misses,
        snap.cache.invalidations,
        snap.cache.entries,
        snap.stream_buffered,
        window,
        snap.governor.active_queries,
        snap.governor.reserved_bytes,
        snap.governor.admitted,
        snap.governor.shed_queries,
        m.queries_active,
        m.queries_ok,
        m.queries_error,
        m.queries_cancelled,
        m.queries_shed,
        m.latency.quantile_ms(0.50),
        m.latency.quantile_ms(0.95),
        m.latency.quantile_ms(0.99),
        m.latency.count,
        m.rows_streamed,
        m.bytes_streamed,
        m.connections_active,
        m.connections_opened,
    );
    let _ = write!(
        text,
        "\noptimizer reordered={} build_swaps={} estimator_calls={}",
        m.plans_reordered, m.build_sides_swapped, m.estimator_invocations,
    );
    for table in &snap.tables {
        let _ = write!(
            text,
            "\ntable {} rows={} stats_version={}",
            table.name, table.rows, table.modified_version,
        );
    }
    text
}

fn prom_metric(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    value: impl std::fmt::Display,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Render one snapshot in the Prometheus text exposition format (version 0.0.4).
pub fn render_prometheus(snap: &StatsSnapshot) -> String {
    let m = &snap.metrics;
    let mut out = String::with_capacity(2048);
    prom_metric(
        &mut out,
        "perm_connections_opened_total",
        "counter",
        "Connections accepted since startup.",
        m.connections_opened,
    );
    prom_metric(
        &mut out,
        "perm_connections_active",
        "gauge",
        "Connections currently open.",
        m.connections_active,
    );
    prom_metric(
        &mut out,
        "perm_queries_active",
        "gauge",
        "Queries currently executing.",
        m.queries_active,
    );
    let _ = writeln!(out, "# HELP perm_queries_total Completed queries by outcome.");
    let _ = writeln!(out, "# TYPE perm_queries_total counter");
    for (outcome, value) in [
        ("ok", m.queries_ok),
        ("error", m.queries_error),
        ("cancelled", m.queries_cancelled),
        ("shed", m.queries_shed),
    ] {
        let _ = writeln!(out, "perm_queries_total{{outcome=\"{outcome}\"}} {value}");
    }
    prom_metric(
        &mut out,
        "perm_rows_streamed_total",
        "counter",
        "Result rows streamed to clients.",
        m.rows_streamed,
    );
    prom_metric(
        &mut out,
        "perm_bytes_streamed_total",
        "counter",
        "Result bytes (chunk payload) streamed to clients.",
        m.bytes_streamed,
    );
    let _ = writeln!(out, "# HELP perm_query_latency_seconds Query wall-clock latency.");
    let _ = writeln!(out, "# TYPE perm_query_latency_seconds histogram");
    let mut cumulative = 0u64;
    for (i, count) in m.latency.buckets.iter().enumerate() {
        cumulative += count;
        match m.latency.bounds.get(i) {
            Some(bound) => {
                let _ = writeln!(
                    out,
                    "perm_query_latency_seconds_bucket{{le=\"{}\"}} {cumulative}",
                    bound / 1000.0
                );
            }
            None => {
                let _ =
                    writeln!(out, "perm_query_latency_seconds_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "perm_query_latency_seconds_sum {}", m.latency.sum_ms / 1000.0);
    let _ = writeln!(out, "perm_query_latency_seconds_count {}", m.latency.count);
    prom_metric(
        &mut out,
        "perm_plan_cache_hits_total",
        "counter",
        "Plan-cache lookups that returned a cached plan.",
        snap.cache.hits,
    );
    prom_metric(
        &mut out,
        "perm_plan_cache_misses_total",
        "counter",
        "Plan-cache lookups that found nothing (or a stale entry).",
        snap.cache.misses,
    );
    prom_metric(
        &mut out,
        "perm_plan_cache_invalidations_total",
        "counter",
        "Cached plans dropped because the catalog version moved past them.",
        snap.cache.invalidations,
    );
    prom_metric(
        &mut out,
        "perm_plan_cache_entries",
        "gauge",
        "Plans currently cached.",
        snap.cache.entries,
    );
    prom_metric(
        &mut out,
        "perm_governor_active_queries",
        "gauge",
        "Statements registered with the governor.",
        snap.governor.active_queries,
    );
    prom_metric(
        &mut out,
        "perm_governor_reserved_bytes",
        "gauge",
        "Bytes reserved across all registered statements.",
        snap.governor.reserved_bytes,
    );
    prom_metric(
        &mut out,
        "perm_governor_admitted_total",
        "counter",
        "Statements admitted by the governor since startup.",
        snap.governor.admitted,
    );
    prom_metric(
        &mut out,
        "perm_governor_shed_total",
        "counter",
        "Statements shed under engine-wide memory pressure.",
        snap.governor.shed_queries,
    );
    prom_metric(
        &mut out,
        "perm_stream_buffered_bytes",
        "gauge",
        "Bytes buffered in streaming result channels.",
        snap.stream_buffered,
    );
    prom_metric(
        &mut out,
        "perm_optimizer_joins_reordered_total",
        "counter",
        "Join regions reordered by the cost-based optimizer.",
        m.plans_reordered,
    );
    prom_metric(
        &mut out,
        "perm_optimizer_build_swaps_total",
        "counter",
        "Hash-join build sides swapped to the estimated-smaller input.",
        m.build_sides_swapped,
    );
    prom_metric(
        &mut out,
        "perm_optimizer_estimator_calls_total",
        "counter",
        "Plan nodes the cardinality estimator was asked about.",
        m.estimator_invocations,
    );
    if !snap.tables.is_empty() {
        let _ = writeln!(out, "# HELP perm_table_rows Rows stored per base table.");
        let _ = writeln!(out, "# TYPE perm_table_rows gauge");
        for t in &snap.tables {
            let _ = writeln!(out, "perm_table_rows{{table=\"{}\"}} {}", t.name, t.rows);
        }
        let _ = writeln!(
            out,
            "# HELP perm_table_stats_version Catalog version of each table's last mutation \
             (the version its statistics describe)."
        );
        let _ = writeln!(out, "# TYPE perm_table_stats_version gauge");
        for t in &snap.tables {
            let _ = writeln!(
                out,
                "perm_table_stats_version{{table=\"{}\"}} {}",
                t.name, t.modified_version
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_saturates_at_zero() {
        let g = Gauge::default();
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&LATENCY_BUCKETS_MS);
        for _ in 0..90 {
            h.observe_ms(0.8); // -> le=1.0 bucket
        }
        for _ in 0..10 {
            h.observe_ms(400.0); // -> le=500 bucket
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.quantile_ms(0.50), 1.0);
        assert_eq!(snap.quantile_ms(0.90), 1.0);
        assert_eq!(snap.quantile_ms(0.95), 500.0);
        assert_eq!(snap.quantile_ms(0.99), 500.0);
        // Beyond the last bound lands in +Inf but reports the last bound.
        h.observe_ms(60_000.0);
        assert_eq!(h.snapshot().quantile_ms(1.0), 10_000.0);
    }

    #[test]
    fn ticket_lifecycle_counts_outcomes_and_returns_gauges_to_zero() {
        let metrics = Arc::new(Metrics::new());
        let mut t1 = metrics.start_query("SELECT 1", None);
        assert_eq!(metrics.queries_active.get(), 1);
        assert!(t1.query_id() > 0);
        t1.finish(QueryOutcome::Ok, 7);
        t1.finish(QueryOutcome::Error, 9); // idempotent: only the first finish counts
        assert_eq!(metrics.queries_active.get(), 0);
        assert_eq!(metrics.queries_with_outcome(QueryOutcome::Ok), 1);
        assert_eq!(metrics.queries_with_outcome(QueryOutcome::Error), 0);
        assert_eq!(metrics.query_latency.count(), 1);
        // Dropping an unfinished ticket records a cancellation.
        let t2 = metrics.start_query("SELECT 2", None);
        drop(t2);
        assert_eq!(metrics.queries_active.get(), 0);
        assert_eq!(metrics.queries_with_outcome(QueryOutcome::Cancelled), 1);
        let recent = metrics.recent_queries();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].sql, "SELECT 2"); // newest first
        assert_eq!(recent[1].rows, 7);
    }

    #[test]
    fn outcome_classification() {
        use perm_exec::ExecError;
        assert_eq!(outcome_of(&ServiceError::Exec(ExecError::Cancelled)), QueryOutcome::Cancelled);
        assert_eq!(
            outcome_of(&ServiceError::Exec(ExecError::ResourceExhausted("x".into()))),
            QueryOutcome::Shed
        );
        assert_eq!(
            outcome_of(&ServiceError::Exec(ExecError::Timeout { millis: 5 })),
            QueryOutcome::Error
        );
        assert_eq!(outcome_of(&ServiceError::protocol("x")), QueryOutcome::Error);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let metrics = Arc::new(Metrics::new());
        let mut t = metrics.start_query("SELECT 1", None);
        t.finish(QueryOutcome::Ok, 3);
        let snap = StatsSnapshot {
            cache: CacheStats::default(),
            governor: GovernorStats {
                active_queries: 0,
                reserved_bytes: 0,
                admitted: 1,
                shed_queries: 0,
            },
            stream_buffered: 0,
            metrics: metrics.snapshot(),
            tables: vec![TableInfo { name: "r".to_string(), rows: 42, modified_version: 3 }],
        };
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE perm_queries_total counter"));
        assert!(text.contains("perm_queries_total{outcome=\"ok\"} 1"));
        assert!(text.contains("perm_query_latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("perm_query_latency_seconds_count 1"));
        assert!(text.contains("perm_governor_admitted_total 1"));
        // Every non-comment line is `name{labels} value` or `name value` with a numeric value.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value in line: {line}");
        }
        assert!(text.contains("perm_optimizer_joins_reordered_total 0"));
        assert!(text.contains("perm_table_rows{table=\"r\"} 42"));
        assert!(text.contains("perm_table_stats_version{table=\"r\"} 3"));
        let stats = render_stats_text(&snap, 8);
        assert!(stats.contains("plan_cache hits=0"));
        assert!(stats.contains("queries active=0 ok=1"));
        assert!(stats.contains("optimizer reordered=0 build_swaps=0 estimator_calls=0"));
        assert!(stats.contains("table r rows=42 stats_version=3"));
    }

    #[test]
    fn sql_truncation() {
        assert_eq!(truncate_sql("  SELECT 1 "), "SELECT 1");
        let long = "SELECT ".to_string() + &"x,".repeat(200);
        let cut = truncate_sql(&long);
        assert!(cut.ends_with("..."));
        assert!(cut.len() <= 203);
    }
}
