//! The `permd` TCP server: one thread per connection, each owning a [`Session`], with a
//! graceful shutdown path (the `shutdown` wire command or [`ServerHandle::shutdown`]).

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::Mutex;
use perm_algebra::Value;

use crate::engine::Engine;
use crate::error::ServiceError;
use crate::session::Session;
use crate::wire::{parse_param_values, read_frame_rest, render_relation, write_frame};

/// How long a connection blocks waiting for the *start* of a frame before re-checking the
/// shutdown flag.
const READ_POLL_INTERVAL: Duration = Duration::from_millis(200);

/// How long a started frame may take to arrive completely; a stall this long mid-frame is
/// treated as a broken client and drops the connection.
const FRAME_COMPLETION_TIMEOUT: Duration = Duration::from_secs(30);

/// A handle to a running server: its bound address and a way to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0: the OS picks a free port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Has a shutdown been requested (by this handle or a client's `shutdown` command)?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request a graceful stop and wait for the accept loop and all connections to finish.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the server stops on its own (e.g. via a client's `shutdown` command).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `engine` until shutdown. Every accepted
/// connection gets its own thread and its own [`Session`]; DDL, DML and `SELECT PROVENANCE`
/// queries from all connections interleave safely over the shared catalog.
pub fn serve(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    let accept_thread = {
        let shutdown = shutdown.clone();
        thread::spawn(move || {
            let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
            loop {
                let (stream, _) = match listener.accept() {
                    Ok(accepted) => accepted,
                    Err(_) if shutdown.load(Ordering::SeqCst) => break,
                    Err(_) => continue,
                };
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let engine = engine.clone();
                let shutdown = shutdown.clone();
                let handle = thread::spawn(move || {
                    let _ = handle_connection(stream, engine, shutdown);
                });
                let mut connections = connections.lock();
                connections.push(handle);
                // Opportunistically reap finished connection threads.
                connections.retain(|h| !h.is_finished());
            }
            for handle in connections.lock().drain(..) {
                let _ = handle.join();
            }
        })
    };

    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread) })
}

fn handle_connection(
    stream: TcpStream,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL_INTERVAL))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut session = Session::new(engine);
    loop {
        // Poll for the *first byte* of the next frame so the shutdown flag is honored while
        // the connection is idle. The short timeout is only safe at a frame boundary: a
        // timed-out 1-byte read consumes nothing, whereas timing out inside `read_frame`'s
        // `read_exact` would silently discard a partially received frame and desync the
        // protocol for a client that delivers a frame in pieces.
        let mut first = [0u8; 1];
        match reader.read(&mut first) {
            Ok(0) => return Ok(()), // client closed the connection
            Ok(_) => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        // The frame has started: give the remainder a generous window, then restore polling.
        reader.set_read_timeout(Some(FRAME_COMPLETION_TIMEOUT))?;
        let request = read_frame_rest(&mut reader, first[0])?;
        reader.set_read_timeout(Some(READ_POLL_INTERVAL))?;
        let (response, stop) = handle_request(&mut session, &request, &shutdown);
        write_frame(&mut writer, &response)?;
        if stop {
            // Wake the accept loop so it notices the flag even with no further clients.
            if let Ok(addr) = writer.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return Ok(());
        }
    }
}

/// Dispatch one wire request against a session. Returns the response payload and whether the
/// server should shut down. Public so tests (and the shell's offline mode) can drive the
/// protocol without a socket.
pub fn handle_request(
    session: &mut Session,
    request: &str,
    shutdown: &AtomicBool,
) -> (String, bool) {
    match dispatch(session, request, shutdown) {
        Ok((response, stop)) => (format!("+{response}"), stop),
        Err(e) => (format!("-{e}"), false),
    }
}

fn dispatch(
    session: &mut Session,
    request: &str,
    shutdown: &AtomicBool,
) -> Result<(String, bool), ServiceError> {
    let request = request.trim();
    let (command, rest) = match request.split_once(char::is_whitespace) {
        Some((command, rest)) => (command, rest.trim()),
        None => (request, ""),
    };
    match command.to_ascii_lowercase().as_str() {
        "query" => {
            if rest.is_empty() {
                return Err(ServiceError::protocol("query requires SQL text"));
            }
            let result = session.execute(rest)?;
            Ok((render_relation(&result), false))
        }
        "prepare" => {
            let (name, sql) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| ServiceError::protocol("usage: prepare <name> <sql>"))?;
            let params = session.prepare(name, sql.trim())?;
            Ok((format!("prepared {name} ({params} parameter(s))"), false))
        }
        "exec" => {
            let (name, params_text) = match rest.split_once(char::is_whitespace) {
                Some((name, params_text)) => (name, params_text.trim()),
                None => (rest, ""),
            };
            if name.is_empty() {
                return Err(ServiceError::protocol("usage: exec <name> [(v1, v2, ...)]"));
            }
            let params: Vec<Value> = parse_param_values(params_text)?;
            let result = session.execute_prepared(name, params)?;
            Ok((render_relation(&result), false))
        }
        "deallocate" => {
            if session.deallocate(rest) {
                Ok((format!("deallocated {rest}"), false))
            } else {
                Err(ServiceError::UnknownPrepared(rest.to_string()))
            }
        }
        "set" => {
            let (setting, value) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| ServiceError::protocol("usage: set <budget|timeout_ms> <n|none>"))?;
            let value = value.trim();
            let parsed: Option<u64> = if value.eq_ignore_ascii_case("none") {
                None
            } else {
                Some(value.parse().map_err(|_| {
                    ServiceError::protocol(format!("invalid setting value '{value}'"))
                })?)
            };
            match setting.to_ascii_lowercase().as_str() {
                "budget" => session.set_row_budget(parsed.map(|n| n as usize)),
                "timeout_ms" => session.set_timeout(parsed.map(Duration::from_millis)),
                other => return Err(ServiceError::protocol(format!("unknown setting '{other}'"))),
            }
            Ok((format!("set {setting}"), false))
        }
        "stats" => {
            let stats = session.engine().cache_stats();
            Ok((
                format!(
                    "plan_cache hits={} misses={} invalidations={} entries={}",
                    stats.hits, stats.misses, stats.invalidations, stats.entries
                ),
                false,
            ))
        }
        "ping" => Ok(("pong".to_string(), false)),
        "shutdown" => {
            shutdown.store(true, Ordering::SeqCst);
            Ok(("bye".to_string(), true))
        }
        other => Err(ServiceError::protocol(format!("unknown command '{other}'"))),
    }
}
