//! The `permd` TCP server: one thread per connection, each owning a [`Session`], with a
//! graceful shutdown path (the `shutdown` wire command or [`ServerHandle::shutdown`]).
//!
//! Connections speak protocol version 2 (see [`crate::codec`] and `docs/PROTOCOL.md`): the
//! first request must be the `hello <version>` handshake, query results stream out as
//! `S` / `R`* / `D` frames, and the client paces the server by acknowledging each `R` frame —
//! at most [`BACKPRESSURE_WINDOW`] chunks are ever in flight, so one slow client buffers a
//! bounded number of chunks on the server no matter how large its result is.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::Mutex;
use perm_algebra::Value;
use perm_exec::{faults, ExecError};

use crate::codec::{self, tag, PROTOCOL_VERSION};
use crate::engine::Engine;
use crate::error::ServiceError;
use crate::metrics::{render_prometheus, render_stats_text, Metrics};
use crate::session::Session;
use crate::stream::QueryStream;
use crate::wire::{parse_param_values, read_frame_rest, render_relation, write_bytes_frame};

/// Server-wide connection id sequence (tags each connection's log lines as `conn=N`).
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(0);

/// How long a connection blocks waiting for the *start* of a frame before re-checking the
/// shutdown flag.
const READ_POLL_INTERVAL: Duration = Duration::from_millis(200);

/// How long a started frame may take to arrive completely; a stall this long mid-frame is
/// treated as a broken client and drops the connection.
const FRAME_COMPLETION_TIMEOUT: Duration = Duration::from_secs(30);

/// Maximum number of unacknowledged `R` frames the server keeps in flight per stream. With
/// ~[`perm_algebra::DEFAULT_CHUNK_SIZE`]-row chunks this bounds per-session result buffering
/// at O(window × chunk size) regardless of result cardinality.
pub const BACKPRESSURE_WINDOW: usize = 8;

/// How long a graceful shutdown waits for in-flight statements to drain before cancelling
/// whatever is still running (the hard deadline of the drain phase).
pub const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);

/// A handle to a running server: its bound address and a way to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0: the OS picks a free port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Has a shutdown been requested (by this handle or a client's `shutdown` command)?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request a graceful stop and wait for the accept loop and all connections to finish.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the server stops on its own (e.g. via a client's `shutdown` command).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `engine` until shutdown. Every accepted
/// connection gets its own thread and its own [`Session`]; DDL, DML and `SELECT PROVENANCE`
/// queries from all connections interleave safely over the shared catalog.
pub fn serve(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    let accept_thread = {
        let shutdown = shutdown.clone();
        thread::spawn(move || {
            let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
            loop {
                let (stream, _) = match listener.accept() {
                    Ok(accepted) => accepted,
                    Err(_) if shutdown.load(Ordering::SeqCst) => break,
                    Err(_) => continue,
                };
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let engine = engine.clone();
                let shutdown = shutdown.clone();
                let conn_id = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed) + 1;
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "unknown".to_string());
                let handle = thread::spawn(move || {
                    let metrics = engine.metrics().clone();
                    metrics.connections_opened.inc();
                    metrics.connections_active.inc();
                    perm_exec::log_info!("connection_open", conn = conn_id, peer = peer);
                    let result = handle_connection(stream, engine, shutdown);
                    metrics.connections_active.dec();
                    match result {
                        Ok(()) => {
                            perm_exec::log_info!("connection_close", conn = conn_id);
                        }
                        Err(e) => {
                            let error = e.to_string();
                            perm_exec::log_warn!("connection_close", conn = conn_id, error = error,);
                        }
                    }
                });
                let mut connections = connections.lock();
                connections.push(handle);
                // Opportunistically reap finished connection threads.
                connections.retain(|h| !h.is_finished());
            }
            // Graceful drain: give in-flight statements a bounded window to finish on their
            // own, then cancel the stragglers so every connection thread can be joined.
            if !engine.governor().wait_quiescent(SHUTDOWN_DRAIN) {
                engine.governor().cancel_all();
            }
            for handle in connections.lock().drain(..) {
                let _ = handle.join();
            }
        })
    };

    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread) })
}

/// Read one complete request frame, polling for its first byte so the shutdown flag is honored
/// while the connection is idle. Returns `None` on clean EOF or shutdown.
fn read_request(reader: &mut TcpStream, shutdown: &AtomicBool) -> io::Result<Option<String>> {
    faults::fire_io("socket-read")?;
    loop {
        // Poll for the *first byte* of the next frame. The short timeout is only safe at a
        // frame boundary: a timed-out 1-byte read consumes nothing, whereas timing out inside
        // `read_frame`'s `read_exact` would silently discard a partially received frame and
        // desync the protocol for a client that delivers a frame in pieces.
        let mut first = [0u8; 1];
        match reader.read(&mut first) {
            Ok(0) => return Ok(None), // client closed the connection
            Ok(_) => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        // The frame has started: give the remainder a generous window, then restore polling.
        reader.set_read_timeout(Some(FRAME_COMPLETION_TIMEOUT))?;
        let request = read_frame_rest(reader, first[0])?;
        reader.set_read_timeout(Some(READ_POLL_INTERVAL))?;
        return Ok(Some(request));
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL_INTERVAL))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let metrics = engine.metrics().clone();
    let mut session = Session::new(engine);
    let mut negotiated = false;
    loop {
        let Some(request) = read_request(&mut reader, &shutdown)? else {
            return Ok(());
        };
        // Version negotiation gates everything else: a legacy (pre-v2) client that opens with
        // `query ...` instead of `hello` gets a clean, versioned error it can render as text
        // (v1 responses were `-`-prefixed text too) instead of a hang or a binary surprise.
        if !negotiated {
            match parse_hello(&request) {
                Some(v) if v == PROTOCOL_VERSION => {
                    negotiated = true;
                    send_frame(
                        &mut writer,
                        &codec::encode_text(tag::TEXT, &format!("hello {PROTOCOL_VERSION}")),
                    )?;
                    continue;
                }
                Some(v) => {
                    send_frame(
                        &mut writer,
                        &codec::encode_text(
                            tag::ERROR,
                            &format!(
                                "unsupported protocol version {v}; this server speaks version \
                                 {PROTOCOL_VERSION}"
                            ),
                        ),
                    )?;
                    continue;
                }
                None => {
                    send_frame(
                        &mut writer,
                        &codec::encode_text(
                            tag::ERROR,
                            &format!(
                                "protocol error: expected 'hello <version>' handshake before \
                                 '{}' (this server speaks protocol version {PROTOCOL_VERSION}; \
                                 upgrade the client)",
                                request.split_whitespace().next().unwrap_or("")
                            ),
                        ),
                    )?;
                    continue;
                }
            }
        }
        let stop = match dispatch_fenced(&mut session, &request, &shutdown) {
            Ok((Response::Text(text), stop)) => {
                send_frame(&mut writer, &codec::encode_text(tag::TEXT, &text))?;
                stop
            }
            Ok((Response::Stream(stream), stop)) => {
                stream_result(&mut reader, &mut writer, *stream, &shutdown, &metrics)?;
                stop
            }
            Err(e) => {
                send_frame(&mut writer, &codec::encode_text(tag::ERROR, &e.to_string()))?;
                false
            }
        };
        if stop {
            // Wake the accept loop so it notices the flag even with no further clients.
            if let Ok(addr) = writer.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return Ok(());
        }
    }
}

/// Parse a `hello <version>` handshake request; `None` if this is some other command.
fn parse_hello(request: &str) -> Option<u32> {
    let rest = request.trim().strip_prefix("hello")?;
    rest.trim().parse().ok()
}

/// Write one frame, with the `socket-write` failpoint in front (fault-injection tests use it
/// to simulate I/O failures mid-response).
fn send_frame(writer: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    faults::fire_io("socket-write")?;
    write_bytes_frame(writer, payload)
}

/// Stream one query result: `S`, then `R` frames paced by client `ack`s, then `D` — or a `-`
/// error frame, which invalidates every `R` frame sent before it.
///
/// The client may send `cancel` at any point during the stream (it still acknowledges every
/// `R` frame it receives, cancelled or not — the ack ledger is what keeps the connection in
/// sync). The query is cancelled at its next executor checkpoint, buffered chunks are
/// discarded and the stream ends with a `-` frame carrying the `Cancelled` error. Before each
/// `R` frame the server also *polls* the socket without blocking, so a cancel takes effect
/// within one chunk boundary even when the backpressure window is far from full.
fn stream_result(
    reader: &mut TcpStream,
    writer: &mut TcpStream,
    mut stream: QueryStream,
    shutdown: &AtomicBool,
    metrics: &Arc<Metrics>,
) -> io::Result<()> {
    // Tag this thread's log lines (socket errors, cancellations) with the streaming query.
    let _qid_guard = perm_exec::QueryIdGuard::new(stream.query_id());
    send_frame(writer, &codec::encode_schema(stream.schema()))?;
    let mut unacked = 0usize;
    let mut cancelled = false;
    loop {
        match stream.next_chunk() {
            Some(Ok(chunk)) => {
                // Consume everything the client pushed while the chunk was produced.
                while let Some(signal) = poll_stream_signal(reader)? {
                    match signal {
                        StreamSignal::Ack if unacked > 0 => unacked -= 1,
                        StreamSignal::Ack => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "received 'ack' with no outstanding result frame",
                            ));
                        }
                        StreamSignal::Cancel => {
                            cancelled = true;
                            break;
                        }
                    }
                }
                while !cancelled && unacked >= BACKPRESSURE_WINDOW {
                    match read_stream_signal(reader, shutdown)? {
                        StreamSignal::Ack => unacked -= 1,
                        StreamSignal::Cancel => cancelled = true,
                    }
                }
                if cancelled {
                    stream.cancel();
                    let message = ServiceError::Exec(ExecError::Cancelled).to_string();
                    send_frame(writer, &codec::encode_text(tag::ERROR, &message))?;
                    break;
                }
                send_frame(writer, &codec::encode_chunk(&chunk))?;
                metrics.rows_streamed.add(chunk.num_rows() as u64);
                metrics.bytes_streamed.add(chunk.byte_size() as u64);
                unacked += 1;
            }
            Some(Err(e)) => {
                send_frame(writer, &codec::encode_text(tag::ERROR, &e.to_string()))?;
                break;
            }
            None => {
                send_frame(writer, &codec::encode_done(stream.rows()))?;
                break;
            }
        }
    }
    // Drop the stream before settling the ack ledger: this drains whatever the producer still
    // buffered (the engine-wide gauge returns to zero) and joins the producer thread, so a
    // cancelled query's memory is released by the time the client gets control back.
    drop(stream);
    // Consume the acknowledgements still owed for sent frames, so they are not misread as the
    // connection's next command. A `cancel` here is not an ack: either it lost the race with
    // query completion or it arrived after the error frame — both are no-ops by then.
    while unacked > 0 {
        match read_stream_signal(reader, shutdown)? {
            StreamSignal::Ack => unacked -= 1,
            StreamSignal::Cancel => {}
        }
    }
    Ok(())
}

/// A request the client may send while a result stream is in progress.
enum StreamSignal {
    /// Acknowledge one `R` frame.
    Ack,
    /// Cancel the query behind the stream.
    Cancel,
}

fn parse_stream_signal(request: &str) -> io::Result<StreamSignal> {
    let trimmed = request.trim();
    if trimmed.eq_ignore_ascii_case("ack") {
        Ok(StreamSignal::Ack)
    } else if trimmed.eq_ignore_ascii_case("cancel") {
        Ok(StreamSignal::Cancel)
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected 'ack' or 'cancel' during result stream, got '{trimmed}'"),
        ))
    }
}

/// Block until the client sends its next mid-stream request (`ack` or `cancel`).
fn read_stream_signal(reader: &mut TcpStream, shutdown: &AtomicBool) -> io::Result<StreamSignal> {
    match read_request(reader, shutdown)? {
        Some(request) => parse_stream_signal(&request),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed while awaiting stream acknowledgement",
        )),
    }
}

/// Non-blocking check for a pending mid-stream request: returns `Ok(None)` when the client
/// has sent nothing, without waiting. A started frame is then read to completion under the
/// usual frame timeout.
fn poll_stream_signal(reader: &mut TcpStream) -> io::Result<Option<StreamSignal>> {
    reader.set_nonblocking(true)?;
    let mut first = [0u8; 1];
    let polled = reader.read(&mut first);
    reader.set_nonblocking(false)?;
    match polled {
        Ok(0) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed during result stream",
        )),
        Ok(_) => {
            reader.set_read_timeout(Some(FRAME_COMPLETION_TIMEOUT))?;
            let request = read_frame_rest(reader, first[0])?;
            reader.set_read_timeout(Some(READ_POLL_INTERVAL))?;
            parse_stream_signal(&request).map(Some)
        }
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// One dispatched response: either a simple text payload or a result stream. The stream is
/// boxed — `QueryStream` is a wide struct (prepared plan, producer state, metrics ticket) and
/// would otherwise dominate the enum's size.
enum Response {
    Text(String),
    Stream(Box<QueryStream>),
}

/// Dispatch one wire request against a session and render the response as text (streamed
/// results are collected and rendered whole). Returns the response payload — `+`-prefixed on
/// success, `-`-prefixed on error — and whether the server should shut down. Public so tests
/// (and the shell's offline mode) can drive the protocol without a socket; the TCP path
/// streams instead of calling this.
pub fn handle_request(
    session: &mut Session,
    request: &str,
    shutdown: &AtomicBool,
) -> (String, bool) {
    match dispatch_fenced(session, request, shutdown) {
        Ok((Response::Text(response), stop)) => (format!("+{response}"), stop),
        Ok((Response::Stream(stream), stop)) => match stream.collect_relation() {
            Ok(relation) => (format!("+{}", render_relation(&relation)), stop),
            Err(e) => (format!("-{e}"), false),
        },
        Err(e) => (format!("-{e}"), false),
    }
}

/// [`dispatch`] behind a panic fence: a panic anywhere in planning or eager execution (a bug,
/// an injected fault) fails the one request with [`ServiceError::Internal`] instead of
/// unwinding the connection thread — the session and the server keep serving.
fn dispatch_fenced(
    session: &mut Session,
    request: &str,
    shutdown: &AtomicBool,
) -> Result<(Response, bool), ServiceError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(session, request, shutdown)))
        .unwrap_or_else(|payload| {
            let message = crate::stream::panic_message(payload.as_ref());
            perm_exec::log_error!("panic_recovered", site = "dispatch", error = message);
            Err(ServiceError::Internal(message))
        })
}

fn dispatch(
    session: &mut Session,
    request: &str,
    shutdown: &AtomicBool,
) -> Result<(Response, bool), ServiceError> {
    let request = request.trim();
    let (command, rest) = match request.split_once(char::is_whitespace) {
        Some((command, rest)) => (command, rest.trim()),
        None => (request, ""),
    };
    let text = |t: String| Response::Text(t);
    match command.to_ascii_lowercase().as_str() {
        "query" => {
            if rest.is_empty() {
                return Err(ServiceError::protocol("query requires SQL text"));
            }
            Ok((Response::Stream(Box::new(session.execute_streaming(rest)?)), false))
        }
        "prepare" => {
            let (name, sql) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| ServiceError::protocol("usage: prepare <name> <sql>"))?;
            let params = session.prepare(name, sql.trim())?;
            Ok((text(format!("prepared {name} ({params} parameter(s))")), false))
        }
        "exec" => {
            let (name, params_text) = match rest.split_once(char::is_whitespace) {
                Some((name, params_text)) => (name, params_text.trim()),
                None => (rest, ""),
            };
            if name.is_empty() {
                return Err(ServiceError::protocol("usage: exec <name> [(v1, v2, ...)]"));
            }
            let params: Vec<Value> = parse_param_values(params_text)?;
            Ok((
                Response::Stream(Box::new(session.execute_prepared_streaming(name, params)?)),
                false,
            ))
        }
        "deallocate" => {
            if session.deallocate(rest) {
                Ok((text(format!("deallocated {rest}")), false))
            } else {
                Err(ServiceError::UnknownPrepared(rest.to_string()))
            }
        }
        "set" => {
            let (setting, value) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| ServiceError::protocol("usage: set <budget|timeout_ms> <n|none>"))?;
            let value = value.trim();
            let parsed: Option<u64> = if value.eq_ignore_ascii_case("none") {
                None
            } else {
                Some(value.parse().map_err(|_| {
                    ServiceError::protocol(format!("invalid setting value '{value}'"))
                })?)
            };
            match setting.to_ascii_lowercase().as_str() {
                "budget" => session.set_row_budget(parsed.map(|n| n as usize)),
                "timeout_ms" => session.set_timeout(parsed.map(Duration::from_millis)),
                other => return Err(ServiceError::protocol(format!("unknown setting '{other}'"))),
            }
            Ok((text(format!("set {setting}")), false))
        }
        "stats" => {
            // One consistent snapshot: every line below describes the same instant (three
            // separate lock acquisitions previously let the numbers drift mid-render).
            let snap = session.engine().stats_snapshot();
            Ok((text(render_stats_text(&snap, BACKPRESSURE_WINDOW)), false))
        }
        "metrics" => {
            let snap = session.engine().stats_snapshot();
            Ok((text(render_prometheus(&snap)), false))
        }
        "profile" => Ok((text(session.engine().metrics().render_profile()), false)),
        "hello" => {
            Err(ServiceError::protocol("hello is only valid as a connection's first request"))
        }
        "ack" => Err(ServiceError::protocol("ack is only valid during a result stream")),
        "cancel" => Err(ServiceError::protocol("cancel is only valid during a result stream")),
        "ping" => Ok((text("pong".to_string()), false)),
        "shutdown" => {
            shutdown.store(true, Ordering::SeqCst);
            Ok((text("bye".to_string()), true))
        }
        other => Err(ServiceError::protocol(format!("unknown command '{other}'"))),
    }
}
