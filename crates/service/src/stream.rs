//! Streaming query results: [`QueryStream`], an iterator of [`DataChunk`]s with a schema
//! header, cancellation and per-engine buffered-memory accounting.
//!
//! A stream starts *pending*: planning has happened but no execution work has been done, so a
//! caller that wants the whole result materialized ([`QueryStream::collect_relation`], the path
//! behind the convenience `Session::execute`) runs the morsel-driven parallel executor inline —
//! exactly the pre-streaming behavior, at zero extra cost. Pulling the first chunk instead
//! promotes the stream to *running*: a producer thread executes the plan and hands chunks over
//! a bounded channel, so a consumer that forwards chunks as it pulls them (the wire server)
//! holds at most `window` chunks in memory no matter how large the result is.
//!
//! On the truly incremental path (single-worker pools, or any session with a row budget) the
//! producer drives `Executor::execute_chunked`, the executor's pull-based pipeline; with a
//! multi-worker pool the producer runs the parallel executor — the result is materialized
//! inside the producer, but the consumer still sees bounded chunks and wire backpressure still
//! applies.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use perm_algebra::{DataChunk, Schema};
use perm_exec::{CancelToken, Executor, WorkerPool};
use perm_storage::Relation;

use crate::engine::PreparedPlan;
use crate::error::ServiceError;
use crate::metrics::{outcome_of, QueryOutcome, QueryTicket};

/// How many chunks a running stream's producer may buffer ahead of the consumer.
pub const STREAM_CHANNEL_WINDOW: usize = 4;

/// A streaming query result: the output schema up front, then chunks on demand.
///
/// Dropping the stream mid-way cancels the producer at its next chunk boundary; collecting it
/// ([`collect_relation`](QueryStream::collect_relation)) before the first pull runs the
/// parallel executor inline instead of spawning a producer.
pub struct QueryStream {
    schema: Schema,
    state: State,
    /// Engine-wide gauge of bytes buffered in stream channels (incremented by producers when
    /// they send, decremented here when the consumer takes a chunk).
    buffered: Arc<AtomicUsize>,
    cancel: Arc<AtomicBool>,
    /// The executor-level cancellation token of the governed statement behind this stream;
    /// [`cancel`](QueryStream::cancel) trips it so execution aborts at its next checkpoint
    /// (not just at the next chunk boundary of the producer loop).
    token: Option<Arc<CancelToken>>,
    /// The metrics ticket of the governed statement: finished with the stream's terminal
    /// outcome (ok / error / cancelled / shed) exactly once; a stream dropped mid-flight
    /// settles it as cancelled.
    ticket: Option<QueryTicket>,
    rows: u64,
}

enum State {
    /// Planned but not started; holds everything needed to execute.
    Pending { executor: Executor, prepared: Arc<PreparedPlan>, pool: Arc<WorkerPool>, pull: bool },
    /// Producer thread running; chunks arrive over the bounded channel. The handle is `None`
    /// only when spawning the thread itself failed (the error is queued in the channel).
    Running { rx: Receiver<Result<DataChunk, ServiceError>>, producer: Option<JoinHandle<()>> },
    /// Result already materialized (DDL/DML, `SELECT ... INTO`): chunks are served from it.
    Materialized { chunks: std::vec::IntoIter<DataChunk> },
    /// Exhausted or failed.
    Done,
}

impl std::fmt::Debug for QueryStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.state {
            State::Pending { .. } => "pending",
            State::Running { .. } => "running",
            State::Materialized { .. } => "materialized",
            State::Done => "done",
        };
        f.debug_struct("QueryStream")
            .field("schema", &self.schema)
            .field("state", &state)
            .field("rows", &self.rows)
            .finish()
    }
}

impl QueryStream {
    /// A pending stream over a planned query (started lazily on the first chunk pull).
    ///
    /// `pull` selects the producer's execution mode: `true` drives the executor's pull-based
    /// chunk pipeline (bounded memory end to end), `false` the parallel executor.
    pub(crate) fn pending(
        executor: Executor,
        prepared: Arc<PreparedPlan>,
        pool: Arc<WorkerPool>,
        pull: bool,
        buffered: Arc<AtomicUsize>,
        token: Arc<CancelToken>,
        ticket: QueryTicket,
    ) -> QueryStream {
        QueryStream {
            schema: prepared.plan.schema(),
            state: State::Pending { executor, prepared, pool, pull },
            buffered,
            cancel: Arc::new(AtomicBool::new(false)),
            token: Some(token),
            ticket: Some(ticket),
            rows: 0,
        }
    }

    /// A stream over an already-materialized relation (DDL/DML results, `SELECT ... INTO`).
    pub fn from_relation(relation: Relation) -> QueryStream {
        let schema = relation.schema().clone();
        let chunks: Vec<DataChunk> =
            relation.chunks().iter().filter(|c| !c.is_empty()).cloned().collect();
        QueryStream {
            schema,
            state: State::Materialized { chunks: chunks.into_iter() },
            buffered: Arc::new(AtomicUsize::new(0)),
            cancel: Arc::new(AtomicBool::new(false)),
            token: None,
            ticket: None,
            rows: 0,
        }
    }

    /// The output schema (available before any chunk).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows delivered so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The engine-wide query id of the governed statement behind this stream (0 for streams
    /// over already-materialized results). Tags the query's log lines as `qid=<id>`.
    pub fn query_id(&self) -> u64 {
        self.ticket.as_ref().map(QueryTicket::query_id).unwrap_or(0)
    }

    /// Settle the metrics ticket with `outcome` and the rows delivered so far (idempotent;
    /// no-op for ticketless streams).
    fn finish_ticket(&mut self, outcome: QueryOutcome) {
        if let Some(ticket) = &mut self.ticket {
            ticket.finish(outcome, self.rows);
        }
    }

    /// Cancel the query behind this stream: the executor aborts at its next cancellation
    /// checkpoint (freeing reserved memory as it unwinds) and the producer stops at its next
    /// chunk boundary. Already-buffered chunks still drain; `next_chunk` keeps returning them
    /// until the channel closes.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
        if let Some(token) = &self.token {
            token.cancel();
        }
    }

    /// The cancellation token of the governed statement behind this stream, if any (streams
    /// over already-materialized results have none).
    pub fn cancel_token(&self) -> Option<&Arc<CancelToken>> {
        self.token.as_ref()
    }

    /// Pull the next chunk. `None` means the stream finished cleanly; an `Err` is terminal and
    /// invalidates every chunk delivered before it (partial results must not be trusted).
    pub fn next_chunk(&mut self) -> Option<Result<DataChunk, ServiceError>> {
        loop {
            match &mut self.state {
                State::Pending { .. } => {
                    let state = std::mem::replace(&mut self.state, State::Done);
                    let State::Pending { executor, prepared, pool, pull } = state else {
                        unreachable!()
                    };
                    self.state = spawn_producer(
                        executor,
                        prepared,
                        pool,
                        pull,
                        self.buffered.clone(),
                        self.cancel.clone(),
                        self.query_id(),
                    );
                }
                State::Running { rx, .. } => {
                    let item = rx.recv();
                    match item {
                        Ok(Ok(chunk)) => {
                            self.buffered.fetch_sub(chunk.byte_size(), Ordering::Relaxed);
                            self.rows += chunk.num_rows() as u64;
                            return Some(Ok(chunk));
                        }
                        // Terminal outcomes retire the producer thread *before* returning, so
                        // its executor (and the memory grant riding in it) is released by the
                        // time the caller sees the end of the stream — not eventually.
                        Ok(Err(e)) => {
                            self.finish_running();
                            self.finish_ticket(outcome_of(&e));
                            return Some(Err(e));
                        }
                        Err(_) => {
                            self.finish_running();
                            // The channel closed without an error: a clean end — unless this
                            // stream was cancelled and the producer simply stopped sending, in
                            // which case the partial result must not count as ok.
                            let outcome = if self.cancel.load(Ordering::Relaxed) {
                                QueryOutcome::Cancelled
                            } else {
                                QueryOutcome::Ok
                            };
                            self.finish_ticket(outcome);
                            return None;
                        }
                    }
                }
                State::Materialized { chunks } => match chunks.next() {
                    Some(chunk) => {
                        self.rows += chunk.num_rows() as u64;
                        return Some(Ok(chunk));
                    }
                    None => {
                        self.state = State::Done;
                        return None;
                    }
                },
                State::Done => return None,
            }
        }
    }

    /// Retire a running producer: drain every buffered item (keeping the engine-wide gauge
    /// exact) and join the thread, so the producer's executor — and with it the governor's
    /// memory reservation — is provably gone when this returns. A `while let Ok(Ok(..))`
    /// drain would stop at the first queued error and leak the accounting of chunks behind
    /// it.
    fn finish_running(&mut self) {
        if let State::Running { rx, producer } = std::mem::replace(&mut self.state, State::Done) {
            for chunk in rx.iter().flatten() {
                self.buffered.fetch_sub(chunk.byte_size(), Ordering::Relaxed);
            }
            // The channel is drained and the producer has observed the cancel flag, finished,
            // or had its send fail; joining makes "gauge reads zero afterwards" a guarantee
            // rather than a race. A panicked producer already reported through the channel.
            if let Some(handle) = producer {
                let _ = handle.join();
            }
        }
    }

    /// Drain the stream into a materialized [`Relation`].
    ///
    /// On a stream that has not started yet this runs the parallel executor inline — the exact
    /// code path (and performance) of the pre-streaming API; otherwise it concatenates the
    /// remaining chunks.
    pub fn collect_relation(mut self) -> Result<Relation, ServiceError> {
        if let State::Pending { .. } = &self.state {
            let state = std::mem::replace(&mut self.state, State::Done);
            let State::Pending { executor, prepared, pool, .. } = state else { unreachable!() };
            // The parallel executor handles the row-budget fallback internally; this is the
            // exact pre-streaming execution path.
            return match executor.execute_parallel(&prepared.plan, &pool) {
                Ok(relation) => {
                    self.rows = relation.num_rows() as u64;
                    self.finish_ticket(QueryOutcome::Ok);
                    Ok(relation)
                }
                Err(e) => {
                    let e = ServiceError::from(e);
                    self.finish_ticket(outcome_of(&e));
                    Err(e)
                }
            };
        }
        let mut chunks = Vec::new();
        while let Some(item) = self.next_chunk() {
            chunks.push(item?);
        }
        Ok(Relation::from_chunks(self.schema.clone(), chunks))
    }
}

impl Iterator for QueryStream {
    type Item = Result<DataChunk, ServiceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_chunk()
    }
}

impl Drop for QueryStream {
    fn drop(&mut self) {
        self.cancel();
        self.finish_running();
        // A stream abandoned before its terminal outcome was observed counts as cancelled
        // (idempotent: a finished ticket keeps its recorded outcome).
        self.finish_ticket(QueryOutcome::Cancelled);
    }
}

/// Spawn the producer thread for a pending stream and return the running state.
///
/// Failure to spawn the thread (resource exhaustion) is reported through the channel as a
/// [`ServiceError::Internal`] rather than panicking, and a producer that *panics* mid-query
/// (a worker bug, an injected fault) is caught and surfaced the same way — the stream fails,
/// the process does not.
fn spawn_producer(
    executor: Executor,
    prepared: Arc<PreparedPlan>,
    pool: Arc<WorkerPool>,
    pull: bool,
    buffered: Arc<AtomicUsize>,
    cancel: Arc<AtomicBool>,
    qid: u64,
) -> State {
    let (tx, rx) = std::sync::mpsc::sync_channel(STREAM_CHANNEL_WINDOW);
    let spawned = std::thread::Builder::new().name("perm-stream".into()).spawn(move || {
        // Tag everything this producer (and the morsel workers it drives) logs with the
        // query's id.
        let _qid_guard = perm_exec::QueryIdGuard::new(qid);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            produce(&executor, &prepared, &pool, pull, &tx, &buffered, &cancel)
        }));
        if let Err(payload) = outcome {
            // Errors carry no buffered bytes, so no gauge accounting is needed here; the
            // consumer (or `Drop`) drains the channel as usual.
            let _ = tx.send(Err(ServiceError::Internal(panic_message(payload.as_ref()))));
        }
    });
    match spawned {
        Ok(producer) => State::Running { rx, producer: Some(producer) },
        Err(e) => {
            // The closure (with `tx` inside) was dropped, closing the channel; report the
            // spawn failure over a fresh channel instead.
            let (tx, rx) = std::sync::mpsc::sync_channel(1);
            let _ = tx.send(Err(ServiceError::Internal(format!(
                "failed to spawn stream producer thread: {e}"
            ))));
            State::Running { rx, producer: None }
        }
    }
}

/// Render a caught panic payload as an error message (shared with the server's dispatch
/// fence).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    };
    format!("worker panicked: {msg}")
}

fn produce(
    executor: &Executor,
    prepared: &PreparedPlan,
    pool: &WorkerPool,
    pull: bool,
    tx: &SyncSender<Result<DataChunk, ServiceError>>,
    buffered: &AtomicUsize,
    cancel: &AtomicBool,
) {
    let send = |item: Result<DataChunk, ServiceError>| -> bool {
        let bytes = item.as_ref().map_or(0, DataChunk::byte_size);
        buffered.fetch_add(bytes, Ordering::Relaxed);
        if tx.send(item).is_err() {
            // Consumer went away; roll the accounting back and stop.
            buffered.fetch_sub(bytes, Ordering::Relaxed);
            return false;
        }
        true
    };
    if pull {
        // Pull-based pipeline: chunks leave the executor one at a time; with the bounded
        // channel this caps producer-side memory at O(window × chunk size) for pipelined
        // plans.
        let chunks = match executor.execute_chunked(&prepared.plan) {
            Ok(chunks) => chunks,
            Err(e) => {
                send(Err(e.into()));
                return;
            }
        };
        for item in chunks {
            if cancel.load(Ordering::Relaxed) {
                return;
            }
            match item {
                Ok(chunk) if chunk.is_empty() => continue,
                Ok(chunk) => {
                    if !send(Ok(chunk)) {
                        return;
                    }
                }
                Err(e) => {
                    send(Err(e.into()));
                    return;
                }
            }
        }
    } else {
        // Parallel execution materializes the result inside this thread, then feeds it out
        // chunk-wise (the consumer still gets bounded buffering and wire backpressure).
        match executor.execute_parallel(&prepared.plan, pool) {
            Ok(relation) => {
                for chunk in relation.chunks().iter() {
                    if chunk.is_empty() {
                        continue;
                    }
                    if cancel.load(Ordering::Relaxed) || !send(Ok(chunk.clone())) {
                        return;
                    }
                }
            }
            Err(e) => {
                send(Err(e.into()));
            }
        }
    }
}
