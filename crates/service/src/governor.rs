//! The resource governor: engine-wide memory admission, per-query accounting and shedding.
//!
//! Every governed statement registers with the [`Governor`] before execution and receives a
//! [`QueryGrant`] — the engine threads the grant into the executor as its
//! [`perm_exec::QueryMemory`] hook, so join build sides, sort/aggregation buffers and other
//! materializations are charged here at allocation time (coarsely, never per row). Two limits
//! apply:
//!
//! * **per-query** (`permd --session-mem-limit`): a single statement exceeding its budget gets
//!   a clean `ResourceExhausted` error instead of taking the process towards OOM.
//! * **engine-wide** (`permd --mem-limit`): admission waits briefly for reserved memory to
//!   drain before rejecting new statements, and when running queries collectively overrun the
//!   limit the governor sheds the *largest* one — its [`perm_exec::CancelToken`] is cancelled
//!   with a resource-exhausted reason and its memory frees as it unwinds.
//!
//! Dropping a grant (query finished, failed, or was cancelled) releases everything it reserved
//! and wakes admission waiters, so the gauges return to zero at quiescence by construction.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use perm_exec::{CancelToken, ExecError, QueryMemory};

/// How long admission waits for reserved memory to drain before rejecting a statement.
pub const ADMISSION_WAIT: Duration = Duration::from_secs(2);

/// Memory limits enforced by the governor (`None` = unlimited).
#[derive(Debug, Clone, Copy, Default)]
pub struct GovernorLimits {
    /// Engine-wide cap on reserved bytes across all running statements.
    pub engine_bytes: Option<usize>,
    /// Cap on the bytes any single statement may reserve.
    pub query_bytes: Option<usize>,
}

/// Point-in-time governor gauges (reported by the wire `stats` command).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorStats {
    /// Statements currently registered (admitted and not yet finished).
    pub active_queries: usize,
    /// Bytes currently reserved across all registered statements.
    pub reserved_bytes: usize,
    /// Statements admitted since startup.
    pub admitted: u64,
    /// Statements shed (cancelled with `ResourceExhausted`) under engine-wide pressure.
    pub shed_queries: u64,
}

#[derive(Debug)]
struct QueryState {
    reserved: usize,
    cancel: Arc<CancelToken>,
}

#[derive(Debug, Default)]
struct GovState {
    next_id: u64,
    total: usize,
    admitted: u64,
    shed: u64,
    queries: HashMap<u64, QueryState>,
}

/// Engine-wide memory governor; see the module docs.
#[derive(Debug)]
pub struct Governor {
    limits: GovernorLimits,
    state: Mutex<GovState>,
    /// Signalled whenever reserved memory drains (a grant drops), waking admission waiters.
    drained: Condvar,
}

impl Governor {
    /// A governor enforcing `limits`.
    pub fn new(limits: GovernorLimits) -> Governor {
        Governor { limits, state: Mutex::new(GovState::default()), drained: Condvar::new() }
    }

    /// The limits this governor enforces.
    pub fn limits(&self) -> GovernorLimits {
        self.limits
    }

    /// Lock the governor state, recovering from poisoning: the state is a set of counters kept
    /// consistent at every await point, so a panicking holder leaves nothing half-updated that
    /// could justify taking the whole engine down.
    fn lock_state(&self) -> MutexGuard<'_, GovState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admit one statement: waits up to [`ADMISSION_WAIT`] for engine-wide reserved memory to
    /// drop below the limit, then registers the statement and returns its grant. `cancel` is
    /// the statement's cancellation token, kept so shutdown and shedding can reach it.
    pub fn admit(self: &Arc<Self>, cancel: Arc<CancelToken>) -> Result<QueryGrant, ExecError> {
        let mut state = self.lock_state();
        if let Some(limit) = self.limits.engine_bytes {
            let mut waited = false;
            while state.total >= limit && !state.queries.is_empty() {
                if waited {
                    return Err(ExecError::ResourceExhausted(format!(
                        "engine memory limit of {limit} bytes is fully reserved; admission \
                         timed out"
                    )));
                }
                state = self
                    .drained
                    .wait_timeout(state, ADMISSION_WAIT)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
                waited = true;
            }
        }
        state.next_id += 1;
        state.admitted += 1;
        let id = state.next_id;
        state.queries.insert(id, QueryState { reserved: 0, cancel });
        Ok(QueryGrant { governor: self.clone(), id })
    }

    /// Cancel every registered statement (graceful shutdown). Grants stay registered until
    /// their queries unwind and drop them.
    pub fn cancel_all(&self) {
        let state = self.lock_state();
        for query in state.queries.values() {
            query.cancel.cancel();
        }
    }

    /// Current gauges.
    pub fn stats(&self) -> GovernorStats {
        let state = self.lock_state();
        GovernorStats {
            active_queries: state.queries.len(),
            reserved_bytes: state.total,
            admitted: state.admitted,
            shed_queries: state.shed,
        }
    }

    /// Block until no statement is registered or `deadline` elapses; returns whether the
    /// governor is quiescent. Used by graceful shutdown to drain in-flight queries.
    pub fn wait_quiescent(&self, deadline: Duration) -> bool {
        let started = std::time::Instant::now();
        let mut state = self.lock_state();
        while !state.queries.is_empty() {
            let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
                return false;
            };
            state = self
                .drained
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        true
    }

    fn reserve(&self, id: u64, bytes: usize) -> Result<(), ExecError> {
        let mut state = self.lock_state();
        let reserved = match state.queries.get(&id) {
            Some(q) => q.reserved,
            None => return Ok(()), // Grant already deregistered (unwinding); nothing to track.
        };
        if let Some(limit) = self.limits.query_bytes {
            if reserved.saturating_add(bytes) > limit {
                return Err(ExecError::ResourceExhausted(format!(
                    "query memory limit exceeded: {} + {bytes} bytes over the per-query limit \
                     of {limit}",
                    reserved
                )));
            }
        }
        if let Some(limit) = self.limits.engine_bytes {
            if state.total.saturating_add(bytes) > limit {
                // Shed the largest *other* statement: its memory frees as it unwinds, and this
                // reservation proceeds with a transient overshoot. If this statement is itself
                // the largest (or alone), shedding others cannot help — fail it instead.
                let largest = state
                    .queries
                    .iter()
                    .filter(|(qid, q)| **qid != id && !q.cancel.is_cancelled())
                    .max_by_key(|(_, q)| q.reserved)
                    .map(|(qid, q)| (*qid, q.reserved));
                match largest {
                    Some((_, largest_reserved)) if largest_reserved > reserved => {
                        state.shed += 1;
                        perm_exec::log_warn!(
                            "governor_shed",
                            victim_reserved = largest_reserved,
                            requested = bytes,
                            limit = limit,
                        );
                        let victim = largest
                            .and_then(|(qid, _)| state.queries.get(&qid))
                            .map(|q| q.cancel.clone());
                        if let Some(token) = victim {
                            token.cancel_resource_exhausted(format!(
                                "shed by governor: engine memory limit of {limit} bytes \
                                 exceeded and this was the largest query \
                                 ({largest_reserved} bytes reserved)"
                            ));
                        }
                    }
                    _ => {
                        return Err(ExecError::ResourceExhausted(format!(
                            "engine memory limit exceeded: {} + {bytes} bytes over the \
                             engine-wide limit of {limit}",
                            state.total
                        )));
                    }
                }
            }
        }
        state.total = state.total.saturating_add(bytes);
        if let Some(q) = state.queries.get_mut(&id) {
            q.reserved = q.reserved.saturating_add(bytes);
        }
        Ok(())
    }

    fn finish(&self, id: u64) {
        let mut state = self.lock_state();
        if let Some(query) = state.queries.remove(&id) {
            state.total = state.total.saturating_sub(query.reserved);
        }
        drop(state);
        self.drained.notify_all();
    }
}

/// One admitted statement's handle on the governor: the executor charges materializations
/// through the [`QueryMemory`] impl, and dropping the grant (the query finished or unwound)
/// releases everything it reserved.
#[derive(Debug)]
pub struct QueryGrant {
    governor: Arc<Governor>,
    id: u64,
}

impl QueryMemory for QueryGrant {
    fn reserve(&self, bytes: usize) -> Result<(), ExecError> {
        perm_exec::faults::fire("alloc-reserve")?;
        self.governor.reserve(self.id, bytes)
    }
}

impl Drop for QueryGrant {
    fn drop(&mut self) {
        self.governor.finish(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(engine: Option<usize>, query: Option<usize>) -> Arc<Governor> {
        Arc::new(Governor::new(GovernorLimits { engine_bytes: engine, query_bytes: query }))
    }

    #[test]
    fn unlimited_governor_tracks_and_releases() {
        let gov = governor(None, None);
        let token = Arc::new(CancelToken::new());
        let grant = gov.admit(token).unwrap();
        grant.reserve(1000).unwrap();
        grant.reserve(500).unwrap();
        assert_eq!(gov.stats().reserved_bytes, 1500);
        assert_eq!(gov.stats().active_queries, 1);
        drop(grant);
        assert_eq!(gov.stats().reserved_bytes, 0);
        assert_eq!(gov.stats().active_queries, 0);
    }

    #[test]
    fn per_query_limit_rejects_cleanly() {
        let gov = governor(None, Some(1000));
        let grant = gov.admit(Arc::new(CancelToken::new())).unwrap();
        grant.reserve(800).unwrap();
        let err = grant.reserve(300).unwrap_err();
        assert!(matches!(err, ExecError::ResourceExhausted(_)), "got {err:?}");
        // The failed reservation is not charged.
        assert_eq!(gov.stats().reserved_bytes, 800);
    }

    #[test]
    fn engine_limit_sheds_largest_other_query() {
        let gov = governor(Some(1000), None);
        let big_token = Arc::new(CancelToken::new());
        let big = gov.admit(big_token.clone()).unwrap();
        big.reserve(900).unwrap();
        let small = gov.admit(Arc::new(CancelToken::new())).unwrap();
        // The small query pushes the engine over: the big one is shed, the small proceeds.
        small.reserve(200).unwrap();
        assert!(big_token.is_cancelled());
        assert!(matches!(big_token.check(), Err(ExecError::ResourceExhausted(_))));
        assert_eq!(gov.stats().shed_queries, 1);
        // The big query unwinds and frees its memory.
        drop(big);
        assert_eq!(gov.stats().reserved_bytes, 200);
    }

    #[test]
    fn largest_query_cannot_shed_smaller_ones() {
        let gov = governor(Some(1000), None);
        let small = gov.admit(Arc::new(CancelToken::new())).unwrap();
        small.reserve(100).unwrap();
        let big_token = Arc::new(CancelToken::new());
        let big = gov.admit(big_token.clone()).unwrap();
        big.reserve(500).unwrap();
        // `big` is the largest; its own over-limit reservation fails rather than shedding
        // the smaller query.
        let err = big.reserve(600).unwrap_err();
        assert!(matches!(err, ExecError::ResourceExhausted(_)), "got {err:?}");
        assert!(!big_token.is_cancelled(), "requester fails, is not cancelled");
        assert_eq!(gov.stats().reserved_bytes, 600);
    }

    #[test]
    fn cancel_all_reaches_every_registered_token() {
        let gov = governor(None, None);
        let tokens: Vec<Arc<CancelToken>> = (0..3).map(|_| Arc::new(CancelToken::new())).collect();
        let grants: Vec<QueryGrant> =
            tokens.iter().map(|t| gov.admit(t.clone()).unwrap()).collect();
        gov.cancel_all();
        assert!(tokens.iter().all(|t| t.is_cancelled()));
        drop(grants);
        assert!(gov.wait_quiescent(Duration::from_millis(10)));
    }

    #[test]
    fn admission_times_out_when_fully_reserved() {
        let gov = governor(Some(100), None);
        let holder = gov.admit(Arc::new(CancelToken::new())).unwrap();
        holder.reserve(100).unwrap();
        let started = std::time::Instant::now();
        let err = gov.admit(Arc::new(CancelToken::new())).unwrap_err();
        assert!(matches!(err, ExecError::ResourceExhausted(_)), "got {err:?}");
        assert!(started.elapsed() >= ADMISSION_WAIT, "admission waited before rejecting");
    }
}
