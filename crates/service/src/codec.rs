//! Binary payload codec for protocol-v2 response frames.
//!
//! Requests stay single-line UTF-8 text; *responses* are tagged binary payloads inside the
//! same length-prefixed framing (see [`crate::wire`]). The first payload byte is the frame
//! tag:
//!
//! | tag   | frame    | body                                                          |
//! |-------|----------|---------------------------------------------------------------|
//! | `+`   | text     | UTF-8 text (simple command responses, `hello` ack)            |
//! | `-`   | error    | UTF-8 error message                                           |
//! | `S`   | schema   | u16 ncols, then per column u16 name-len + name + u8 type tag  |
//! | `R`   | chunk    | u32 rows, u16 ncols, then one encoded array per column        |
//! | `D`   | done     | u64 total row count                                           |
//!
//! All integers are big-endian (matching the frame length prefix). Arrays ship in their
//! *factorized* form: a dictionary-encoded join output keeps its 4-byte indices and sends each
//! distinct dictionary row once (after compacting away unreferenced rows), and long constant
//! stretches are run-length compressed at encode time. Array encoding:
//!
//! ```text
//! array     := enc-tag:u8 body
//! enc-tag   := 0 (plain) | 1 (dict) | 2 (run-length)
//! plain     := type-tag:u8 len:u32 payload            ; type-specific, see below
//! dict      := count:u32 index:u32{count} array       ; the shared dictionary, recursively
//! rle       := runs:u32 run-end:u32{runs} array       ; one representative row per run
//! ```
//!
//! Plain payloads carry a validity bitmap (`ceil(len/8)` bytes, bit `i` of byte `i/8` set iff
//! row `i` is non-NULL) followed by native values: bit-packed bools, 8-byte ints/floats,
//! 4-byte dates, or `u32`-length-prefixed UTF-8 for text. `Null` columns have no payload and
//! `Any` columns (mixed types) carry one tagged [`Value`] per row.

use std::sync::Arc;

use perm_algebra::{Array, Bitmap, DataChunk, DataType, Schema, Value};

use crate::error::ServiceError;

/// The protocol version this build speaks (negotiated by the `hello` handshake).
pub const PROTOCOL_VERSION: u32 = 2;

/// Frame tag bytes.
pub mod tag {
    /// Simple text response.
    pub const TEXT: u8 = b'+';
    /// Error response (possibly mid-stream, invalidating earlier chunk frames).
    pub const ERROR: u8 = b'-';
    /// Result schema header.
    pub const SCHEMA: u8 = b'S';
    /// One chunk of result rows.
    pub const RESULT: u8 = b'R';
    /// End-of-stream trailer.
    pub const DONE: u8 = b'D';
}

/// Dictionaries at most this large are compacted with a dense `Vec` remap table; larger ones
/// fall back to a hash map so a huge build side referenced by a tiny chunk stays cheap.
const DENSE_REMAP_LIMIT: usize = 4096;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encode a schema frame (`S`).
pub fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut out = vec![tag::SCHEMA];
    out.extend_from_slice(&(schema.arity() as u16).to_be_bytes());
    for attr in schema.attributes() {
        let name = attr.name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_be_bytes());
        out.extend_from_slice(name);
        out.push(type_tag(attr.data_type));
    }
    out
}

/// Encode a result-chunk frame (`R`), factorizing each column: dict views are compacted to
/// their referenced rows, and plain columns with long constant stretches are run-length
/// compressed.
pub fn encode_chunk(chunk: &DataChunk) -> Vec<u8> {
    let mut out = vec![tag::RESULT];
    out.extend_from_slice(&(chunk.num_rows() as u32).to_be_bytes());
    out.extend_from_slice(&(chunk.num_columns() as u16).to_be_bytes());
    for c in 0..chunk.num_columns() {
        encode_array(chunk.column(c), &mut out);
    }
    out
}

/// Encode a done trailer (`D`) carrying the stream's total row count.
pub fn encode_done(rows: u64) -> Vec<u8> {
    let mut out = vec![tag::DONE];
    out.extend_from_slice(&rows.to_be_bytes());
    out
}

/// Encode a text (`+`) or error (`-`) frame.
pub fn encode_text(tag_byte: u8, text: &str) -> Vec<u8> {
    let mut out = vec![tag_byte];
    out.extend_from_slice(text.as_bytes());
    out
}

fn type_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Date => 4,
        DataType::Null => 5,
    }
}

fn type_from_tag(tag: u8) -> Result<DataType, ServiceError> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Date,
        5 => DataType::Null,
        other => return Err(ServiceError::protocol(format!("unknown type tag {other}"))),
    })
}

/// Encode one array in its most compact of the three wire forms.
fn encode_array(array: &Array, out: &mut Vec<u8>) {
    match array {
        Array::Dict { indices, dict } => {
            let plain_dict = dict.to_plain();
            let (indices, compacted) = compact_dictionary(indices, &plain_dict);
            // A dictionary that is (almost) as long as the chunk saves nothing over sending
            // the rows plainly — only keep the factorized form when rows actually repeat.
            if compacted.len() >= indices.len() {
                encode_plain(&array.to_plain(), out);
                return;
            }
            out.push(1);
            out.extend_from_slice(&(indices.len() as u32).to_be_bytes());
            for i in &indices {
                out.extend_from_slice(&i.to_be_bytes());
            }
            encode_plain(&compacted, out);
        }
        Array::RunLength { values, run_ends } => {
            out.push(2);
            out.extend_from_slice(&(run_ends.len() as u32).to_be_bytes());
            for end in run_ends {
                out.extend_from_slice(&end.to_be_bytes());
            }
            encode_plain(&values.to_plain(), out);
        }
        plain => match plain.rle_compress() {
            Some(rle) => encode_array(&rle, out),
            None => encode_plain(plain, out),
        },
    }
}

/// Drop dictionary rows no index references and remap the indices accordingly, so a frame
/// never ships build-side rows that its chunk does not use.
fn compact_dictionary(indices: &[u32], dict: &Array) -> (Vec<u32>, Array) {
    if dict.len() <= DENSE_REMAP_LIMIT {
        let mut remap = vec![u32::MAX; dict.len()];
        let mut keep: Vec<u32> = Vec::new();
        let new_indices = indices
            .iter()
            .map(|&i| {
                if remap[i as usize] == u32::MAX {
                    remap[i as usize] = keep.len() as u32;
                    keep.push(i);
                }
                remap[i as usize]
            })
            .collect();
        (new_indices, dict.take(&keep))
    } else {
        let mut remap = std::collections::HashMap::new();
        let mut keep: Vec<u32> = Vec::new();
        let new_indices = indices
            .iter()
            .map(|&i| {
                *remap.entry(i).or_insert_with(|| {
                    keep.push(i);
                    keep.len() as u32 - 1
                })
            })
            .collect();
        (new_indices, dict.take(&keep))
    }
}

fn encode_validity(validity: &Bitmap, out: &mut Vec<u8>) {
    let mut bytes = vec![0u8; validity.len().div_ceil(8)];
    for (i, set) in validity.iter().enumerate() {
        if set {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bytes);
}

fn encode_plain(array: &Array, out: &mut Vec<u8>) {
    debug_assert!(!array.is_encoded());
    out.push(0);
    let len = array.len() as u32;
    match array {
        Array::Bool { values, validity } => {
            out.push(0);
            out.extend_from_slice(&len.to_be_bytes());
            encode_validity(validity, out);
            let mut bytes = vec![0u8; values.len().div_ceil(8)];
            for (i, &v) in values.iter().enumerate() {
                if v {
                    bytes[i / 8] |= 1 << (i % 8);
                }
            }
            out.extend_from_slice(&bytes);
        }
        Array::Int { values, validity } => {
            out.push(1);
            out.extend_from_slice(&len.to_be_bytes());
            encode_validity(validity, out);
            for v in values {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        Array::Float { values, validity } => {
            out.push(2);
            out.extend_from_slice(&len.to_be_bytes());
            encode_validity(validity, out);
            for v in values {
                out.extend_from_slice(&v.to_bits().to_be_bytes());
            }
        }
        Array::Text { values, validity } => {
            out.push(3);
            out.extend_from_slice(&len.to_be_bytes());
            encode_validity(validity, out);
            for v in values {
                out.extend_from_slice(&(v.len() as u32).to_be_bytes());
                out.extend_from_slice(v.as_bytes());
            }
        }
        Array::Date { values, validity } => {
            out.push(4);
            out.extend_from_slice(&len.to_be_bytes());
            encode_validity(validity, out);
            for v in values {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        Array::Null { .. } => {
            out.push(5);
            out.extend_from_slice(&len.to_be_bytes());
        }
        Array::Any { values } => {
            out.push(6);
            out.extend_from_slice(&len.to_be_bytes());
            for v in values {
                encode_value(v, out);
            }
        }
        Array::Dict { .. } | Array::RunLength { .. } => unreachable!("encoded array"),
    }
}

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Value::Text(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(5);
            out.extend_from_slice(&d.to_be_bytes());
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A byte cursor over one frame payload with protocol-error reporting.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServiceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| ServiceError::protocol("truncated response frame"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Take exactly `N` bytes as a fixed-size array (`take` guarantees the length).
    fn array<const N: usize>(&mut self) -> Result<[u8; N], ServiceError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ServiceError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServiceError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, ServiceError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, ServiceError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    fn i32(&mut self) -> Result<i32, ServiceError> {
        Ok(i32::from_be_bytes(self.array()?))
    }

    fn i64(&mut self) -> Result<i64, ServiceError> {
        Ok(i64::from_be_bytes(self.array()?))
    }

    /// Bytes not yet consumed. Every length-prefixed preallocation below is capped by this
    /// (divided by the element's minimum encoded size), so a corrupt or hostile frame
    /// claiming a huge element count can never force an allocation larger than the frame
    /// itself — decoding then fails with a clean truncation error instead.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn finish(&self) -> Result<(), ServiceError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ServiceError::protocol("trailing bytes after response frame"))
        }
    }
}

/// Decode a schema frame body (the payload after the `S` tag byte).
pub fn decode_schema(body: &[u8]) -> Result<Schema, ServiceError> {
    let mut cur = Cursor::new(body);
    let ncols = cur.u16()? as usize;
    let mut pairs: Vec<(String, DataType)> = Vec::with_capacity(ncols.min(cur.remaining()));
    for _ in 0..ncols {
        let name_len = cur.u16()? as usize;
        let name = String::from_utf8(cur.take(name_len)?.to_vec())
            .map_err(|_| ServiceError::protocol("schema name is not valid UTF-8"))?;
        let data_type = type_from_tag(cur.u8()?)?;
        pairs.push((name, data_type));
    }
    cur.finish()?;
    let refs: Vec<(&str, DataType)> = pairs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Ok(Schema::from_pairs(&refs))
}

/// Decode a result-chunk frame body (the payload after the `R` tag byte).
pub fn decode_chunk(body: &[u8]) -> Result<DataChunk, ServiceError> {
    let mut cur = Cursor::new(body);
    let rows = cur.u32()? as usize;
    let ncols = cur.u16()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(cur.remaining()));
    for _ in 0..ncols {
        let array = decode_array(&mut cur)?;
        if array.len() != rows {
            return Err(ServiceError::protocol("chunk column length mismatch"));
        }
        columns.push(Arc::new(array));
    }
    cur.finish()?;
    if columns.is_empty() {
        Ok(DataChunk::zero_width(rows))
    } else {
        Ok(DataChunk::new(columns))
    }
}

/// Decode a done trailer body (the payload after the `D` tag byte).
pub fn decode_done(body: &[u8]) -> Result<u64, ServiceError> {
    let mut cur = Cursor::new(body);
    let rows = cur.u64()?;
    cur.finish()?;
    Ok(rows)
}

fn decode_array(cur: &mut Cursor<'_>) -> Result<Array, ServiceError> {
    match cur.u8()? {
        0 => decode_plain(cur),
        1 => {
            let count = cur.u32()? as usize;
            let mut indices = Vec::with_capacity(count.min(cur.remaining() / 4));
            for _ in 0..count {
                indices.push(cur.u32()?);
            }
            let dict = decode_array(cur)?;
            if indices.iter().any(|&i| i as usize >= dict.len()) {
                return Err(ServiceError::protocol("dictionary index out of bounds"));
            }
            Ok(Array::Dict { indices, dict: Arc::new(dict) })
        }
        2 => {
            let runs = cur.u32()? as usize;
            let mut run_ends = Vec::with_capacity(runs.min(cur.remaining() / 4));
            for _ in 0..runs {
                run_ends.push(cur.u32()?);
            }
            if run_ends.windows(2).any(|w| w[0] >= w[1]) || run_ends.first() == Some(&0) {
                return Err(ServiceError::protocol("run ends are not strictly increasing"));
            }
            let values = decode_array(cur)?;
            if values.len() != run_ends.len() {
                return Err(ServiceError::protocol("run values length mismatch"));
            }
            Ok(Array::RunLength { values: Arc::new(values), run_ends })
        }
        other => Err(ServiceError::protocol(format!("unknown array encoding tag {other}"))),
    }
}

fn decode_validity(cur: &mut Cursor<'_>, len: usize) -> Result<Bitmap, ServiceError> {
    let bytes = cur.take(len.div_ceil(8))?;
    Ok((0..len).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
}

fn decode_plain(cur: &mut Cursor<'_>) -> Result<Array, ServiceError> {
    let type_tag = cur.u8()?;
    let len = cur.u32()? as usize;
    Ok(match type_tag {
        0 => {
            let validity = decode_validity(cur, len)?;
            let bytes = cur.take(len.div_ceil(8))?;
            let values = (0..len).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect();
            Array::Bool { values, validity }
        }
        1 => {
            let validity = decode_validity(cur, len)?;
            let mut values = Vec::with_capacity(len.min(cur.remaining() / 8));
            for _ in 0..len {
                values.push(cur.i64()?);
            }
            Array::Int { values, validity }
        }
        2 => {
            let validity = decode_validity(cur, len)?;
            let mut values = Vec::with_capacity(len.min(cur.remaining() / 8));
            for _ in 0..len {
                values.push(f64::from_bits(cur.u64()?));
            }
            Array::Float { values, validity }
        }
        3 => {
            let validity = decode_validity(cur, len)?;
            let mut values: Vec<Arc<str>> = Vec::with_capacity(len.min(cur.remaining() / 4));
            for _ in 0..len {
                let text_len = cur.u32()? as usize;
                let text = std::str::from_utf8(cur.take(text_len)?)
                    .map_err(|_| ServiceError::protocol("text value is not valid UTF-8"))?;
                values.push(Arc::from(text));
            }
            Array::Text { values, validity }
        }
        4 => {
            let validity = decode_validity(cur, len)?;
            let mut values = Vec::with_capacity(len.min(cur.remaining() / 4));
            for _ in 0..len {
                values.push(cur.i32()?);
            }
            Array::Date { values, validity }
        }
        5 => Array::Null { len },
        6 => {
            let mut values = Vec::with_capacity(len.min(cur.remaining()));
            for _ in 0..len {
                values.push(decode_value(cur)?);
            }
            Array::Any { values }
        }
        other => return Err(ServiceError::protocol(format!("unknown array type tag {other}"))),
    })
}

fn decode_value(cur: &mut Cursor<'_>) -> Result<Value, ServiceError> {
    Ok(match cur.u8()? {
        0 => Value::Null,
        1 => Value::Bool(cur.u8()? != 0),
        2 => Value::Int(cur.i64()?),
        3 => Value::Float(f64::from_bits(cur.u64()?)),
        4 => {
            let len = cur.u32()? as usize;
            let text = std::str::from_utf8(cur.take(len)?)
                .map_err(|_| ServiceError::protocol("text value is not valid UTF-8"))?;
            Value::text(text)
        }
        5 => Value::Date(cur.i32()?),
        other => return Err(ServiceError::protocol(format!("unknown value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(chunk: &DataChunk) -> DataChunk {
        let bytes = encode_chunk(chunk);
        assert_eq!(bytes[0], tag::RESULT);
        decode_chunk(&bytes[1..]).unwrap()
    }

    #[test]
    fn schema_round_trips() {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Text),
            ("price", DataType::Float),
            ("since", DataType::Date),
            ("flag", DataType::Bool),
            ("nothing", DataType::Null),
        ]);
        let bytes = encode_schema(&schema);
        assert_eq!(bytes[0], tag::SCHEMA);
        let decoded = decode_schema(&bytes[1..]).unwrap();
        assert_eq!(decoded.arity(), schema.arity());
        for (a, b) in decoded.attributes().iter().zip(schema.attributes()) {
            assert_eq!((a.name.as_str(), a.data_type), (b.name.as_str(), b.data_type));
        }
    }

    #[test]
    fn plain_chunks_round_trip_bit_identically() {
        let chunk = DataChunk::new(vec![
            Arc::new(Array::from_values([Value::Int(1), Value::Null, Value::Int(-7)].into_iter())),
            Arc::new(Array::from_values(
                [Value::text("a"), Value::text(""), Value::Null].into_iter(),
            )),
            Arc::new(Array::from_values(
                [Value::Float(1.5), Value::Float(f64::NAN), Value::Null].into_iter(),
            )),
            Arc::new(Array::from_values(
                [Value::Bool(true), Value::Null, Value::Bool(false)].into_iter(),
            )),
            Arc::new(Array::from_values(
                [Value::Date(0), Value::Date(-400), Value::Null].into_iter(),
            )),
            Arc::new(Array::Null { len: 3 }),
            Arc::new(Array::Any { values: vec![Value::Int(1), Value::text("mixed"), Value::Null] }),
        ]);
        let decoded = round_trip(&chunk);
        // NaN defeats PartialEq; compare everything but the float column logically and the
        // float column bitwise.
        for c in [0usize, 1, 3, 4, 5, 6] {
            assert_eq!(decoded.column(c), chunk.column(c), "column {c}");
        }
        match (decoded.column(2).as_ref(), chunk.column(2).as_ref()) {
            (
                Array::Float { values: d, validity: dv },
                Array::Float { values: o, validity: ov },
            ) => {
                assert_eq!(dv, ov);
                let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(d), bits(o));
            }
            other => panic!("expected float columns, got {other:?}"),
        }
    }

    #[test]
    fn dict_views_ship_factorized_and_compacted() {
        // 6 rows over a 5-row dictionary of which only 2 rows are referenced: the frame must
        // stay dictionary-encoded and carry exactly the 2 referenced dictionary rows.
        let dict = Arc::new(Array::from_values(
            (0..5).map(|i| Value::text(format!("payload-{i}").as_str())),
        ));
        let view = Array::Dict { indices: vec![3, 1, 3, 1, 1, 3], dict };
        let chunk = DataChunk::new(vec![Arc::new(view.clone())]);
        let bytes = encode_chunk(&chunk);
        let decoded = decode_chunk(&bytes[1..]).unwrap();
        match decoded.column(0).as_ref() {
            Array::Dict { dict, .. } => assert_eq!(dict.len(), 2, "dictionary is compacted"),
            other => panic!("expected a dict column on the wire, got {other:?}"),
        }
        assert_eq!(decoded.column(0).as_ref(), &view, "logical content survives");
    }

    #[test]
    fn unique_dict_views_degrade_to_plain() {
        // Every row distinct: the dictionary saves nothing, so the wire form is plain.
        let dict = Arc::new(Array::from_values((0..4).map(Value::Int)));
        let view = Array::Dict { indices: vec![2, 0, 3, 1], dict };
        let chunk = DataChunk::new(vec![Arc::new(view.clone())]);
        let bytes = encode_chunk(&chunk);
        let decoded = decode_chunk(&bytes[1..]).unwrap();
        assert!(!decoded.column(0).is_encoded());
        assert_eq!(decoded.column(0).as_ref(), &view);
    }

    #[test]
    fn constant_columns_run_length_compress_on_the_wire() {
        let array = Array::from_values(std::iter::repeat_n(Value::Int(42), 1000));
        let chunk = DataChunk::new(vec![Arc::new(array.clone())]);
        let bytes = encode_chunk(&chunk);
        assert!(bytes.len() < 100, "1000 constant ints must compress, got {} bytes", bytes.len());
        let decoded = decode_chunk(&bytes[1..]).unwrap();
        assert!(matches!(decoded.column(0).as_ref(), Array::RunLength { .. }));
        assert_eq!(decoded.column(0).as_ref(), &array);
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked_on() {
        assert!(decode_chunk(&[]).is_err());
        assert!(decode_schema(&[0, 3, 0, 1]).is_err());
        assert!(decode_done(&[1, 2, 3]).is_err());
        // Dict index out of bounds.
        let dict = Arc::new(Array::from_values((0..2).map(Value::Int)));
        let chunk = DataChunk::new(vec![Arc::new(Array::Dict { indices: vec![0, 1, 0], dict })]);
        let mut bytes = encode_chunk(&chunk);
        // Corrupt the first dictionary index to a huge value.
        let idx_pos = 1 + 4 + 2 + 1 + 4; // tag, rows, ncols, enc tag, index count
        bytes[idx_pos..idx_pos + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_chunk(&bytes[1..]).is_err());
    }
}
