//! The `perm-shell` client: a tiny line-oriented REPL / script driver for `permd`.
//!
//! Every input line is one request. Lines starting with `\` are meta commands mapped onto wire
//! commands; anything else is sent as `query <line>`:
//!
//! * `\prepare <name> <sql>` — prepare a (possibly parameterized) query
//! * `\exec <name> (v1, ...)` — execute a prepared statement
//! * `\deallocate <name>` — drop a prepared statement
//! * `\set <budget|timeout_ms> <n|none>` — session settings
//! * `\stats` — one consistent snapshot of every engine counter (cache, governor, queries,
//!   latency, streams, connections)
//! * `\metrics` — the same snapshot as a Prometheus text exposition
//! * `\profile` — the recent-query ring: outcome, latency, rows and (for `EXPLAIN ANALYZE`
//!   runs) the annotated operator tree
//! * `\ping`, `\shutdown`, `\q`
//!
//! Empty lines and `--` comments are skipped.
//!
//! The client speaks wire protocol version 2: [`Client::connect`] performs the `hello`
//! handshake, and query results arrive as a schema frame plus a sequence of chunk frames that
//! [`run_shell`] prints *incrementally* — rows appear as chunks arrive, acknowledged one `ack`
//! per chunk so the server never buffers more than its backpressure window. A mid-stream error
//! frame invalidates everything already printed for that statement; the shell says so
//! explicitly (no silent truncated tables), and the buffering [`Client::roundtrip`] discards
//! the partial rows entirely.

use std::io::{self, BufRead, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use perm_algebra::{DataChunk, Schema};

use crate::codec::{self, tag, PROTOCOL_VERSION};
use crate::wire::{read_bytes_frame, write_frame};

/// One decoded response frame from the server.
#[derive(Debug)]
pub enum ResponseFrame {
    /// Simple success (`+`) with its text payload.
    Ok(String),
    /// Error (`-`); mid-stream this invalidates every chunk of the current result.
    Err(String),
    /// Result schema: a stream of chunk frames follows.
    Schema(Schema),
    /// One chunk of result rows (already acknowledged to the server).
    Chunk(DataChunk),
    /// End of a result stream with the server's total row count.
    Done {
        /// Total rows delivered by the stream.
        rows: u64,
    },
}

/// A connected wire-protocol client (protocol version 2, handshake already performed).
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
}

/// First delay of [`Client::connect_with_retry`]'s backoff; doubles after every failed
/// attempt.
const RETRY_INITIAL_DELAY: Duration = Duration::from_millis(100);

impl Client {
    /// Connect to a running `permd` and negotiate the protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::handshake(TcpStream::connect(addr)?)
    }

    /// Connect with bounded exponential backoff: up to `attempts` tries, sleeping 100ms,
    /// 200ms, 400ms, ... between them. Only *connection* failures are retried — a server that
    /// accepts the socket but rejects the handshake fails immediately. Useful when the shell
    /// races a just-started `permd` (scripts, CI).
    pub fn connect_with_retry(addr: impl ToSocketAddrs, attempts: u32) -> io::Result<Client> {
        let mut delay = RETRY_INITIAL_DELAY;
        let mut last: Option<io::Error> = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match TcpStream::connect(&addr) {
                Ok(stream) => return Client::handshake(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::ConnectionRefused, "no connection attempts made")
        }))
    }

    /// Perform the protocol handshake over a freshly connected socket.
    fn handshake(writer: TcpStream) -> io::Result<Client> {
        let reader = writer.try_clone()?;
        let mut client = Client { reader, writer };
        client.send(&format!("hello {PROTOCOL_VERSION}"))?;
        match client.read_response()? {
            ResponseFrame::Ok(_) => Ok(client),
            ResponseFrame::Err(message) => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, message))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected handshake response: {other:?}"),
            )),
        }
    }

    /// Send one request frame.
    pub fn send(&mut self, command: &str) -> io::Result<()> {
        write_frame(&mut self.writer, command)
    }

    /// Read and decode one response frame. Chunk frames are acknowledged automatically, so a
    /// caller that simply keeps reading paces the server.
    pub fn read_response(&mut self) -> io::Result<ResponseFrame> {
        // A clean EOF at a frame boundary is the server closing the connection; an EOF *inside*
        // a frame means it went away mid-response (crash, kill, network drop) — report that as
        // a clear message instead of the raw "failed to fill whole buffer" read error.
        let payload = read_bytes_frame(&mut self.reader)
            .map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-frame (it may have crashed or been \
                         shut down while responding)",
                    )
                } else {
                    e
                }
            })?
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
            })?;
        let (&tag_byte, body) = payload
            .split_first()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response frame"))?;
        let invalid = |e: crate::error::ServiceError| {
            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
        };
        match tag_byte {
            tag::TEXT => Ok(ResponseFrame::Ok(decode_utf8(body)?)),
            tag::ERROR => Ok(ResponseFrame::Err(decode_utf8(body)?)),
            tag::SCHEMA => Ok(ResponseFrame::Schema(codec::decode_schema(body).map_err(invalid)?)),
            tag::RESULT => {
                let chunk = codec::decode_chunk(body).map_err(invalid)?;
                self.send("ack")?;
                Ok(ResponseFrame::Chunk(chunk))
            }
            tag::DONE => {
                Ok(ResponseFrame::Done { rows: codec::decode_done(body).map_err(invalid)? })
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown response frame tag {other}"),
            )),
        }
    }

    /// Send one request and collect the complete response: `Ok(body)` with streamed results
    /// rendered as tab-separated text (header line + one line per row, `ok` for statements
    /// without columns), or `Err(message)`. A mid-stream error discards the partial rows — the
    /// caller never sees a silently truncated table.
    pub fn roundtrip(&mut self, command: &str) -> io::Result<Result<String, String>> {
        self.send(command)?;
        match self.read_response()? {
            ResponseFrame::Ok(body) => Ok(Ok(body)),
            ResponseFrame::Err(message) => Ok(Err(message)),
            ResponseFrame::Schema(schema) => {
                let mut body = render_header(&schema);
                loop {
                    match self.read_response()? {
                        ResponseFrame::Chunk(chunk) => render_rows(&chunk, &mut body),
                        ResponseFrame::Done { .. } => return Ok(Ok(body)),
                        ResponseFrame::Err(message) => return Ok(Err(message)),
                        other => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("unexpected frame inside result stream: {other:?}"),
                            ))
                        }
                    }
                }
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response frame: {other:?}"),
            )),
        }
    }
}

/// The header line of a streamed result (`ok` for column-less statements, matching the
/// pre-streaming text rendering).
fn render_header(schema: &Schema) -> String {
    if schema.arity() == 0 {
        "ok".to_string()
    } else {
        schema.attribute_names().join("\t")
    }
}

/// Append one chunk's rows as tab-separated lines.
fn render_rows(chunk: &DataChunk, out: &mut String) {
    for row in 0..chunk.num_rows() {
        if chunk.num_columns() == 0 {
            continue;
        }
        out.push('\n');
        for col in 0..chunk.num_columns() {
            if col > 0 {
                out.push('\t');
            }
            chunk.column(col).format_into(row, out);
        }
    }
}

fn decode_utf8(bytes: &[u8]) -> io::Result<String> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not valid UTF-8"))
}

/// Translate one shell input line into a wire request; `None` means "skip" and `Some(None)`
/// inside the tuple marks `\q` (quit without talking to the server).
fn translate(line: &str) -> Option<Option<String>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with("--") {
        return None;
    }
    if let Some(meta) = line.strip_prefix('\\') {
        let meta = meta.trim();
        if meta == "q" || meta == "quit" {
            return Some(None);
        }
        return Some(Some(meta.to_string()));
    }
    Some(Some(format!("query {line}")))
}

/// Drive a shell session: read lines from `input`, send them to the server, print responses to
/// `output`. Returns the number of server-reported errors (scripts use this as an exit code).
///
/// Streamed results print incrementally — each chunk's rows are written (and flushed) as the
/// chunk arrives. If an error frame arrives after rows were already printed, the shell prints
/// an explicit invalidation notice counting the rows to disregard, so a truncated table is
/// never mistaken for a complete result.
pub fn run_shell(
    client: &mut Client,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<usize> {
    let mut errors = 0usize;
    for line in input.lines() {
        let line = line?;
        let request = match translate(&line) {
            None => continue,
            Some(None) => break,
            Some(Some(request)) => request,
        };
        client.send(&request)?;
        let mut streamed_rows: u64 = 0;
        let mut in_stream = false;
        loop {
            match client.read_response()? {
                ResponseFrame::Ok(body) => {
                    writeln!(output, "{body}")?;
                    break;
                }
                ResponseFrame::Err(message) => {
                    errors += 1;
                    if streamed_rows > 0 {
                        writeln!(
                            output,
                            "error: {message} (result invalid — disregard the {streamed_rows} \
                             row(s) above)"
                        )?;
                    } else {
                        writeln!(output, "error: {message}")?;
                    }
                    break;
                }
                ResponseFrame::Schema(schema) => {
                    in_stream = true;
                    writeln!(output, "{}", render_header(&schema))?;
                    output.flush()?;
                }
                ResponseFrame::Chunk(chunk) => {
                    let mut text = String::new();
                    render_rows(&chunk, &mut text);
                    if let Some(rows) = text.strip_prefix('\n') {
                        writeln!(output, "{rows}")?;
                        output.flush()?;
                    }
                    streamed_rows += chunk.num_rows() as u64;
                }
                ResponseFrame::Done { .. } => break,
            }
            if !in_stream {
                break;
            }
        }
        if request.trim().eq_ignore_ascii_case("shutdown") {
            break;
        }
    }
    Ok(errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_translation() {
        assert_eq!(translate(""), None);
        assert_eq!(translate("-- a comment"), None);
        assert_eq!(translate("\\q"), Some(None));
        assert_eq!(translate("\\stats"), Some(Some("stats".into())));
        assert_eq!(translate("\\exec q (1, 'x')"), Some(Some("exec q (1, 'x')".into())));
        assert_eq!(translate("SELECT 1"), Some(Some("query SELECT 1".into())));
    }
}
