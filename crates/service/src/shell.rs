//! The `perm-shell` client: a tiny line-oriented REPL / script driver for `permd`.
//!
//! Every input line is one request. Lines starting with `\` are meta commands mapped onto wire
//! commands; anything else is sent as `query <line>`:
//!
//! * `\prepare <name> <sql>` — prepare a (possibly parameterized) query
//! * `\exec <name> (v1, ...)` — execute a prepared statement
//! * `\deallocate <name>` — drop a prepared statement
//! * `\set <budget|timeout_ms> <n|none>` — session settings
//! * `\stats` — shared plan-cache counters
//! * `\ping`, `\shutdown`, `\q`
//!
//! Empty lines and `--` comments are skipped.

use std::io::{self, BufRead, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{read_frame, write_frame};

/// A connected wire-protocol client.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running `permd`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = writer.try_clone()?;
        Ok(Client { reader, writer })
    }

    /// Send one raw request and return the raw response payload (including its `+`/`-` prefix).
    pub fn request(&mut self, command: &str) -> io::Result<String> {
        write_frame(&mut self.writer, command)?;
        read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"))
    }

    /// Send one request and split the response into `Ok(body)` / `Err(message)`.
    pub fn roundtrip(&mut self, command: &str) -> io::Result<Result<String, String>> {
        let response = self.request(command)?;
        Ok(match response.strip_prefix('+') {
            Some(body) => Ok(body.to_string()),
            None => Err(response.strip_prefix('-').unwrap_or(&response).to_string()),
        })
    }
}

/// Translate one shell input line into a wire request; `None` means "skip" and `Some(None)`
/// inside the tuple marks `\q` (quit without talking to the server).
fn translate(line: &str) -> Option<Option<String>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with("--") {
        return None;
    }
    if let Some(meta) = line.strip_prefix('\\') {
        let meta = meta.trim();
        if meta == "q" || meta == "quit" {
            return Some(None);
        }
        return Some(Some(meta.to_string()));
    }
    Some(Some(format!("query {line}")))
}

/// Drive a shell session: read lines from `input`, send them to the server, print responses to
/// `output`. Returns the number of server-reported errors (scripts use this as an exit code).
pub fn run_shell(
    client: &mut Client,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<usize> {
    let mut errors = 0usize;
    for line in input.lines() {
        let line = line?;
        let request = match translate(&line) {
            None => continue,
            Some(None) => break,
            Some(Some(request)) => request,
        };
        match client.roundtrip(&request)? {
            Ok(body) => writeln!(output, "{body}")?,
            Err(message) => {
                errors += 1;
                writeln!(output, "error: {message}")?;
            }
        }
        if request.trim().eq_ignore_ascii_case("shutdown") {
            break;
        }
    }
    Ok(errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_translation() {
        assert_eq!(translate(""), None);
        assert_eq!(translate("-- a comment"), None);
        assert_eq!(translate("\\q"), Some(None));
        assert_eq!(translate("\\stats"), Some(Some("stats".into())));
        assert_eq!(translate("\\exec q (1, 'x')"), Some(Some("exec q (1, 'x')".into())));
        assert_eq!(translate("SELECT 1"), Some(Some("query SELECT 1".into())));
    }
}
