//! # perm-service
//!
//! The serving layer of the Perm reproduction: the paper's system (conf_icde_GlavicA09) is a
//! *live DBMS module* answering SQL-PLE queries from real clients, not a one-shot library call.
//! This crate supplies the missing engine / session / server split:
//!
//! * [`Engine`] — the thread-safe shared core: one [`perm_storage::Catalog`] with atomic
//!   multi-table snapshots, the provenance-aware SQL pipeline (parse → analyze → rewrite →
//!   optimize → execute) and a shared LRU [`cache::PlanCache`] keyed by normalized SQL text and
//!   invalidated on DDL/DML commits.
//! * [`Session`] — per-connection state: row-budget / timeout settings and named **prepared
//!   statements** with `$1`-style parameters (plan once, bind + execute many).
//! * [`server`] / [`shell`] — a small length-prefixed text protocol over TCP (`permd`, one
//!   thread per connection, graceful shutdown) and the matching `perm-shell` client.
//!
//! The engine is rewriter-agnostic: `perm-core` injects its provenance rewriter through the
//! [`perm_sql::ProvenanceRewrite`] trait, which keeps the dependency graph acyclic
//! (`perm-core`'s `PermDb` facade is itself a thin single-session wrapper over [`Engine`]).
//!
//! ```
//! use std::sync::Arc;
//! use perm_service::Engine;
//!
//! let engine = Arc::new(Engine::new());
//! let session = engine.session();
//! session.execute("CREATE TABLE items (id INT, price INT)").unwrap();
//! session.execute("INSERT INTO items VALUES (1, 100), (2, 10)").unwrap();
//! let mut session = session;
//! let params = session.prepare("pricey", "SELECT id FROM items WHERE price > $1").unwrap();
//! assert_eq!(params, 1);
//! let result = session
//!     .execute_prepared("pricey", vec![perm_algebra::Value::Int(50)])
//!     .unwrap();
//! assert_eq!(result.num_rows(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The serving layer must never take the process down on a recoverable condition: every
// would-be `unwrap`/`expect` in non-test code has to surface as a `ServiceError` instead
// (tests are exempt via clippy.toml).
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod codec;
pub mod engine;
pub mod error;
pub mod governor;
pub mod metrics;
pub mod server;
pub mod session;
pub mod shell;
pub mod stream;
pub mod wire;

pub use cache::{normalize_sql, CacheStats, PlanCache};
pub use codec::PROTOCOL_VERSION;
pub use engine::{Engine, PreparedPlan};
pub use error::ServiceError;
pub use governor::{Governor, GovernorLimits, GovernorStats, QueryGrant};
pub use metrics::{
    render_stats_text, Metrics, MetricsSnapshot, QueryOutcome, QueryTicket, StatsSnapshot,
};
pub use server::{serve, ServerHandle};
pub use session::{Session, SessionOptions};
pub use shell::Client;
pub use stream::QueryStream;
