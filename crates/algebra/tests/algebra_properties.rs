//! Property-based tests for the algebra layer: value semantics, date arithmetic, schema
//! resolution and plan invariants that the rest of the system silently relies on.

use proptest::prelude::*;

use perm_algebra::value::{
    add_months_to_days, civil_from_days, days_from_civil, format_date, parse_date,
};
use perm_algebra::{Attribute, DataType, PlanBuilder, ScalarExpr, Schema, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000.0f64..1000.0).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::text),
        (-20000i32..20000).prop_map(Value::Date),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Calendar conversion round-trips for every day in a ~170-year window.
    #[test]
    fn civil_date_round_trip(days in -30000i32..32000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
        let text = format_date(days);
        prop_assert_eq!(parse_date(&text).unwrap(), days);
    }

    /// Adding months is monotone and inverse-consistent at month granularity.
    #[test]
    fn add_months_is_monotone(days in -10000i32..10000, months in -48i32..48) {
        let shifted = add_months_to_days(days, months);
        if months > 0 {
            prop_assert!(shifted > days - 32, "adding months should not move far backwards");
        }
        if months < 0 {
            prop_assert!(shifted < days + 32);
        }
        // Shifting forward then backward lands within one month-length of the original day
        // (clamping at month ends loses at most a few days).
        let back = add_months_to_days(shifted, -months);
        prop_assert!((back - days).abs() <= 3, "round trip drifted: {days} -> {shifted} -> {back}");
    }

    /// Grouping equality (`Eq`) is reflexive and symmetric, and hashing is consistent with it.
    #[test]
    fn value_grouping_equality_laws(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        prop_assert_eq!(&a, &a);
        prop_assert_eq!(a == b, b == a);
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// The total order used for sorting is antisymmetric and consistent with equality.
    #[test]
    fn value_total_order_consistency(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }

    /// SQL comparison is only defined when neither side is NULL, and then agrees with the total
    /// order for same-type operands.
    #[test]
    fn sql_cmp_agrees_with_total_order(a in value_strategy(), b in value_strategy()) {
        match a.sql_cmp(&b) {
            None => prop_assert!(
                a.is_null() || b.is_null() || a.data_type() != b.data_type(),
                "sql_cmp returned None for comparable operands {a:?} vs {b:?}"
            ),
            Some(ord) => prop_assert_eq!(ord, a.cmp(&b)),
        }
    }

    /// Schema resolution: every attribute can be found under its plain and qualified name after
    /// concatenation, as long as the plain name is unambiguous.
    #[test]
    fn schema_concat_resolution(n_left in 1usize..5, n_right in 1usize..5) {
        let left = Schema::new(
            (0..n_left).map(|i| Attribute::qualified("l", format!("a{i}"), DataType::Int)).collect(),
        );
        let right = Schema::new(
            (0..n_right).map(|i| Attribute::qualified("r", format!("b{i}"), DataType::Text)).collect(),
        );
        let combined = left.concat(&right);
        prop_assert_eq!(combined.arity(), n_left + n_right);
        for i in 0..n_left {
            prop_assert_eq!(combined.resolve(&format!("l.a{i}")).unwrap(), i);
            prop_assert_eq!(combined.resolve(&format!("a{i}")).unwrap(), i);
        }
        for i in 0..n_right {
            prop_assert_eq!(combined.resolve(&format!("r.b{i}")).unwrap(), n_left + i);
        }
    }

    /// Expression column-shift composes additively and never loses referenced columns.
    #[test]
    fn expression_shift_composes(base in 0usize..5, shift_a in 0usize..7, shift_b in 0usize..7) {
        let expr = ScalarExpr::column(base, "c")
            .eq(ScalarExpr::literal(1i64))
            .and(ScalarExpr::column(base + 1, "d").not_eq(ScalarExpr::literal(2i64)));
        let once = expr.shift_columns(shift_a).shift_columns(shift_b);
        let combined = expr.shift_columns(shift_a + shift_b);
        prop_assert_eq!(once, combined);
    }

    /// Plans built from arbitrary small schemas validate and report consistent schema arity.
    #[test]
    fn plan_builder_projection_arity(cols in 1usize..6, keep in 1usize..6) {
        let keep = keep.min(cols);
        let schema = Schema::new(
            (0..cols).map(|i| Attribute::new(format!("c{i}"), DataType::Int)).collect(),
        );
        let builder = PlanBuilder::scan("t", schema, 0);
        let names: Vec<String> = (0..keep).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let plan = builder.project_columns(&name_refs).unwrap().build();
        plan.validate().unwrap();
        prop_assert_eq!(plan.schema().arity(), keep);
    }
}
