//! Typed plan inference and verification.
//!
//! [`LogicalPlan::verify`] infers a [`TypedSchema`] — per-column [`DataType`], nullability and
//! provenance flag — bottom-up over the plan and all its scalar expressions, while *strictly*
//! checking the operator typing rules that [`LogicalPlan::validate`] (structural: arity and
//! column bounds) does not:
//!
//! * selection / join predicates and `CASE WHEN` conditions must be boolean-typed,
//! * comparison and arithmetic operands must share a [`DataType::common_type`],
//! * set-operation inputs must be pairwise type-compatible, not just arity-compatible,
//! * aggregate inputs must fit the aggregate (`SUM` / `AVG` need numeric arguments),
//! * outer joins force the null-supplying side's columns to nullable,
//! * prepared-statement parameters must resolve to a concrete type from at least one
//!   comparison / arithmetic context (`$1` used only as `$1 IS NULL` is rejected),
//! * `VALUES` rows must match the declared schema in arity and type.
//!
//! Errors come back as a structured [`TypeError`] carrying the *plan path* from the root to the
//! offending operator (e.g. `Projection > Join(left) > Selection`), so a pass-ordering bug in
//! the optimizer or a provenance-rewrite regression names the exact operator it broke.
//!
//! The same inference is the single source of truth for output arity: [`output_arity`] here is
//! what [`LogicalPlan::output_arity`] delegates to, and `verify()` cross-checks the inferred
//! column count against it at every node, so arity and typing can never drift apart.
//!
//! Verification runs at every plan boundary (after SQL binding, after the provenance rewrite,
//! after each optimizer pass) in debug builds; release builds only verify at PREPARE time
//! unless [`verification_enabled`] is switched on via `PERM_VERIFY_PLANS=1`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

use crate::error::AlgebraError;
use crate::expr::{
    AggregateFunction, BinaryOperator, ScalarExpr, ScalarFunction, SublinkKind, UnaryOperator,
};
use crate::plan::{JoinKind, LogicalPlan, ProvenanceAnnotationKind};
use crate::value::{DataType, Value};

/// Should optimizer-/rewrite-boundary plan verification run?
///
/// Defaults to **on** in debug builds and **off** in release builds, so the benchmark hot path
/// pays nothing; the `PERM_VERIFY_PLANS` environment variable overrides in both directions
/// (`PERM_VERIFY_PLANS=1` turns verification on for release CI runs, `PERM_VERIFY_PLANS=0`
/// silences it in debug builds). The value is read once and cached for the process lifetime.
pub fn verification_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("PERM_VERIFY_PLANS") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => cfg!(debug_assertions),
    })
}

/// The inferred type of one output column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnType {
    /// The column's data type (`Null` = statically unknown, e.g. a bare NULL literal).
    pub data_type: DataType,
    /// Whether the column can contain NULL (base columns are assumed nullable — the catalog
    /// stores no NOT NULL constraints — and outer joins force their null-supplying side).
    pub nullable: bool,
    /// Whether the column is a provenance attribute (set by the provenance rewrite or a
    /// `PROVENANCE (...)` annotation and propagated through direct column references).
    pub provenance: bool,
}

impl ColumnType {
    /// A non-provenance, nullable column of the given type.
    pub fn nullable(data_type: DataType) -> ColumnType {
        ColumnType { data_type, nullable: true, provenance: false }
    }
}

impl fmt::Display for ColumnType {
    /// Renders as the type name plus `?` when nullable and `*` when a provenance column,
    /// e.g. `INT`, `TEXT?`, `INT?*`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.data_type)?;
        if self.nullable {
            f.write_str("?")?;
        }
        if self.provenance {
            f.write_str("*")?;
        }
        Ok(())
    }
}

/// The inferred output type of a plan node: one [`ColumnType`] per output column.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypedSchema {
    columns: Vec<ColumnType>,
}

impl TypedSchema {
    /// Build from a column list.
    pub fn new(columns: Vec<ColumnType>) -> TypedSchema {
        TypedSchema { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column types.
    pub fn columns(&self) -> &[ColumnType] {
        &self.columns
    }

    /// The type of column `i`, if in bounds.
    pub fn column(&self, i: usize) -> Option<&ColumnType> {
        self.columns.get(i)
    }

    /// Concatenate with another schema (join output).
    fn concat(&self, other: &TypedSchema) -> TypedSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().copied());
        TypedSchema { columns }
    }
}

impl fmt::Display for TypedSchema {
    /// Renders as `(INT, TEXT?, INT?*)` — see [`ColumnType`]'s `Display` for the suffixes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str(")")
    }
}

/// What went wrong, inside a [`TypeError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeErrorKind {
    /// An expression or column did not have the type an operator required.
    Mismatch {
        /// The type (or type family) the operator required.
        expected: String,
        /// The type actually inferred.
        actual: String,
    },
    /// A prepared-statement parameter was never used in a context that fixes its type.
    UnresolvedParameter {
        /// Zero-based parameter index (`$1` has index 0).
        index: usize,
    },
    /// A structural invariant (column bounds, arity agreement) was violated. Boxed to keep
    /// `TypeError` small on the `Result` hot path (clippy: `result_large_err`).
    Structural(Box<AlgebraError>),
}

/// A typing error with the plan path from the root to the operator that raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description of the typing context ("selection predicate", ...).
    pub context: String,
    /// The specific failure.
    pub kind: TypeErrorKind,
    /// Operator path from the plan root to the offending operator, e.g.
    /// `["Projection", "Join(left)", "Selection"]`.
    pub path: Vec<String>,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TypeErrorKind::Mismatch { expected, actual } => {
                write!(f, "type mismatch in {}: expected {expected}, got {actual}", self.context)?
            }
            TypeErrorKind::UnresolvedParameter { index } => write!(
                f,
                "parameter ${} does not resolve to a concrete type (used only in untyped contexts)",
                index + 1
            )?,
            TypeErrorKind::Structural(e) => write!(f, "{e} (in {})", self.context)?,
        }
        if !self.path.is_empty() {
            write!(f, " (at {})", self.path.join(" > "))?;
        }
        Ok(())
    }
}

impl std::error::Error for TypeError {}

impl From<TypeError> for AlgebraError {
    fn from(e: TypeError) -> AlgebraError {
        match e.kind {
            TypeErrorKind::Mismatch { expected, actual } => {
                AlgebraError::TypeMismatch { context: e.context, expected, actual, path: e.path }
            }
            TypeErrorKind::UnresolvedParameter { index } => AlgebraError::TypeMismatch {
                context: format!("parameter ${}", index + 1),
                expected: "a concrete type from at least one comparison or arithmetic use".into(),
                actual: "unresolved".into(),
                path: e.path,
            },
            TypeErrorKind::Structural(inner) => match *inner {
                // Keep the context and operator path for invariant violations; other
                // structural errors already carry their own precise payload.
                AlgebraError::Internal(msg) => AlgebraError::Internal(format!(
                    "{msg} (in {}{})",
                    e.context,
                    if e.path.is_empty() {
                        String::new()
                    } else {
                        format!(", at {}", e.path.join(" > "))
                    }
                )),
                other => other,
            },
        }
    }
}

/// The number of output columns of a plan node, computed without materialising the full
/// [`crate::Schema`] (which clones attribute names).
///
/// This is the *single* authoritative arity derivation: [`LogicalPlan::output_arity`]
/// delegates here, and [`LogicalPlan::verify`] cross-checks the length of the inferred
/// [`TypedSchema`] against it at every node, so the cheap arity and the full type inference
/// cannot silently drift apart.
pub fn output_arity(plan: &LogicalPlan) -> usize {
    match plan {
        LogicalPlan::BaseRelation { schema, .. } | LogicalPlan::Values { schema, .. } => {
            schema.arity()
        }
        LogicalPlan::Projection { exprs, .. } => exprs.len(),
        LogicalPlan::Aggregation { group_by, aggregates, .. } => group_by.len() + aggregates.len(),
        LogicalPlan::Join { left, right, .. } => output_arity(left) + output_arity(right),
        LogicalPlan::SetOp { left, .. } => output_arity(left),
        LogicalPlan::Selection { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. }
        | LogicalPlan::ProvenanceAnnotation { input, .. } => output_arity(input),
    }
}

impl LogicalPlan {
    /// Infer this plan's [`TypedSchema`] while strictly checking operator typing rules.
    ///
    /// See the [module documentation](self) for the rule catalogue. Returns the root's typed
    /// schema on success and a [`TypeError`] naming the operator path on failure.
    pub fn verify(&self) -> Result<TypedSchema, TypeError> {
        let mut v = Verifier::default();
        let schema = v.verify_plan(self)?;
        v.check_parameters_resolved()?;
        Ok(schema)
    }
}

/// Is the type usable where a boolean is required? (`Null` = untyped NULL / parameter.)
fn booleanish(t: DataType) -> bool {
    matches!(t, DataType::Bool | DataType::Null)
}

/// Is the type usable where text is required?
fn textish(t: DataType) -> bool {
    matches!(t, DataType::Text | DataType::Null)
}

/// Is the type usable where a number is required?
fn numericish(t: DataType) -> bool {
    matches!(t, DataType::Int | DataType::Float | DataType::Null)
}

/// Is the type usable where a date is required?
fn dateish(t: DataType) -> bool {
    matches!(t, DataType::Date | DataType::Null)
}

/// Bottom-up type inference walker; tracks the operator path for error reporting and the
/// types that prepared-statement parameters unify with.
#[derive(Default)]
struct Verifier {
    path: Vec<String>,
    /// Concrete type each parameter has unified with so far (absent = still unknown).
    param_types: BTreeMap<usize, DataType>,
    /// Operator path of the first occurrence of each parameter (for error reporting).
    param_paths: BTreeMap<usize, Vec<String>>,
}

impl Verifier {
    fn mismatch(
        &self,
        context: impl Into<String>,
        expected: impl Into<String>,
        actual: impl Into<String>,
    ) -> TypeError {
        TypeError {
            context: context.into(),
            kind: TypeErrorKind::Mismatch { expected: expected.into(), actual: actual.into() },
            path: self.path.clone(),
        }
    }

    fn structural(&self, context: impl Into<String>, inner: AlgebraError) -> TypeError {
        TypeError {
            context: context.into(),
            kind: TypeErrorKind::Structural(Box::new(inner)),
            path: self.path.clone(),
        }
    }

    fn scoped<T>(
        &mut self,
        label: impl Into<String>,
        f: impl FnOnce(&mut Verifier) -> Result<T, TypeError>,
    ) -> Result<T, TypeError> {
        self.path.push(label.into());
        let out = f(self);
        self.path.pop();
        out
    }

    /// After the whole plan has been walked: every parameter must have unified with a concrete
    /// type somewhere.
    fn check_parameters_resolved(&self) -> Result<(), TypeError> {
        for (&index, first_path) in &self.param_paths {
            let resolved = self.param_types.get(&index).is_some_and(|t| *t != DataType::Null);
            if !resolved {
                return Err(TypeError {
                    context: format!("parameter ${}", index + 1),
                    kind: TypeErrorKind::UnresolvedParameter { index },
                    path: first_path.clone(),
                });
            }
        }
        Ok(())
    }

    /// If `expr` is a bare parameter, unify it with the sibling type `t`.
    fn bind_parameter(
        &mut self,
        expr: &ScalarExpr,
        t: DataType,
        context: &str,
    ) -> Result<(), TypeError> {
        let ScalarExpr::Parameter { index } = expr else { return Ok(()) };
        if t == DataType::Null {
            return Ok(());
        }
        match self.param_types.get(index).copied() {
            None | Some(DataType::Null) => {
                self.param_types.insert(*index, t);
                Ok(())
            }
            Some(prev) => match prev.common_type(t) {
                Some(merged) => {
                    self.param_types.insert(*index, merged);
                    Ok(())
                }
                None => Err(self.mismatch(
                    format!("parameter ${} in {context}", index + 1),
                    prev.to_string(),
                    t.to_string(),
                )),
            },
        }
    }

    fn verify_plan(&mut self, plan: &LogicalPlan) -> Result<TypedSchema, TypeError> {
        let out = match plan {
            LogicalPlan::BaseRelation { name, schema, .. } => {
                self.scoped(format!("BaseRelation({name})"), |_| {
                    // The catalog stores no NOT NULL constraints, so every base column is
                    // assumed nullable.
                    Ok(TypedSchema::new(
                        schema
                            .attributes()
                            .iter()
                            .map(|a| ColumnType {
                                data_type: a.data_type,
                                nullable: true,
                                provenance: a.provenance,
                            })
                            .collect(),
                    ))
                })?
            }
            LogicalPlan::Values { schema, rows } => self.scoped("Values", |v| {
                let mut columns: Vec<ColumnType> = schema
                    .attributes()
                    .iter()
                    .map(|a| ColumnType {
                        data_type: a.data_type,
                        nullable: false,
                        provenance: a.provenance,
                    })
                    .collect();
                for (i, row) in rows.iter().enumerate() {
                    if row.arity() != schema.arity() {
                        return Err(v.structural(
                            format!("VALUES row {i}"),
                            AlgebraError::Internal(format!(
                                "row has {} values for a schema of width {}",
                                row.arity(),
                                schema.arity()
                            )),
                        ));
                    }
                    for (j, value) in row.values().iter().enumerate() {
                        if matches!(value, Value::Null) {
                            columns[j].nullable = true;
                        } else if !value.data_type().coercible_to(columns[j].data_type) {
                            return Err(v.mismatch(
                                format!("VALUES row {i}, column {j}"),
                                columns[j].data_type.to_string(),
                                value.data_type().to_string(),
                            ));
                        }
                    }
                }
                Ok(TypedSchema::new(columns))
            })?,
            LogicalPlan::Projection { input, exprs, .. } => {
                self.scoped("Projection", |v| {
                    let in_schema = v.verify_plan(input)?;
                    let mut columns = Vec::with_capacity(exprs.len());
                    for (e, name) in exprs {
                        let mut c = v.verify_expr(
                            e,
                            &in_schema,
                            &format!("projection expression '{name}'"),
                        )?;
                        // The provenance flag only survives direct column references, matching
                        // `LogicalPlan::schema()`.
                        c.provenance = e
                            .as_column()
                            .and_then(|i| in_schema.column(i))
                            .is_some_and(|c| c.provenance);
                        columns.push(c);
                    }
                    Ok(TypedSchema::new(columns))
                })?
            }
            LogicalPlan::Selection { input, predicate } => self.scoped("Selection", |v| {
                let in_schema = v.verify_plan(input)?;
                let p = v.verify_expr(predicate, &in_schema, "selection predicate")?;
                if !booleanish(p.data_type) {
                    return Err(v.mismatch(
                        "selection predicate",
                        DataType::Bool.to_string(),
                        p.data_type.to_string(),
                    ));
                }
                Ok(in_schema)
            })?,
            LogicalPlan::Join { left, right, kind, condition } => {
                let lt = self.scoped("Join(left)", |v| v.verify_plan(left))?;
                let rt = self.scoped("Join(right)", |v| v.verify_plan(right))?;
                self.scoped("Join", |v| {
                    let mut out = lt.concat(&rt);
                    if let Some(cond) = condition {
                        let c = v.verify_expr(cond, &out, "join condition")?;
                        if !booleanish(c.data_type) {
                            return Err(v.mismatch(
                                format!("{kind} join condition"),
                                DataType::Bool.to_string(),
                                c.data_type.to_string(),
                            ));
                        }
                    }
                    // Outer joins force the null-supplying side(s) to nullable.
                    let (null_left, null_right) = match kind {
                        JoinKind::Cross | JoinKind::Inner => (false, false),
                        JoinKind::LeftOuter => (false, true),
                        JoinKind::RightOuter => (true, false),
                        JoinKind::FullOuter => (true, true),
                    };
                    let split = lt.arity();
                    for (i, c) in out.columns.iter_mut().enumerate() {
                        if (i < split && null_left) || (i >= split && null_right) {
                            c.nullable = true;
                        }
                    }
                    Ok(out)
                })?
            }
            LogicalPlan::Aggregation { input, group_by, aggregates } => {
                self.scoped("Aggregation", |v| {
                    let in_schema = v.verify_plan(input)?;
                    let mut columns = Vec::with_capacity(group_by.len() + aggregates.len());
                    for (e, name) in group_by {
                        let mut c =
                            v.verify_expr(e, &in_schema, &format!("group-by expression '{name}'"))?;
                        c.provenance = e
                            .as_column()
                            .and_then(|i| in_schema.column(i))
                            .is_some_and(|c| c.provenance);
                        columns.push(c);
                    }
                    for (agg, name) in aggregates {
                        let arg_type = match &agg.arg {
                            Some(arg) => {
                                let a = v.verify_expr(
                                    arg,
                                    &in_schema,
                                    &format!("aggregate '{name}' argument"),
                                )?;
                                if matches!(
                                    agg.func,
                                    AggregateFunction::Sum | AggregateFunction::Avg
                                ) && !numericish(a.data_type)
                                {
                                    return Err(v.mismatch(
                                        format!("aggregate {}('{name}')", agg.func.name()),
                                        "a numeric argument".to_string(),
                                        a.data_type.to_string(),
                                    ));
                                }
                                a.data_type
                            }
                            None => DataType::Int, // COUNT(*)
                        };
                        columns.push(ColumnType {
                            data_type: agg.func.result_type(arg_type),
                            // COUNT over an empty group is 0, never NULL; every other
                            // aggregate returns NULL for an empty group.
                            nullable: agg.func != AggregateFunction::Count,
                            provenance: false,
                        });
                    }
                    Ok(TypedSchema::new(columns))
                })?
            }
            LogicalPlan::SetOp { left, right, kind, .. } => {
                let lt = self.scoped(format!("SetOp[{kind}](left)"), |v| v.verify_plan(left))?;
                let rt = self.scoped(format!("SetOp[{kind}](right)"), |v| v.verify_plan(right))?;
                self.scoped(format!("SetOp[{kind}]"), |v| {
                    if lt.arity() != rt.arity() {
                        return Err(v.structural(
                            format!("{kind} inputs"),
                            AlgebraError::NotUnionCompatible {
                                left_width: lt.arity(),
                                right_width: rt.arity(),
                            },
                        ));
                    }
                    let mut columns = Vec::with_capacity(lt.arity());
                    for (i, (l, r)) in lt.columns.iter().zip(rt.columns.iter()).enumerate() {
                        let Some(common) = l.data_type.common_type(r.data_type) else {
                            return Err(v.mismatch(
                                format!("{kind} column {i}"),
                                l.data_type.to_string(),
                                r.data_type.to_string(),
                            ));
                        };
                        columns.push(ColumnType {
                            data_type: common,
                            nullable: l.nullable || r.nullable,
                            // The output schema takes names/flags from the left input,
                            // matching `LogicalPlan::schema()`.
                            provenance: l.provenance,
                        });
                    }
                    Ok(TypedSchema::new(columns))
                })?
            }
            LogicalPlan::Sort { input, keys } => self.scoped("Sort", |v| {
                let in_schema = v.verify_plan(input)?;
                for key in keys {
                    v.verify_expr(&key.expr, &in_schema, "sort key")?;
                }
                Ok(in_schema)
            })?,
            LogicalPlan::Limit { input, .. } => self.scoped("Limit", |v| v.verify_plan(input))?,
            LogicalPlan::SubqueryAlias { input, alias } => {
                self.scoped(format!("SubqueryAlias({alias})"), |v| v.verify_plan(input))?
            }
            LogicalPlan::ProvenanceAnnotation { input, kind } => {
                self.scoped("ProvenanceAnnotation", |v| {
                    let mut out = v.verify_plan(input)?;
                    if let ProvenanceAnnotationKind::AlreadyRewritten(attrs) = kind {
                        // Flag the listed attributes as provenance columns; name matching
                        // needs the named schema, mirroring `LogicalPlan::schema()`.
                        let named = input.schema();
                        for (i, a) in named.attributes().iter().enumerate() {
                            if attrs.iter().any(|p| a.matches(p)) {
                                if let Some(c) = out.columns.get_mut(i) {
                                    c.provenance = true;
                                }
                            }
                        }
                    }
                    Ok(out)
                })?
            }
        };
        // Arity/typing drift tripwire: the cheap `output_arity` and the full inference must
        // always agree on the column count.
        if out.arity() != output_arity(plan) {
            return Err(self.structural(
                "plan arity",
                AlgebraError::Internal(format!(
                    "inferred {} columns but output_arity() reports {}",
                    out.arity(),
                    output_arity(plan)
                )),
            ));
        }
        Ok(out)
    }

    fn verify_expr(
        &mut self,
        expr: &ScalarExpr,
        input: &TypedSchema,
        context: &str,
    ) -> Result<ColumnType, TypeError> {
        match expr {
            ScalarExpr::Column { index, name } => match input.column(*index) {
                Some(c) => Ok(*c),
                None => Err(self.structural(
                    format!("column '{name}' in {context}"),
                    AlgebraError::ColumnIndexOutOfBounds { index: *index, width: input.arity() },
                )),
            },
            ScalarExpr::Literal(v) => Ok(ColumnType {
                data_type: v.data_type(),
                nullable: matches!(v, Value::Null),
                provenance: false,
            }),
            ScalarExpr::Parameter { index } => {
                self.param_paths.entry(*index).or_insert_with(|| self.path.clone());
                let data_type = self.param_types.get(index).copied().unwrap_or(DataType::Null);
                Ok(ColumnType::nullable(data_type))
            }
            ScalarExpr::BinaryOp { op, left, right } => {
                let l = self.verify_expr(left, input, context)?;
                let r = self.verify_expr(right, input, context)?;
                // A bare parameter takes its sibling's type (`price > $1` makes $1 an INT).
                self.bind_parameter(left, r.data_type, context)?;
                self.bind_parameter(right, l.data_type, context)?;
                self.verify_binary(*op, l, r, context)
            }
            ScalarExpr::UnaryOp { op, expr: operand } => {
                let o = self.verify_expr(operand, input, context)?;
                match op {
                    UnaryOperator::Not => {
                        if !booleanish(o.data_type) {
                            return Err(self.mismatch(
                                format!("NOT operand in {context}"),
                                DataType::Bool.to_string(),
                                o.data_type.to_string(),
                            ));
                        }
                        Ok(ColumnType { data_type: DataType::Bool, ..o })
                    }
                    UnaryOperator::Neg => {
                        if !numericish(o.data_type) {
                            return Err(self.mismatch(
                                format!("unary '-' operand in {context}"),
                                "a numeric operand".to_string(),
                                o.data_type.to_string(),
                            ));
                        }
                        Ok(o)
                    }
                    UnaryOperator::IsNull | UnaryOperator::IsNotNull => Ok(ColumnType {
                        data_type: DataType::Bool,
                        nullable: false,
                        provenance: false,
                    }),
                }
            }
            ScalarExpr::Function { func, args } => {
                self.verify_function(*func, args, input, context)
            }
            ScalarExpr::Case { operand, branches, else_expr } => {
                let operand_type =
                    operand.as_deref().map(|o| self.verify_expr(o, input, context)).transpose()?;
                let mut result: Option<DataType> = None;
                let mut nullable = else_expr.is_none();
                for (when, then) in branches {
                    let w = self.verify_expr(when, input, context)?;
                    match operand_type {
                        // Simple CASE: the operand is compared against each WHEN value.
                        Some(o) => {
                            if o.data_type.common_type(w.data_type).is_none() {
                                return Err(self.mismatch(
                                    format!("CASE WHEN comparison in {context}"),
                                    o.data_type.to_string(),
                                    w.data_type.to_string(),
                                ));
                            }
                        }
                        // Searched CASE: each WHEN is a condition.
                        None => {
                            if !booleanish(w.data_type) {
                                return Err(self.mismatch(
                                    format!("CASE WHEN condition in {context}"),
                                    DataType::Bool.to_string(),
                                    w.data_type.to_string(),
                                ));
                            }
                        }
                    }
                    let t = self.verify_expr(then, input, context)?;
                    nullable |= t.nullable;
                    result = Some(self.merge_branch_type(result, t.data_type, context)?);
                }
                if let Some(e) = else_expr.as_deref() {
                    let t = self.verify_expr(e, input, context)?;
                    nullable |= t.nullable;
                    result = Some(self.merge_branch_type(result, t.data_type, context)?);
                }
                Ok(ColumnType {
                    data_type: result.unwrap_or(DataType::Null),
                    nullable,
                    provenance: false,
                })
            }
            ScalarExpr::Cast { expr: inner, data_type } => {
                let i = self.verify_expr(inner, input, context)?;
                Ok(ColumnType { data_type: *data_type, nullable: i.nullable, provenance: false })
            }
            ScalarExpr::InList { expr: operand, list, .. } => {
                let o = self.verify_expr(operand, input, context)?;
                let mut nullable = o.nullable;
                for item in list {
                    let t = self.verify_expr(item, input, context)?;
                    self.bind_parameter(item, o.data_type, context)?;
                    self.bind_parameter(operand, t.data_type, context)?;
                    if o.data_type.common_type(t.data_type).is_none() {
                        return Err(self.mismatch(
                            format!("IN list in {context}"),
                            o.data_type.to_string(),
                            t.data_type.to_string(),
                        ));
                    }
                    nullable |= t.nullable;
                }
                Ok(ColumnType { data_type: DataType::Bool, nullable, provenance: false })
            }
            ScalarExpr::Sublink { kind, operand, plan, .. } => {
                let sub = self.scoped(format!("Sublink[{kind:?}]"), |v| v.verify_plan(plan))?;
                let single_column = |v: &Verifier| -> Result<ColumnType, TypeError> {
                    match sub.columns() {
                        [c] => Ok(*c),
                        cols => Err(v.mismatch(
                            format!("{kind:?} sublink in {context}"),
                            "a subquery with exactly 1 output column".to_string(),
                            format!("{} columns", cols.len()),
                        )),
                    }
                };
                match kind {
                    SublinkKind::Exists => Ok(ColumnType {
                        data_type: DataType::Bool,
                        nullable: false,
                        provenance: false,
                    }),
                    SublinkKind::Scalar => {
                        // An empty subquery result yields NULL.
                        Ok(ColumnType { nullable: true, ..single_column(self)? })
                    }
                    SublinkKind::InSubquery => {
                        let col = single_column(self)?;
                        let Some(op) = operand.as_deref() else {
                            return Err(self.structural(
                                format!("IN sublink in {context}"),
                                AlgebraError::Internal(
                                    "IN sublink is missing its left operand".into(),
                                ),
                            ));
                        };
                        let o = self.verify_expr(op, input, context)?;
                        self.bind_parameter(op, col.data_type, context)?;
                        if o.data_type.common_type(col.data_type).is_none() {
                            return Err(self.mismatch(
                                format!("IN sublink in {context}"),
                                o.data_type.to_string(),
                                col.data_type.to_string(),
                            ));
                        }
                        Ok(ColumnType {
                            data_type: DataType::Bool,
                            nullable: o.nullable || col.nullable,
                            provenance: false,
                        })
                    }
                }
            }
        }
    }

    fn merge_branch_type(
        &self,
        acc: Option<DataType>,
        next: DataType,
        context: &str,
    ) -> Result<DataType, TypeError> {
        match acc {
            None => Ok(next),
            Some(prev) => prev.common_type(next).ok_or_else(|| {
                self.mismatch(
                    format!("CASE result branches in {context}"),
                    prev.to_string(),
                    next.to_string(),
                )
            }),
        }
    }

    fn verify_binary(
        &self,
        op: BinaryOperator,
        l: ColumnType,
        r: ColumnType,
        context: &str,
    ) -> Result<ColumnType, TypeError> {
        use BinaryOperator::*;
        let nullable = l.nullable || r.nullable;
        let boolean =
            |nullable| ColumnType { data_type: DataType::Bool, nullable, provenance: false };
        match op {
            And | Or => {
                for side in [l, r] {
                    if !booleanish(side.data_type) {
                        return Err(self.mismatch(
                            format!("operator {op} in {context}"),
                            DataType::Bool.to_string(),
                            side.data_type.to_string(),
                        ));
                    }
                }
                Ok(boolean(nullable))
            }
            Like | NotLike => {
                for side in [l, r] {
                    if !textish(side.data_type) {
                        return Err(self.mismatch(
                            format!("operator {op} in {context}"),
                            DataType::Text.to_string(),
                            side.data_type.to_string(),
                        ));
                    }
                }
                Ok(boolean(nullable))
            }
            // Null-safe comparisons never return NULL.
            IsNotDistinctFrom | IsDistinctFrom => {
                self.require_common(op, l, r, context)?;
                Ok(boolean(false))
            }
            Eq | NotEq | Lt | LtEq | Gt | GtEq => {
                self.require_common(op, l, r, context)?;
                Ok(boolean(nullable))
            }
            Add => {
                // `+` doubles as text concatenation (`Value::add`).
                if l.data_type == DataType::Text && r.data_type == DataType::Text {
                    return Ok(ColumnType {
                        data_type: DataType::Text,
                        nullable,
                        provenance: false,
                    });
                }
                let common = self.require_common(op, l, r, context)?;
                self.require_family(op, common, true, context)?;
                Ok(ColumnType { data_type: common, nullable, provenance: false })
            }
            Sub => {
                let common = self.require_common(op, l, r, context)?;
                self.require_family(op, common, true, context)?;
                Ok(ColumnType { data_type: common, nullable, provenance: false })
            }
            Mul | Div | Mod => {
                let common = self.require_common(op, l, r, context)?;
                self.require_family(op, common, false, context)?;
                Ok(ColumnType { data_type: common, nullable, provenance: false })
            }
        }
    }

    fn require_common(
        &self,
        op: BinaryOperator,
        l: ColumnType,
        r: ColumnType,
        context: &str,
    ) -> Result<DataType, TypeError> {
        l.data_type.common_type(r.data_type).ok_or_else(|| {
            self.mismatch(
                format!("operator {op} in {context}"),
                l.data_type.to_string(),
                r.data_type.to_string(),
            )
        })
    }

    /// Arithmetic operand family check: `+`/`-` also accept dates (date ± days), `*`/`/`/`%`
    /// are numeric-only, matching `Value`'s checked arithmetic.
    fn require_family(
        &self,
        op: BinaryOperator,
        common: DataType,
        dates_ok: bool,
        context: &str,
    ) -> Result<(), TypeError> {
        if numericish(common) || (dates_ok && common == DataType::Date) {
            return Ok(());
        }
        Err(self.mismatch(
            format!("operator {op} in {context}"),
            if dates_ok { "numeric or date operands" } else { "numeric operands" }.to_string(),
            common.to_string(),
        ))
    }

    fn verify_function(
        &mut self,
        func: ScalarFunction,
        args: &[ScalarExpr],
        input: &TypedSchema,
        context: &str,
    ) -> Result<ColumnType, TypeError> {
        use ScalarFunction::*;
        let name = func.name();
        let arity_ok = match func {
            Substring => (2..=3).contains(&args.len()),
            Round => (1..=2).contains(&args.len()),
            Coalesce | Concat => !args.is_empty(),
            Upper | Lower | Length | Abs | Floor | Ceil | ExtractYear | ExtractMonth
            | ExtractDay => args.len() == 1,
            DateAddYears | DateAddMonths | DateAddDays => args.len() == 2,
        };
        if !arity_ok {
            return Err(self.structural(
                format!("function {name} in {context}"),
                AlgebraError::Internal(format!("{name} called with {} arguments", args.len())),
            ));
        }
        let mut types = Vec::with_capacity(args.len());
        let mut nullables = Vec::with_capacity(args.len());
        for arg in args {
            let t = self.verify_expr(arg, input, context)?;
            nullables.push(t.nullable);
            types.push(t.data_type);
        }
        // COALESCE is only NULL when every argument is; every other function propagates NULL
        // from any argument.
        let nullable = if func == Coalesce {
            nullables.iter().all(|&n| n)
        } else {
            nullables.iter().any(|&n| n)
        };
        let fcx = |i: usize| format!("function {name} argument {} in {context}", i + 1);
        let check = |v: &Verifier, i: usize, ok: bool, expected: &str| -> Result<(), TypeError> {
            if ok {
                Ok(())
            } else {
                Err(v.mismatch(fcx(i), expected.to_string(), types[i].to_string()))
            }
        };
        match func {
            Substring => {
                check(self, 0, textish(types[0]), "TEXT")?;
                for (i, t) in types.iter().enumerate().skip(1) {
                    check(self, i, matches!(t, DataType::Int | DataType::Null), "INT")?;
                }
            }
            Upper | Lower | Length => check(self, 0, textish(types[0]), "TEXT")?,
            Abs | Floor | Ceil => check(self, 0, numericish(types[0]), "a numeric argument")?,
            Round => {
                check(self, 0, numericish(types[0]), "a numeric argument")?;
                if args.len() == 2 {
                    check(self, 1, matches!(types[1], DataType::Int | DataType::Null), "INT")?;
                }
            }
            Coalesce => {
                let mut acc = DataType::Null;
                for (i, t) in types.iter().enumerate() {
                    match acc.common_type(*t) {
                        Some(merged) => acc = merged,
                        None => return Err(self.mismatch(fcx(i), acc.to_string(), t.to_string())),
                    }
                }
            }
            Concat => {} // concat stringifies anything
            ExtractYear | ExtractMonth | ExtractDay => check(self, 0, dateish(types[0]), "DATE")?,
            DateAddYears | DateAddMonths | DateAddDays => {
                check(self, 0, dateish(types[0]), "DATE")?;
                check(self, 1, matches!(types[1], DataType::Int | DataType::Null), "INT")?;
            }
        }
        Ok(ColumnType { data_type: func.result_type(&types), nullable, provenance: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::expr::AggregateExpr;
    use crate::schema::{Attribute, Schema};
    use crate::tuple::Tuple;

    fn shop_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("name", DataType::Text),
            Attribute::new("numempl", DataType::Int),
        ])
    }

    fn scan() -> PlanBuilder {
        PlanBuilder::scan("shop", shop_schema(), 0)
    }

    #[test]
    fn infers_base_relation_types() {
        let plan = scan().build();
        let t = plan.verify().unwrap();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.column(0).unwrap().data_type, DataType::Text);
        assert!(t.column(0).unwrap().nullable);
        assert_eq!(t.to_string(), "(TEXT?, INT?)");
    }

    #[test]
    fn verify_matches_output_arity_for_composite_plans() {
        let plan = scan()
            .filter(ScalarExpr::binary(
                BinaryOperator::Gt,
                ScalarExpr::column(1, "numempl"),
                ScalarExpr::literal(3i64),
            ))
            .aggregate(
                vec![(ScalarExpr::column(0, "name"), "name".into())],
                vec![(AggregateExpr::count_star(), "cnt".into())],
            )
            .build();
        let t = plan.verify().unwrap();
        assert_eq!(t.arity(), plan.output_arity());
        // COUNT(*) is INT and never NULL.
        assert_eq!(t.column(1).unwrap().data_type, DataType::Int);
        assert!(!t.column(1).unwrap().nullable);
    }

    #[test]
    fn rejects_non_boolean_selection_predicate() {
        let plan = scan().filter(ScalarExpr::column(1, "numempl")).build();
        let err = plan.verify().unwrap_err();
        assert!(matches!(err.kind, TypeErrorKind::Mismatch { .. }));
        assert!(err.path.iter().any(|p| p == "Selection"), "path was {:?}", err.path);
        let msg = AlgebraError::from(err).to_string();
        assert!(msg.contains("Selection"), "message was {msg}");
    }

    #[test]
    fn rejects_text_arithmetic_with_operator_path() {
        // name * 2 deep inside a projection over a join.
        let bad = ScalarExpr::binary(
            BinaryOperator::Mul,
            ScalarExpr::column(0, "name"),
            ScalarExpr::literal(2i64),
        );
        let plan = scan()
            .join(scan_s(), JoinKind::Inner, Some(eq_cols()))
            .project(vec![(bad, "x".into())])
            .build();
        let err = plan.verify().unwrap_err();
        assert_eq!(err.path, vec!["Projection".to_string()]);
        assert!(err.to_string().contains("expected TEXT, got INT"), "{err}");
    }

    fn scan_s() -> PlanBuilder {
        PlanBuilder::scan(
            "sales",
            Schema::new(vec![
                Attribute::new("shop", DataType::Text),
                Attribute::new("qty", DataType::Int),
            ]),
            0,
        )
    }

    fn eq_cols() -> ScalarExpr {
        ScalarExpr::column(0, "name").eq(ScalarExpr::column(2, "shop"))
    }

    #[test]
    fn outer_join_forces_nullability() {
        let rows = vec![Tuple::new(vec![Value::Text("a".into()), Value::Int(1)])];
        let left = PlanBuilder::values(shop_schema(), rows.clone());
        let right = PlanBuilder::values(shop_schema(), rows);
        let plan = left
            .join(
                right,
                JoinKind::LeftOuter,
                Some(ScalarExpr::column(0, "name").eq(ScalarExpr::column(2, "name"))),
            )
            .build();
        let t = plan.verify().unwrap();
        // Values of literals are non-nullable; the left-outer join's right side becomes
        // nullable while the left side stays as inferred.
        assert!(!t.column(0).unwrap().nullable);
        assert!(t.column(2).unwrap().nullable);
    }

    #[test]
    fn rejects_set_op_type_conflict() {
        let ints = PlanBuilder::values(
            Schema::new(vec![Attribute::new("a", DataType::Int)]),
            vec![Tuple::new(vec![Value::Int(1)])],
        );
        let texts = PlanBuilder::values(
            Schema::new(vec![Attribute::new("a", DataType::Text)]),
            vec![Tuple::new(vec![Value::Text("x".into())])],
        );
        let plan = ints
            .set_op(texts, crate::plan::SetOpKind::Union, crate::plan::SetSemantics::Set)
            .build();
        let err = plan.verify().unwrap_err();
        assert!(err.to_string().contains("UNION column 0"), "{err}");
    }

    #[test]
    fn rejects_sum_over_text() {
        let plan = scan()
            .aggregate(
                vec![],
                vec![(
                    AggregateExpr::new(AggregateFunction::Sum, ScalarExpr::column(0, "name")),
                    "s".into(),
                )],
            )
            .build();
        let err = plan.verify().unwrap_err();
        assert!(err.to_string().contains("sum"), "{err}");
        assert!(err.path.iter().any(|p| p == "Aggregation"));
    }

    #[test]
    fn parameter_resolves_through_comparison() {
        let plan = scan()
            .filter(ScalarExpr::binary(
                BinaryOperator::Gt,
                ScalarExpr::column(1, "numempl"),
                ScalarExpr::parameter(0),
            ))
            .build();
        plan.verify().unwrap();
    }

    #[test]
    fn rejects_parameter_without_concrete_type() {
        let pred = ScalarExpr::UnaryOp {
            op: UnaryOperator::IsNull,
            expr: Box::new(ScalarExpr::parameter(0)),
        };
        let plan = scan().filter(pred).build();
        let err = plan.verify().unwrap_err();
        assert!(matches!(err.kind, TypeErrorKind::UnresolvedParameter { index: 0 }));
    }

    #[test]
    fn rejects_values_row_type_mismatch() {
        let plan = PlanBuilder::values(
            Schema::new(vec![Attribute::new("a", DataType::Int)]),
            vec![Tuple::new(vec![Value::Text("oops".into())])],
        )
        .build();
        let err = plan.verify().unwrap_err();
        assert!(err.to_string().contains("VALUES row 0, column 0"), "{err}");
    }

    #[test]
    fn provenance_flags_survive_projection() {
        let plan = LogicalPlan::ProvenanceAnnotation {
            input: scan().build_arc(),
            kind: ProvenanceAnnotationKind::AlreadyRewritten(vec!["numempl".into()]),
        };
        let t = plan.verify().unwrap();
        assert!(!t.column(0).unwrap().provenance);
        assert!(t.column(1).unwrap().provenance);
        assert_eq!(t.column(1).unwrap().to_string(), "INT?*");
    }
}
