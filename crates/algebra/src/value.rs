//! Scalar values and data types.
//!
//! The Perm algebra operates over SQL-style scalar values with three-valued logic. Values are
//! used both in tuples (rows of relations) and as literals inside expressions. Besides the usual
//! comparison semantics (`NULL` compares as unknown), values provide a *grouping* equality and
//! hash in which `NULL` equals `NULL` and floats are compared by bit pattern — this is what hash
//! aggregation, hash joins on grouping attributes (rewrite rule R5) and set operations use.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::AlgebraError;

/// The data types supported by the engine.
///
/// This is the minimal set needed to run the TPC-H benchmark and the paper's examples:
/// booleans, 64-bit integers, 64-bit floats (also used for SQL `DECIMAL`), UTF-8 text and dates
/// (stored as days since 1970-01-01).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean (`TRUE` / `FALSE`).
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float; also used for SQL `DECIMAL`/`NUMERIC`.
    Float,
    /// Variable-length UTF-8 string.
    Text,
    /// Calendar date, stored as days since the Unix epoch.
    Date,
    /// The type of `NULL` literals before coercion.
    Null,
}

impl DataType {
    /// Whether a value of type `self` can be implicitly coerced to `other`.
    pub fn coercible_to(self, other: DataType) -> bool {
        use DataType::*;
        if self == other || self == Null || other == Null {
            return true;
        }
        matches!((self, other), (Int, Float) | (Float, Int) | (Int, Date) | (Date, Int))
    }

    /// The common type of two operands in arithmetic / comparison, if any.
    pub fn common_type(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, b) => Some(b),
            (a, Null) => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            (Int, Date) | (Date, Int) => Some(Date),
            _ => None,
        }
    }

    /// Is this a numeric type?
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A scalar SQL value.
///
/// `Value` implements [`Eq`]/[`Hash`]/[`Ord`] with *grouping semantics*: `NULL == NULL`, floats
/// compare by total order of their bit-normalised form, and values of different types order by a
/// fixed type rank. Use [`Value::sql_eq`] / [`Value::sql_cmp`] for SQL comparison semantics
/// (which return `None` when any operand is `NULL`).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text. Stored behind an [`Arc`] so that cloning a text value (which joins and
    /// projections in provenance-rewritten plans do constantly) is a refcount bump rather than a
    /// heap copy.
    Text(Arc<str>),
    /// Date as days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// Construct a text value.
    pub fn text(s: impl Into<Arc<str>>) -> Value {
        Value::Text(s.into())
    }

    /// Construct a date value from a `YYYY-MM-DD` string.
    pub fn date_from_str(s: &str) -> Result<Value, AlgebraError> {
        parse_date(s).map(Value::Date)
    }

    /// The data type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
            Value::Date(_) => DataType::Date,
        }
    }

    /// Is this value NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as a boolean for predicate evaluation (`None` for NULL).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Null => None,
            Value::Int(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// Numeric view of the value as f64 (for aggregates such as AVG/SUM over mixed numerics).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Integer view of the value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Date(d) => Some(*d as i64),
            _ => None,
        }
    }

    /// Text view of the value (without quoting).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL equality: `None` if either side is NULL, otherwise `Some(lhs == rhs)` after numeric
    /// coercion.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL comparison: `None` if either side is NULL, the types are incomparable, or the
    /// comparison is undefined (NaN). The numeric types Int, Float and Date are all mutually
    /// comparable (a date compares as its day number), matching the coercions of
    /// [`DataType::coercible_to`]; grouping equality and hashing use the same numeric key so
    /// hash joins and hash aggregation agree with this table (see [`Value::eq`]).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Date(a), Int(b)) => Some((*a as i64).cmp(b)),
            (Int(a), Date(b)) => Some(a.cmp(&(*b as i64))),
            (Date(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Date(b)) => a.partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// Grouping equality (NULL == NULL, used by hash aggregation / set operations).
    pub fn group_eq(&self, other: &Value) -> bool {
        self == other
    }

    /// Add two values (numeric addition, date + int days). Integer overflow is an error
    /// ([`AlgebraError::ArithmeticOverflow`]), never a silent wrap.
    pub fn add(&self, other: &Value) -> Result<Value, AlgebraError> {
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => Int(a.checked_add(*b).ok_or_else(|| overflow("addition"))?),
            (Float(a), Float(b)) => Float(a + b),
            (Int(a), Float(b)) => Float(*a as f64 + b),
            (Float(a), Int(b)) => Float(a + *b as f64),
            (Date(a), Int(b)) => Date(checked_date_shift(*a, *b, "addition")?),
            (Int(a), Date(b)) => Date(checked_date_shift(*b, *a, "addition")?),
            (Text(a), Text(b)) => Text(format!("{a}{b}").into()),
            (a, b) => {
                return Err(AlgebraError::TypeMismatch {
                    context: "addition".into(),
                    expected: a.data_type().to_string(),
                    actual: b.data_type().to_string(),
                    path: vec![],
                })
            }
        })
    }

    /// Subtract two values. Integer overflow is an error, never a silent wrap.
    pub fn sub(&self, other: &Value) -> Result<Value, AlgebraError> {
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => Int(a.checked_sub(*b).ok_or_else(|| overflow("subtraction"))?),
            (Float(a), Float(b)) => Float(a - b),
            (Int(a), Float(b)) => Float(*a as f64 - b),
            (Float(a), Int(b)) => Float(a - *b as f64),
            (Date(a), Int(b)) => {
                let days = b.checked_neg().ok_or_else(|| overflow("subtraction"))?;
                Date(checked_date_shift(*a, days, "subtraction")?)
            }
            (Date(a), Date(b)) => Int(*a as i64 - *b as i64),
            (a, b) => {
                return Err(AlgebraError::TypeMismatch {
                    context: "subtraction".into(),
                    expected: a.data_type().to_string(),
                    actual: b.data_type().to_string(),
                    path: vec![],
                })
            }
        })
    }

    /// Multiply two values. Integer overflow is an error, never a silent wrap.
    pub fn mul(&self, other: &Value) -> Result<Value, AlgebraError> {
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => Int(a.checked_mul(*b).ok_or_else(|| overflow("multiplication"))?),
            (Float(a), Float(b)) => Float(a * b),
            (Int(a), Float(b)) => Float(*a as f64 * b),
            (Float(a), Int(b)) => Float(a * *b as f64),
            (a, b) => {
                return Err(AlgebraError::TypeMismatch {
                    context: "multiplication".into(),
                    expected: a.data_type().to_string(),
                    actual: b.data_type().to_string(),
                    path: vec![],
                })
            }
        })
    }

    /// Divide two values. Integer division by zero is an error; float division follows IEEE.
    pub fn div(&self, other: &Value) -> Result<Value, AlgebraError> {
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => {
                if *b == 0 {
                    return Err(AlgebraError::Arithmetic("integer division by zero".into()));
                }
                // i64::MIN / -1 overflows.
                Int(a.checked_div(*b).ok_or_else(|| overflow("division"))?)
            }
            (Float(a), Float(b)) => Float(a / b),
            (Int(a), Float(b)) => Float(*a as f64 / b),
            (Float(a), Int(b)) => Float(a / *b as f64),
            (a, b) => {
                return Err(AlgebraError::TypeMismatch {
                    context: "division".into(),
                    expected: a.data_type().to_string(),
                    actual: b.data_type().to_string(),
                    path: vec![],
                })
            }
        })
    }

    /// Modulo.
    pub fn rem(&self, other: &Value) -> Result<Value, AlgebraError> {
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => {
                if *b == 0 {
                    return Err(AlgebraError::Arithmetic("integer modulo by zero".into()));
                }
                // i64::MIN % -1 overflows.
                Int(a.checked_rem(*b).ok_or_else(|| overflow("modulo"))?)
            }
            (Float(a), Float(b)) => Float(a % b),
            (a, b) => {
                return Err(AlgebraError::TypeMismatch {
                    context: "modulo".into(),
                    expected: a.data_type().to_string(),
                    actual: b.data_type().to_string(),
                    path: vec![],
                })
            }
        })
    }

    /// Negate a numeric value. `-i64::MIN` is an overflow error, never a silent wrap.
    pub fn neg(&self) -> Result<Value, AlgebraError> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.checked_neg().ok_or_else(|| overflow("negation"))?)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(AlgebraError::TypeMismatch {
                context: "negation".into(),
                expected: other.data_type().to_string(),
                actual: "numeric".into(),
                path: vec![],
            }),
        }
    }

    /// Cast the value to a target type.
    pub fn cast(&self, target: DataType) -> Result<Value, AlgebraError> {
        use Value::*;
        if self.is_null() {
            return Ok(Null);
        }
        let fail =
            || AlgebraError::ParseValue { text: self.to_string(), target: target.to_string() };
        Ok(match (self, target) {
            (v, t) if v.data_type() == t => v.clone(),
            (Int(i), DataType::Float) => Float(*i as f64),
            (Float(f), DataType::Int) => Int(*f as i64),
            (Int(i), DataType::Bool) => Bool(*i != 0),
            (Bool(b), DataType::Int) => Int(i64::from(*b)),
            (Int(i), DataType::Text) => Text(i.to_string().into()),
            (Float(f), DataType::Text) => Text(format_float(*f).into()),
            (Date(d), DataType::Text) => Text(format_date(*d).into()),
            (Date(d), DataType::Int) => Int(*d as i64),
            (Int(i), DataType::Date) => Date(*i as i32),
            (Text(s), DataType::Int) => Int(s.trim().parse::<i64>().map_err(|_| fail())?),
            (Text(s), DataType::Float) => Float(s.trim().parse::<f64>().map_err(|_| fail())?),
            (Text(s), DataType::Date) => Date(parse_date(s)?),
            (Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "t" | "true" | "1" => Bool(true),
                "f" | "false" | "0" => Bool(false),
                _ => return Err(fail()),
            },
            _ => return Err(fail()),
        })
    }

    /// Stable key used for hashing floats (total order, `-0.0 == 0.0`, all NaNs equal).
    fn float_key(f: f64) -> u64 {
        if f.is_nan() {
            u64::MAX
        } else if f == 0.0 {
            0f64.to_bits()
        } else {
            f.to_bits()
        }
    }

    /// Rank used to order values of incomparable types in the sorting total order. All numeric
    /// types (Int, Float, Date) share one rank because `sql_cmp` can compare any pair of them;
    /// within a rank, `sql_cmp` (plus the NaN rules of [`total_float_cmp`]) decides.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Date(_) => 2,
            Value::Text(_) => 3,
        }
    }

    /// Is this a float NaN? NaN is the one numeric value `sql_cmp` cannot order; the sorting
    /// total order places it last (after every other numeric), with all NaNs tied.
    fn is_nan(&self) -> bool {
        matches!(self, Value::Float(f) if f.is_nan())
    }
}

/// Total ordering over floats for *sort keys*: `-0.0 == 0.0`, all NaNs compare equal and sort
/// after every non-NaN value. This is the ordering ORDER BY uses (deterministic even for NaN),
/// while SQL comparison *predicates* on NaN stay undefined (`sql_cmp` returns `None`, so
/// `x < NaN` is NULL-like false).
pub fn total_float_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        // Non-NaN floats always compare; Equal is unreachable filler for the None arm.
        (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => Value::float_key(*a) == Value::float_key(*b),
            // Mixed-type grouping equality: all numeric types (Int, Float, Date) compare
            // numerically, consistent with `sql_cmp`, so hash joins and hash aggregation find
            // exactly the matches nested-loop comparison finds.
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
            (Int(a), Date(b)) | (Date(b), Int(a)) => *a == *b as i64,
            (Float(a), Date(b)) | (Date(b), Float(a)) => *a == *b as f64,
            (Text(a), Text(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int, Float and Date all hash through the same numeric key so that grouping
            // equality and hash stay consistent for mixed numeric comparisons (a date hashes as
            // its day number; `i32 as f64` is exact).
            Value::Int(i) => {
                2u8.hash(state);
                Value::float_key(*i as f64).hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                Value::float_key(*f).hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                2u8.hash(state);
                Value::float_key(*d as f64).hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for sorting: NULLs first, then by type rank (booleans, numerics, text),
    /// then by value. Within the numeric rank `sql_cmp` decides, except that NaN sorts last
    /// (after every other numeric) with all NaNs tied — see [`total_float_cmp`].
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => return Ordering::Equal,
            (Null, _) => return Ordering::Less,
            (_, Null) => return Ordering::Greater,
            _ => {}
        }
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self.is_nan(), other.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            // Same-rank non-NaN values always compare; Equal is unreachable filler.
            (false, false) => self.sql_cmp(other).unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => f.write_str(&format_float(*v)),
            Value::Text(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&format_date(*d)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v.into())
    }
}

impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Text(v)
    }
}

fn overflow(operation: &str) -> AlgebraError {
    AlgebraError::ArithmeticOverflow { operation: operation.to_string() }
}

/// Shift a date by a signed number of days with full range checking (the day count must fit in
/// the i32 day range and the shifted date must not wrap).
fn checked_date_shift(date: i32, days: i64, operation: &str) -> Result<i32, AlgebraError> {
    i32::try_from(days).ok().and_then(|d| date.checked_add(d)).ok_or_else(|| overflow(operation))
}

/// Format a float without trailing noise (integral floats print without a fraction).
pub fn format_float(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{:.1}", f)
    } else {
        format!("{}", f)
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian calendar date.
///
/// Uses Howard Hinnant's `days_from_civil` algorithm.
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i32 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Inverse of [`days_from_civil`]: (year, month, day) for days since 1970-01-01.
pub fn civil_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Add a number of calendar months to a date value given in days since the epoch, clamping the
/// day-of-month (e.g. Jan 31 + 1 month = Feb 28/29) like PostgreSQL.
pub fn add_months_to_days(days: i32, months: i32) -> i32 {
    let (y, m, d) = civil_from_days(days);
    let total = y * 12 + (m as i32 - 1) + months;
    let ny = total.div_euclid(12);
    let nm = total.rem_euclid(12) as u32 + 1;
    let max_day = days_in_month(ny, nm);
    let nd = d.min(max_day);
    days_from_civil(ny, nm, nd)
}

/// Number of days in a month of a given year.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 30,
    }
}

/// Parse `YYYY-MM-DD` into days since the epoch.
pub fn parse_date(s: &str) -> Result<i32, AlgebraError> {
    let fail = || AlgebraError::ParseValue { text: s.to_string(), target: "DATE".into() };
    let mut parts = s.trim().split('-');
    let year: i32 = parts.next().ok_or_else(fail)?.parse().map_err(|_| fail())?;
    let month: u32 = parts.next().ok_or_else(fail)?.parse().map_err(|_| fail())?;
    let day: u32 = parts.next().ok_or_else(fail)?.parse().map_err(|_| fail())?;
    if parts.next().is_some()
        || !(1..=12).contains(&month)
        || day == 0
        || day > days_in_month(year, month)
    {
        return Err(fail());
    }
    Ok(days_from_civil(year, month, day))
}

/// Format days since the epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_eq_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn group_eq_treats_nulls_as_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(1.5).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn float_hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Float(0.0)), h(&Value::Float(-0.0)));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn checked_arithmetic_overflows_are_errors() {
        let overflowed = |v: Result<Value, AlgebraError>, op: &str| {
            assert_eq!(
                v.unwrap_err(),
                AlgebraError::ArithmeticOverflow { operation: op.to_string() }
            );
        };
        overflowed(Value::Int(i64::MAX).add(&Value::Int(1)), "addition");
        overflowed(Value::Int(i64::MIN).sub(&Value::Int(1)), "subtraction");
        overflowed(Value::Int(i64::MAX).mul(&Value::Int(2)), "multiplication");
        overflowed(Value::Int(i64::MIN).div(&Value::Int(-1)), "division");
        overflowed(Value::Int(i64::MIN).rem(&Value::Int(-1)), "modulo");
        overflowed(Value::Int(i64::MIN).neg(), "negation");
        overflowed(Value::Date(i32::MAX).add(&Value::Int(1)), "addition");
        overflowed(Value::Date(0).add(&Value::Int(i64::MAX)), "addition");
        // NULL propagation and float arithmetic are unaffected.
        assert_eq!(Value::Null.add(&Value::Int(i64::MAX)).unwrap(), Value::Null);
        assert!(matches!(
            Value::Float(f64::MAX).mul(&Value::Float(2.0)).unwrap(),
            Value::Float(f) if f.is_infinite()
        ));
    }

    #[test]
    fn nan_sorts_last_and_compares_unknown() {
        // Sorting total order: NaN after every numeric, all NaNs tied; NULL still first.
        let mut vals = [
            Value::Float(f64::NAN),
            Value::Int(7),
            Value::Float(-1.0),
            Value::Null,
            Value::Float(f64::NAN),
            Value::Date(3),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Float(-1.0));
        assert_eq!(vals[2], Value::Date(3));
        assert_eq!(vals[3], Value::Int(7));
        assert!(matches!(vals[4], Value::Float(f) if f.is_nan()));
        assert!(matches!(vals[5], Value::Float(f) if f.is_nan()));
        // SQL comparison against NaN stays undefined (predicates treat it as false).
        assert_eq!(Value::Float(f64::NAN).sql_cmp(&Value::Float(1.0)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(f64::NAN)), None);
        // The shared helper pins the same rules.
        assert_eq!(total_float_cmp(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(total_float_cmp(1.0, f64::NAN), Ordering::Less);
        assert_eq!(total_float_cmp(f64::NAN, -1.0), Ordering::Greater);
        assert_eq!(total_float_cmp(0.0, -0.0), Ordering::Equal);
    }

    #[test]
    fn date_hashes_and_equals_numerically() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        // Date(d) groups with Int(d) and Float(d as f64): equality, hash and sql_cmp agree,
        // so hash joins and hash aggregation find the matches nested-loop comparison finds.
        assert_eq!(Value::Date(5), Value::Int(5));
        assert_eq!(Value::Date(5), Value::Float(5.0));
        assert_eq!(h(&Value::Date(5)), h(&Value::Int(5)));
        assert_eq!(h(&Value::Date(5)), h(&Value::Float(5.0)));
        assert_eq!(Value::Date(5).sql_cmp(&Value::Float(5.5)), Some(Ordering::Less));
        assert_ne!(Value::Date(5), Value::Date(6));
        assert_ne!(Value::Date(5), Value::text("5"));
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).mul(&Value::Float(1.5)).unwrap(), Value::Float(3.0));
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Float(7.0).div(&Value::Int(2)).unwrap(), Value::Float(3.5));
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
    }

    #[test]
    fn text_concatenation_via_add() {
        assert_eq!(Value::text("foo").add(&Value::text("bar")).unwrap(), Value::text("foobar"));
    }

    #[test]
    fn date_round_trip() {
        for s in ["1970-01-01", "1992-02-29", "1998-12-01", "2024-06-14", "1901-03-31"] {
            let days = parse_date(s).unwrap();
            assert_eq!(format_date(days), s, "round trip for {s}");
        }
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1970-01-02").unwrap(), 1);
        assert_eq!(parse_date("1969-12-31").unwrap(), -1);
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(parse_date("1970-13-01").is_err());
        assert!(parse_date("1970-02-30").is_err());
        assert!(parse_date("not-a-date").is_err());
        assert!(parse_date("1970-01").is_err());
    }

    #[test]
    fn add_months_clamps_day() {
        let jan31 = parse_date("1999-01-31").unwrap();
        assert_eq!(format_date(add_months_to_days(jan31, 1)), "1999-02-28");
        let leap = parse_date("2000-01-31").unwrap();
        assert_eq!(format_date(add_months_to_days(leap, 1)), "2000-02-29");
        let d = parse_date("1995-11-15").unwrap();
        assert_eq!(format_date(add_months_to_days(d, 3)), "1996-02-15");
        assert_eq!(format_date(add_months_to_days(d, -12)), "1994-11-15");
    }

    #[test]
    fn date_plus_int_days() {
        let d = Value::date_from_str("1995-01-01").unwrap();
        let later = d.add(&Value::Int(90)).unwrap();
        assert_eq!(later.to_string(), "1995-04-01");
        let diff = later.sub(&d).unwrap();
        assert_eq!(diff, Value::Int(90));
    }

    #[test]
    fn cast_between_types() {
        assert_eq!(Value::Int(3).cast(DataType::Float).unwrap(), Value::Float(3.0));
        assert_eq!(Value::text("42").cast(DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            Value::text("1994-01-01").cast(DataType::Date).unwrap(),
            Value::date_from_str("1994-01-01").unwrap()
        );
        assert_eq!(Value::Null.cast(DataType::Int).unwrap(), Value::Null);
        assert!(Value::text("abc").cast(DataType::Int).is_err());
    }

    #[test]
    fn ordering_nulls_first_then_value() {
        let mut vals = vec![Value::Int(3), Value::Null, Value::Int(1), Value::Int(2)];
        vals.sort();
        assert_eq!(vals, vec![Value::Null, Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn common_type_resolution() {
        assert_eq!(DataType::Int.common_type(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Null.common_type(DataType::Text), Some(DataType::Text));
        assert_eq!(DataType::Bool.common_type(DataType::Int), None);
    }
}
