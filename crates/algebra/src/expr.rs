//! The scalar and aggregate expression language.
//!
//! Expressions appear in projections, selection predicates, join conditions, grouping lists and
//! aggregation arguments. After SQL analysis, column references are *positional* (an index into
//! the input schema of the operator that owns the expression) plus a display name; this makes
//! the provenance rewrite rules of `perm-core` straightforward to express (they mostly reshuffle
//! column positions).

use std::fmt;
use std::sync::Arc;

use crate::error::AlgebraError;
use crate::plan::LogicalPlan;
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// The kind of a subquery expression (a *sublink* in the paper's PostgreSQL-derived terminology,
/// §IV-E). Only uncorrelated sublinks are supported, matching the paper's prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SublinkKind {
    /// `EXISTS (SELECT ...)`.
    Exists,
    /// `x IN (SELECT ...)`.
    InSubquery,
    /// A scalar subquery used as a value, e.g. `x > (SELECT avg(...) ...)`.
    Scalar,
}

/// Binary operators usable in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOperator {
    /// Addition (`+`), also date + days and text concatenation.
    Add,
    /// Subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Division (`/`).
    Div,
    /// Modulo (`%`).
    Mod,
    /// Equality (`=`), three-valued.
    Eq,
    /// Inequality (`<>`).
    NotEq,
    /// Less than (`<`).
    Lt,
    /// Less than or equal (`<=`).
    LtEq,
    /// Greater than (`>`).
    Gt,
    /// Greater than or equal (`>=`).
    GtEq,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// SQL `LIKE` pattern match.
    Like,
    /// SQL `NOT LIKE` pattern match.
    NotLike,
    /// Null-safe equality (`IS NOT DISTINCT FROM`); used by rewrite rule R5 so that NULL group
    /// keys join with themselves.
    IsNotDistinctFrom,
    /// Null-safe inequality (`IS DISTINCT FROM`); used by rewrite rule R9.
    IsDistinctFrom,
}

impl BinaryOperator {
    /// Is this a comparison operator (result type BOOL)?
    pub fn is_comparison(self) -> bool {
        use BinaryOperator::*;
        matches!(
            self,
            Eq | NotEq
                | Lt
                | LtEq
                | Gt
                | GtEq
                | Like
                | NotLike
                | IsNotDistinctFrom
                | IsDistinctFrom
        )
    }

    /// Is this a boolean connective?
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOperator::And | BinaryOperator::Or)
    }
}

impl fmt::Display for BinaryOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOperator::Add => "+",
            BinaryOperator::Sub => "-",
            BinaryOperator::Mul => "*",
            BinaryOperator::Div => "/",
            BinaryOperator::Mod => "%",
            BinaryOperator::Eq => "=",
            BinaryOperator::NotEq => "<>",
            BinaryOperator::Lt => "<",
            BinaryOperator::LtEq => "<=",
            BinaryOperator::Gt => ">",
            BinaryOperator::GtEq => ">=",
            BinaryOperator::And => "AND",
            BinaryOperator::Or => "OR",
            BinaryOperator::Like => "LIKE",
            BinaryOperator::NotLike => "NOT LIKE",
            BinaryOperator::IsNotDistinctFrom => "IS NOT DISTINCT FROM",
            BinaryOperator::IsDistinctFrom => "IS DISTINCT FROM",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOperator {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// `IS NULL`.
    IsNull,
    /// `IS NOT NULL`.
    IsNotNull,
}

impl fmt::Display for UnaryOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOperator::Not => "NOT",
            UnaryOperator::Neg => "-",
            UnaryOperator::IsNull => "IS NULL",
            UnaryOperator::IsNotNull => "IS NOT NULL",
        };
        f.write_str(s)
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunction {
    /// `substring(text, start, length)` (1-based start).
    Substring,
    /// `upper(text)`.
    Upper,
    /// `lower(text)`.
    Lower,
    /// `length(text)`.
    Length,
    /// `abs(x)`.
    Abs,
    /// `round(x)` / `round(x, digits)`.
    Round,
    /// `floor(x)`.
    Floor,
    /// `ceil(x)`.
    Ceil,
    /// `coalesce(a, b, ...)`.
    Coalesce,
    /// `concat(a, b, ...)` — string concatenation.
    Concat,
    /// `extract(year from d)`.
    ExtractYear,
    /// `extract(month from d)`.
    ExtractMonth,
    /// `extract(day from d)`.
    ExtractDay,
    /// `date_add_years(d, n)` — used to lower `d + interval 'n' year`.
    DateAddYears,
    /// `date_add_months(d, n)` — used to lower `d + interval 'n' month`.
    DateAddMonths,
    /// `date_add_days(d, n)` — used to lower `d + interval 'n' day`.
    DateAddDays,
}

impl ScalarFunction {
    /// Parse a function by its SQL name.
    pub fn from_name(name: &str) -> Option<ScalarFunction> {
        Some(match name.to_ascii_lowercase().as_str() {
            "substring" | "substr" => ScalarFunction::Substring,
            "upper" => ScalarFunction::Upper,
            "lower" => ScalarFunction::Lower,
            "length" | "char_length" => ScalarFunction::Length,
            "abs" => ScalarFunction::Abs,
            "round" => ScalarFunction::Round,
            "floor" => ScalarFunction::Floor,
            "ceil" | "ceiling" => ScalarFunction::Ceil,
            "coalesce" => ScalarFunction::Coalesce,
            "concat" => ScalarFunction::Concat,
            "extract_year" | "year" => ScalarFunction::ExtractYear,
            "extract_month" | "month" => ScalarFunction::ExtractMonth,
            "extract_day" | "day" => ScalarFunction::ExtractDay,
            "date_add_years" => ScalarFunction::DateAddYears,
            "date_add_months" => ScalarFunction::DateAddMonths,
            "date_add_days" => ScalarFunction::DateAddDays,
            _ => return None,
        })
    }

    /// SQL-ish display name.
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunction::Substring => "substring",
            ScalarFunction::Upper => "upper",
            ScalarFunction::Lower => "lower",
            ScalarFunction::Length => "length",
            ScalarFunction::Abs => "abs",
            ScalarFunction::Round => "round",
            ScalarFunction::Floor => "floor",
            ScalarFunction::Ceil => "ceil",
            ScalarFunction::Coalesce => "coalesce",
            ScalarFunction::Concat => "concat",
            ScalarFunction::ExtractYear => "extract_year",
            ScalarFunction::ExtractMonth => "extract_month",
            ScalarFunction::ExtractDay => "extract_day",
            ScalarFunction::DateAddYears => "date_add_years",
            ScalarFunction::DateAddMonths => "date_add_months",
            ScalarFunction::DateAddDays => "date_add_days",
        }
    }

    /// Result type given the argument types.
    pub fn result_type(self, args: &[DataType]) -> DataType {
        match self {
            ScalarFunction::Substring
            | ScalarFunction::Upper
            | ScalarFunction::Lower
            | ScalarFunction::Concat => DataType::Text,
            ScalarFunction::Length
            | ScalarFunction::ExtractYear
            | ScalarFunction::ExtractMonth
            | ScalarFunction::ExtractDay => DataType::Int,
            ScalarFunction::Abs
            | ScalarFunction::Round
            | ScalarFunction::Floor
            | ScalarFunction::Ceil => args.first().copied().unwrap_or(DataType::Float),
            ScalarFunction::Coalesce => {
                args.iter().copied().find(|t| *t != DataType::Null).unwrap_or(DataType::Null)
            }
            ScalarFunction::DateAddYears
            | ScalarFunction::DateAddMonths
            | ScalarFunction::DateAddDays => DataType::Date,
        }
    }
}

/// A scalar expression over the input schema of an operator.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A positional column reference with a display name.
    Column {
        /// Index into the owning operator's input schema.
        index: usize,
        /// Display name, kept for plan printing and provenance attribute naming.
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// A prepared-statement parameter slot (`$1`, `$2`, ... in SQL; `index` is zero-based).
    ///
    /// Parameters survive analysis, provenance rewriting and optimization unchanged; the
    /// executor resolves them against the bound parameter values when expressions are compiled,
    /// so one prepared plan can be executed many times with different bindings.
    Parameter {
        /// Zero-based parameter position (`$1` has index 0).
        index: usize,
    },
    /// Binary operation.
    BinaryOp {
        /// The operator.
        op: BinaryOperator,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Unary operation.
    UnaryOp {
        /// The operator.
        op: UnaryOperator,
        /// Operand.
        expr: Box<ScalarExpr>,
    },
    /// Scalar function call.
    Function {
        /// The function.
        func: ScalarFunction,
        /// Arguments.
        args: Vec<ScalarExpr>,
    },
    /// `CASE [operand] WHEN ... THEN ... [ELSE ...] END`.
    Case {
        /// Optional operand for the simple CASE form.
        operand: Option<Box<ScalarExpr>>,
        /// `(WHEN condition/value, THEN result)` pairs.
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        /// Optional ELSE result.
        else_expr: Option<Box<ScalarExpr>>,
    },
    /// Explicit cast.
    Cast {
        /// Expression to cast.
        expr: Box<ScalarExpr>,
        /// Target type.
        data_type: DataType,
    },
    /// Test whether the operand equals any of the listed expressions (`x IN (1, 2, 3)`).
    InList {
        /// Operand.
        expr: Box<ScalarExpr>,
        /// List of candidate values.
        list: Vec<ScalarExpr>,
        /// Whether the test is negated (`NOT IN`).
        negated: bool,
    },
    /// An *uncorrelated* subquery expression (sublink, §IV-E of the paper).
    ///
    /// * `Exists` — boolean test that the subquery returns at least one row (`operand` is `None`).
    /// * `InSubquery` — membership of `operand` in the subquery's single output column.
    /// * `Scalar` — the subquery's single value is used directly (`operand` is `None`).
    ///
    /// The executor evaluates the subquery plan once (it is uncorrelated) and substitutes the
    /// result; the provenance rewriter of `perm-core` instead pulls the rewritten sublink into
    /// the range table as described in the paper.
    Sublink {
        /// What kind of sublink this is.
        kind: SublinkKind,
        /// The left operand for `InSubquery` sublinks.
        operand: Option<Box<ScalarExpr>>,
        /// Whether the test is negated (`NOT IN` / `NOT EXISTS`).
        negated: bool,
        /// The subquery plan.
        plan: Arc<LogicalPlan>,
    },
}

impl ScalarExpr {
    /// A column reference.
    pub fn column(index: usize, name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Column { index, name: name.into() }
    }

    /// A literal.
    pub fn literal(value: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(value.into())
    }

    /// A parameter slot (zero-based index; `$1` has index 0).
    pub fn parameter(index: usize) -> ScalarExpr {
        ScalarExpr::Parameter { index }
    }

    /// A binary operation.
    pub fn binary(op: BinaryOperator, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::BinaryOp { op, left: Box::new(left), right: Box::new(right) }
    }

    /// `self = other`.
    pub fn eq(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOperator::Eq, self, other)
    }

    /// `self <> other`.
    pub fn not_eq(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOperator::NotEq, self, other)
    }

    /// `self AND other`.
    pub fn and(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOperator::And, self, other)
    }

    /// `self OR other`.
    pub fn or(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOperator::Or, self, other)
    }

    /// `self IS NOT DISTINCT FROM other` (null-safe equality).
    pub fn null_safe_eq(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOperator::IsNotDistinctFrom, self, other)
    }

    /// Conjunction of a list of predicates (`TRUE` literal for an empty list).
    pub fn conjunction(exprs: Vec<ScalarExpr>) -> ScalarExpr {
        exprs
            .into_iter()
            .reduce(|acc, e| acc.and(e))
            .unwrap_or(ScalarExpr::Literal(Value::Bool(true)))
    }

    /// Split a predicate into its top-level conjuncts.
    pub fn split_conjunction(&self) -> Vec<&ScalarExpr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
            match e {
                ScalarExpr::BinaryOp { op: BinaryOperator::And, left, right } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// The set of column indices this expression references.
    pub fn columns_used(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.visit(&mut |e| {
            if let ScalarExpr::Column { index, .. } = e {
                cols.push(*index);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Visit every node of the expression tree.
    pub fn visit<F: FnMut(&ScalarExpr)>(&self, f: &mut F) {
        f(self);
        match self {
            ScalarExpr::Column { .. } | ScalarExpr::Literal(_) | ScalarExpr::Parameter { .. } => {}
            ScalarExpr::BinaryOp { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            ScalarExpr::UnaryOp { expr, .. } => expr.visit(f),
            ScalarExpr::Function { args, .. } => args.iter().for_each(|a| a.visit(f)),
            ScalarExpr::Case { operand, branches, else_expr } => {
                if let Some(op) = operand {
                    op.visit(f);
                }
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            ScalarExpr::Cast { expr, .. } => expr.visit(f),
            ScalarExpr::InList { expr, list, .. } => {
                expr.visit(f);
                list.iter().for_each(|e| e.visit(f));
            }
            ScalarExpr::Sublink { operand, .. } => {
                // The subquery plan is independent of the outer schema (uncorrelated), so only
                // the operand is visited.
                if let Some(op) = operand {
                    op.visit(f);
                }
            }
        }
    }

    /// Rewrite every column reference through `f` (old index → new index).
    pub fn map_columns<F: FnMut(usize) -> usize>(&self, f: &mut F) -> ScalarExpr {
        match self {
            ScalarExpr::Column { index, name } => {
                ScalarExpr::Column { index: f(*index), name: name.clone() }
            }
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Parameter { index } => ScalarExpr::Parameter { index: *index },
            ScalarExpr::BinaryOp { op, left, right } => ScalarExpr::BinaryOp {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            ScalarExpr::UnaryOp { op, expr } => {
                ScalarExpr::UnaryOp { op: *op, expr: Box::new(expr.map_columns(f)) }
            }
            ScalarExpr::Function { func, args } => ScalarExpr::Function {
                func: *func,
                args: args.iter().map(|a| a.map_columns(f)).collect(),
            },
            ScalarExpr::Case { operand, branches, else_expr } => ScalarExpr::Case {
                operand: operand.as_ref().map(|o| Box::new(o.map_columns(f))),
                branches: branches
                    .iter()
                    .map(|(w, t)| (w.map_columns(f), t.map_columns(f)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.map_columns(f))),
            },
            ScalarExpr::Cast { expr, data_type } => {
                ScalarExpr::Cast { expr: Box::new(expr.map_columns(f)), data_type: *data_type }
            }
            ScalarExpr::InList { expr, list, negated } => ScalarExpr::InList {
                expr: Box::new(expr.map_columns(f)),
                list: list.iter().map(|e| e.map_columns(f)).collect(),
                negated: *negated,
            },
            ScalarExpr::Sublink { kind, operand, negated, plan } => ScalarExpr::Sublink {
                kind: *kind,
                operand: operand.as_ref().map(|o| Box::new(o.map_columns(f))),
                negated: *negated,
                plan: plan.clone(),
            },
        }
    }

    /// Shift all column references by `offset` (used when an expression moves to the right side
    /// of a join's concatenated schema).
    pub fn shift_columns(&self, offset: usize) -> ScalarExpr {
        self.map_columns(&mut |i| i + offset)
    }

    /// Rebuild the expression bottom-up, applying `f` to every node after its children have been
    /// rebuilt. Used by the executor (sublink resolution) and the provenance rewriter.
    pub fn transform(&self, f: &mut impl FnMut(ScalarExpr) -> ScalarExpr) -> ScalarExpr {
        let rebuilt = match self {
            ScalarExpr::Column { .. } | ScalarExpr::Literal(_) | ScalarExpr::Parameter { .. } => {
                self.clone()
            }
            ScalarExpr::BinaryOp { op, left, right } => ScalarExpr::BinaryOp {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            ScalarExpr::UnaryOp { op, expr } => {
                ScalarExpr::UnaryOp { op: *op, expr: Box::new(expr.transform(f)) }
            }
            ScalarExpr::Function { func, args } => ScalarExpr::Function {
                func: *func,
                args: args.iter().map(|a| a.transform(f)).collect(),
            },
            ScalarExpr::Case { operand, branches, else_expr } => ScalarExpr::Case {
                operand: operand.as_ref().map(|o| Box::new(o.transform(f))),
                branches: branches.iter().map(|(w, t)| (w.transform(f), t.transform(f))).collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.transform(f))),
            },
            ScalarExpr::Cast { expr, data_type } => {
                ScalarExpr::Cast { expr: Box::new(expr.transform(f)), data_type: *data_type }
            }
            ScalarExpr::InList { expr, list, negated } => ScalarExpr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.iter().map(|e| e.transform(f)).collect(),
                negated: *negated,
            },
            ScalarExpr::Sublink { kind, operand, negated, plan } => ScalarExpr::Sublink {
                kind: *kind,
                operand: operand.as_ref().map(|o| Box::new(o.transform(f))),
                negated: *negated,
                plan: plan.clone(),
            },
        };
        f(rebuilt)
    }

    /// Collect all sublink expressions contained in this expression (outermost first).
    pub fn sublinks(&self) -> Vec<&ScalarExpr> {
        fn walk<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
            if matches!(e, ScalarExpr::Sublink { .. }) {
                out.push(e);
            }
            match e {
                ScalarExpr::Column { .. }
                | ScalarExpr::Literal(_)
                | ScalarExpr::Parameter { .. } => {}
                ScalarExpr::BinaryOp { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                ScalarExpr::UnaryOp { expr, .. } | ScalarExpr::Cast { expr, .. } => walk(expr, out),
                ScalarExpr::Function { args, .. } => args.iter().for_each(|a| walk(a, out)),
                ScalarExpr::Case { operand, branches, else_expr } => {
                    if let Some(op) = operand {
                        walk(op, out);
                    }
                    for (w, t) in branches {
                        walk(w, out);
                        walk(t, out);
                    }
                    if let Some(el) = else_expr {
                        walk(el, out);
                    }
                }
                ScalarExpr::InList { expr, list, .. } => {
                    walk(expr, out);
                    list.iter().for_each(|e| walk(e, out));
                }
                ScalarExpr::Sublink { operand, .. } => {
                    if let Some(op) = operand {
                        walk(op, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Does this expression contain any sublink?
    pub fn has_sublink(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, ScalarExpr::Sublink { .. }) {
                found = true;
            }
        });
        found
    }

    /// The result type of the expression against an input schema.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType, AlgebraError> {
        Ok(match self {
            ScalarExpr::Column { index, .. } => schema.attribute(*index)?.data_type,
            ScalarExpr::Literal(v) => v.data_type(),
            // Parameters are untyped until bound; `Null` behaves as "unknown" under
            // `DataType::common_type`.
            ScalarExpr::Parameter { .. } => DataType::Null,
            ScalarExpr::BinaryOp { op, left, right } => {
                if op.is_comparison() || op.is_logical() {
                    DataType::Bool
                } else {
                    let l = left.data_type(schema)?;
                    let r = right.data_type(schema)?;
                    l.common_type(r).ok_or_else(|| AlgebraError::TypeMismatch {
                        context: format!("operator {op}"),
                        expected: l.to_string(),
                        actual: r.to_string(),
                        path: vec![],
                    })?
                }
            }
            ScalarExpr::UnaryOp { op, expr } => match op {
                UnaryOperator::Not | UnaryOperator::IsNull | UnaryOperator::IsNotNull => {
                    DataType::Bool
                }
                UnaryOperator::Neg => expr.data_type(schema)?,
            },
            ScalarExpr::Function { func, args } => {
                let arg_types =
                    args.iter().map(|a| a.data_type(schema)).collect::<Result<Vec<_>, _>>()?;
                func.result_type(&arg_types)
            }
            ScalarExpr::Case { branches, else_expr, .. } => {
                let mut ty = DataType::Null;
                for (_, then) in branches {
                    ty = ty.common_type(then.data_type(schema)?).unwrap_or(DataType::Text);
                }
                if let Some(e) = else_expr {
                    ty = ty.common_type(e.data_type(schema)?).unwrap_or(DataType::Text);
                }
                ty
            }
            ScalarExpr::Cast { data_type, .. } => *data_type,
            ScalarExpr::InList { .. } => DataType::Bool,
            ScalarExpr::Sublink { kind, plan, .. } => match kind {
                SublinkKind::Scalar => plan.schema().attribute(0)?.data_type,
                SublinkKind::Exists | SublinkKind::InSubquery => DataType::Bool,
            },
        })
    }

    /// A short display name used when no alias is given (mirrors PostgreSQL behaviour loosely).
    pub fn display_name(&self) -> String {
        match self {
            ScalarExpr::Column { name, .. } => name.clone(),
            ScalarExpr::Literal(v) => v.to_string(),
            ScalarExpr::Function { func, .. } => func.name().to_string(),
            ScalarExpr::Case { .. } => "case".to_string(),
            ScalarExpr::Cast { expr, .. } => expr.display_name(),
            _ => "?column?".to_string(),
        }
    }

    /// Is this expression a plain column reference?
    pub fn as_column(&self) -> Option<usize> {
        match self {
            ScalarExpr::Column { index, .. } => Some(*index),
            _ => None,
        }
    }

    /// Does the expression contain no column references (i.e. is it constant)?
    ///
    /// Parameters are *not* constants: their value is only known once a prepared statement is
    /// executed, so they must never be folded at plan time.
    pub fn is_constant(&self) -> bool {
        self.columns_used().is_empty() && !self.has_parameter()
    }

    /// Does this expression contain a parameter slot (not counting sublink sub-plans)?
    pub fn has_parameter(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, ScalarExpr::Parameter { .. }) {
                found = true;
            }
        });
        found
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column { index, name } => write!(f, "{name}#{index}"),
            ScalarExpr::Literal(v) => match v {
                Value::Text(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            ScalarExpr::Parameter { index } => write!(f, "${}", index + 1),
            ScalarExpr::BinaryOp { op, left, right } => write!(f, "({left} {op} {right})"),
            ScalarExpr::UnaryOp { op, expr } => match op {
                UnaryOperator::IsNull | UnaryOperator::IsNotNull => write!(f, "({expr} {op})"),
                _ => write!(f, "({op} {expr})"),
            },
            ScalarExpr::Function { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Case { operand, branches, else_expr } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            ScalarExpr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
            ScalarExpr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            ScalarExpr::Sublink { kind, operand, negated, .. } => {
                let not = if *negated { "NOT " } else { "" };
                match kind {
                    SublinkKind::Exists => write!(f, "({not}EXISTS <subquery>)"),
                    SublinkKind::InSubquery => {
                        let op = operand.as_deref().map(|o| o.to_string()).unwrap_or_default();
                        write!(f, "({op} {not}IN <subquery>)")
                    }
                    SublinkKind::Scalar => write!(f, "(<scalar subquery>)"),
                }
            }
        }
    }
}

/// Aggregate functions of the algebra's aggregation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// `COUNT(expr)` / `COUNT(*)` when the argument is `None`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggregateFunction {
    /// Parse an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggregateFunction> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggregateFunction::Count,
            "sum" => AggregateFunction::Sum,
            "avg" => AggregateFunction::Avg,
            "min" => AggregateFunction::Min,
            "max" => AggregateFunction::Max,
            _ => return None,
        })
    }

    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggregateFunction::Count => "count",
            AggregateFunction::Sum => "sum",
            AggregateFunction::Avg => "avg",
            AggregateFunction::Min => "min",
            AggregateFunction::Max => "max",
        }
    }

    /// Result type given the argument type.
    pub fn result_type(self, arg: DataType) -> DataType {
        match self {
            AggregateFunction::Count => DataType::Int,
            AggregateFunction::Avg => DataType::Float,
            AggregateFunction::Sum => {
                if arg == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                }
            }
            AggregateFunction::Min | AggregateFunction::Max => arg,
        }
    }
}

/// An aggregate expression (`aggr` entries of the α operator in Figure 1).
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateExpr {
    /// The aggregate function.
    pub func: AggregateFunction,
    /// The argument; `None` means `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    /// Whether duplicates are eliminated before aggregation (`COUNT(DISTINCT x)`).
    pub distinct: bool,
}

impl AggregateExpr {
    /// Create an aggregate over an argument expression.
    pub fn new(func: AggregateFunction, arg: ScalarExpr) -> AggregateExpr {
        AggregateExpr { func, arg: Some(arg), distinct: false }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> AggregateExpr {
        AggregateExpr { func: AggregateFunction::Count, arg: None, distinct: false }
    }

    /// Result type against an input schema.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType, AlgebraError> {
        let arg_type = match &self.arg {
            Some(e) => e.data_type(schema)?,
            None => DataType::Int,
        };
        Ok(self.func.result_type(arg_type))
    }

    /// Display name when no alias is provided.
    pub fn display_name(&self) -> String {
        match &self.arg {
            Some(a) => format!("{}({})", self.func.name(), a.display_name()),
            None => format!("{}(*)", self.func.name()),
        }
    }

    /// Rewrite column references through `f`.
    pub fn map_columns<F: FnMut(usize) -> usize>(&self, f: &mut F) -> AggregateExpr {
        AggregateExpr {
            func: self.func,
            arg: self.arg.as_ref().map(|a| a.map_columns(f)),
            distinct: self.distinct,
        }
    }
}

impl fmt::Display for AggregateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(
                f,
                "{}({}{})",
                self.func.name(),
                if self.distinct { "DISTINCT " } else { "" },
                a
            ),
            None => write!(f, "{}(*)", self.func.name()),
        }
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (NULLs first).
    Ascending,
    /// Descending (NULLs last).
    Descending,
}

/// A sort key: expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The expression to sort by.
    pub expr: ScalarExpr,
    /// Sort direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending sort key.
    pub fn asc(expr: ScalarExpr) -> SortKey {
        SortKey { expr, order: SortOrder::Ascending }
    }

    /// Descending sort key.
    pub fn desc(expr: ScalarExpr) -> SortKey {
        SortKey { expr, order: SortOrder::Descending }
    }
}

impl fmt::Display for SortKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}",
            self.expr,
            match self.order {
                SortOrder::Ascending => "ASC",
                SortOrder::Descending => "DESC",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("id", DataType::Int),
            Attribute::new("price", DataType::Float),
            Attribute::new("name", DataType::Text),
            Attribute::new("d", DataType::Date),
        ])
    }

    #[test]
    fn data_type_inference() {
        let s = schema();
        let e = ScalarExpr::column(0, "id").eq(ScalarExpr::literal(3i64));
        assert_eq!(e.data_type(&s).unwrap(), DataType::Bool);
        let sum = ScalarExpr::binary(
            BinaryOperator::Add,
            ScalarExpr::column(0, "id"),
            ScalarExpr::column(1, "price"),
        );
        assert_eq!(sum.data_type(&s).unwrap(), DataType::Float);
        let f = ScalarExpr::Function {
            func: ScalarFunction::ExtractYear,
            args: vec![ScalarExpr::column(3, "d")],
        };
        assert_eq!(f.data_type(&s).unwrap(), DataType::Int);
    }

    #[test]
    fn columns_used_dedups_and_sorts() {
        let e = ScalarExpr::column(2, "name")
            .eq(ScalarExpr::literal("x"))
            .and(ScalarExpr::column(0, "id").eq(ScalarExpr::column(2, "name")));
        assert_eq!(e.columns_used(), vec![0, 2]);
    }

    #[test]
    fn map_and_shift_columns() {
        let e = ScalarExpr::column(1, "price").eq(ScalarExpr::column(0, "id"));
        let shifted = e.shift_columns(5);
        assert_eq!(shifted.columns_used(), vec![5, 6]);
        let remapped = e.map_columns(&mut |i| if i == 0 { 9 } else { i });
        assert_eq!(remapped.columns_used(), vec![1, 9]);
    }

    #[test]
    fn conjunction_and_split_round_trip() {
        let parts = vec![
            ScalarExpr::column(0, "a").eq(ScalarExpr::literal(1i64)),
            ScalarExpr::column(1, "b").eq(ScalarExpr::literal(2i64)),
            ScalarExpr::column(2, "c").eq(ScalarExpr::literal(3i64)),
        ];
        let conj = ScalarExpr::conjunction(parts.clone());
        let split = conj.split_conjunction();
        assert_eq!(split.len(), 3);
        assert_eq!(*split[0], parts[0]);
        assert_eq!(*split[2], parts[2]);
        // Empty conjunction is TRUE.
        assert_eq!(ScalarExpr::conjunction(vec![]), ScalarExpr::Literal(Value::Bool(true)));
    }

    #[test]
    fn aggregate_types_and_names() {
        let s = schema();
        let sum = AggregateExpr::new(AggregateFunction::Sum, ScalarExpr::column(1, "price"));
        assert_eq!(sum.data_type(&s).unwrap(), DataType::Float);
        assert_eq!(sum.display_name(), "sum(price)");
        let cnt = AggregateExpr::count_star();
        assert_eq!(cnt.data_type(&s).unwrap(), DataType::Int);
        assert_eq!(cnt.display_name(), "count(*)");
        let sum_int = AggregateExpr::new(AggregateFunction::Sum, ScalarExpr::column(0, "id"));
        assert_eq!(sum_int.data_type(&s).unwrap(), DataType::Int);
    }

    #[test]
    fn display_of_expressions() {
        let e = ScalarExpr::column(0, "id").eq(ScalarExpr::literal("x"));
        assert_eq!(e.to_string(), "(id#0 = 'x')");
        let c = ScalarExpr::Case {
            operand: None,
            branches: vec![(
                ScalarExpr::column(0, "id").eq(ScalarExpr::literal(1i64)),
                ScalarExpr::literal(10i64),
            )],
            else_expr: Some(Box::new(ScalarExpr::literal(0i64))),
        };
        assert!(c.to_string().starts_with("CASE WHEN"));
    }

    #[test]
    fn constant_detection() {
        assert!(ScalarExpr::literal(1i64).is_constant());
        assert!(!ScalarExpr::column(0, "x").is_constant());
    }

    #[test]
    fn scalar_function_lookup() {
        assert_eq!(ScalarFunction::from_name("SUBSTRING"), Some(ScalarFunction::Substring));
        assert_eq!(ScalarFunction::from_name("no_such_fn"), None);
        assert_eq!(AggregateFunction::from_name("SUM"), Some(AggregateFunction::Sum));
        assert_eq!(AggregateFunction::from_name("median"), None);
    }
}
