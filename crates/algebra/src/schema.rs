//! Schemas: ordered lists of named, typed attributes.
//!
//! Attributes carry an optional *qualifier* (the base relation or subquery alias they come from)
//! so that the SQL analyzer can resolve qualified references, and a *provenance flag* used by the
//! Perm rewriter and the SQL-PLE `PROVENANCE (attrs)` clause to recognise provenance attributes
//! of already-rewritten inputs.

use std::fmt;

use crate::error::AlgebraError;
use crate::value::DataType;

/// A single attribute (column) of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name (case-normalised to lower case by the SQL layer).
    pub name: String,
    /// Data type of the attribute.
    pub data_type: DataType,
    /// Relation name or subquery alias this attribute is visible under, if any.
    pub qualifier: Option<String>,
    /// Whether this attribute is a provenance attribute (`prov_<rel>_<attr>` in the paper's
    /// naming scheme). Set by the provenance rewriter and by `PROVENANCE (attrs)` declarations.
    pub provenance: bool,
}

impl Attribute {
    /// Create a plain (non-provenance, unqualified) attribute.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Attribute {
        Attribute { name: name.into(), data_type, qualifier: None, provenance: false }
    }

    /// Create an attribute qualified by a relation name or alias.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Attribute {
        Attribute {
            name: name.into(),
            data_type,
            qualifier: Some(qualifier.into()),
            provenance: false,
        }
    }

    /// Returns a copy marked as a provenance attribute.
    pub fn as_provenance(mut self) -> Attribute {
        self.provenance = true;
        self
    }

    /// Returns a copy with a different qualifier.
    pub fn with_qualifier(mut self, qualifier: impl Into<String>) -> Attribute {
        self.qualifier = Some(qualifier.into());
        self
    }

    /// Returns a copy with a different name.
    pub fn renamed(mut self, name: impl Into<String>) -> Attribute {
        self.name = name.into();
        self
    }

    /// Does `reference` (either `name` or `qualifier.name`) refer to this attribute?
    pub fn matches(&self, reference: &str) -> bool {
        match reference.split_once('.') {
            Some((qual, name)) => {
                self.name.eq_ignore_ascii_case(name)
                    && self.qualifier.as_deref().is_some_and(|q| q.eq_ignore_ascii_case(qual))
            }
            None => self.name.eq_ignore_ascii_case(reference),
        }
    }

    /// Fully qualified display name.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.qualified_name(), self.data_type)?;
        if self.provenance {
            write!(f, " [prov]")?;
        }
        Ok(())
    }
}

/// An ordered list of attributes describing a relation or query result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Create a schema from attributes.
    pub fn new(attributes: Vec<Attribute>) -> Schema {
        Schema { attributes }
    }

    /// The empty schema.
    pub fn empty() -> Schema {
        Schema { attributes: Vec::new() }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Schema {
        Schema { attributes: pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect() }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attributes as a slice.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute at position `i`.
    pub fn attribute(&self, i: usize) -> Result<&Attribute, AlgebraError> {
        self.attributes
            .get(i)
            .ok_or(AlgebraError::ColumnIndexOutOfBounds { index: i, width: self.arity() })
    }

    /// All attribute names, in order.
    pub fn attribute_names(&self) -> Vec<String> {
        self.attributes.iter().map(|a| a.name.clone()).collect()
    }

    /// Indices of all provenance attributes.
    pub fn provenance_indices(&self) -> Vec<usize> {
        self.attributes.iter().enumerate().filter_map(|(i, a)| a.provenance.then_some(i)).collect()
    }

    /// Indices of all normal (non-provenance) attributes.
    pub fn normal_indices(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter_map(|(i, a)| (!a.provenance).then_some(i))
            .collect()
    }

    /// Resolve an attribute reference (`name` or `qualifier.name`) to its position.
    ///
    /// Returns an error if the name is unknown or ambiguous.
    pub fn resolve(&self, reference: &str) -> Result<usize, AlgebraError> {
        let mut matches = self
            .attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.matches(reference))
            .map(|(i, _)| i);
        match (matches.next(), matches.next()) {
            (Some(i), None) => Ok(i),
            (Some(_), Some(_)) => {
                Err(AlgebraError::AmbiguousAttribute { name: reference.to_string() })
            }
            (None, _) => Err(AlgebraError::UnknownAttribute {
                name: reference.to_string(),
                available: self.attributes.iter().map(|a| a.qualified_name()).collect(),
            }),
        }
    }

    /// Like [`Schema::resolve`] but returns `None` instead of an unknown-attribute error.
    pub fn try_resolve(&self, reference: &str) -> Result<Option<usize>, AlgebraError> {
        match self.resolve(reference) {
            Ok(i) => Ok(Some(i)),
            Err(AlgebraError::UnknownAttribute { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Concatenate two schemas (joins, cross products).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut attributes = self.attributes.clone();
        attributes.extend(other.attributes.iter().cloned());
        Schema { attributes }
    }

    /// Schema made of the attributes at the given positions.
    pub fn project(&self, positions: &[usize]) -> Schema {
        Schema { attributes: positions.iter().map(|&i| self.attributes[i].clone()).collect() }
    }

    /// Replace all qualifiers with `alias` (used by subquery aliases `... AS x`).
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema {
            attributes: self
                .attributes
                .iter()
                .map(|a| a.clone().with_qualifier(alias.to_string()))
                .collect(),
        }
    }

    /// Are the two schemas union compatible (same arity and pairwise coercible types)?
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self.attributes.iter().zip(other.attributes.iter()).all(|(a, b)| {
                a.data_type.coercible_to(b.data_type) || b.data_type.coercible_to(a.data_type)
            })
    }

    /// Append an attribute, returning the new schema.
    pub fn with_attribute(&self, attribute: Attribute) -> Schema {
        let mut attributes = self.attributes.clone();
        attributes.push(attribute);
        Schema { attributes }
    }

    /// Iterate over `(index, attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Attribute)> {
        self.attributes.iter().enumerate()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Attribute>> for Schema {
    fn from(attributes: Vec<Attribute>) -> Self {
        Schema::new(attributes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shop_schema() -> Schema {
        Schema::new(vec![
            Attribute::qualified("shop", "name", DataType::Text),
            Attribute::qualified("shop", "numempl", DataType::Int),
        ])
    }

    #[test]
    fn resolve_by_plain_and_qualified_name() {
        let s = shop_schema();
        assert_eq!(s.resolve("name").unwrap(), 0);
        assert_eq!(s.resolve("shop.numempl").unwrap(), 1);
        assert_eq!(s.resolve("SHOP.NumEmpl").unwrap(), 1);
    }

    #[test]
    fn resolve_unknown_and_ambiguous() {
        let s = shop_schema();
        assert!(matches!(s.resolve("zip"), Err(AlgebraError::UnknownAttribute { .. })));
        let joined =
            s.concat(&Schema::new(vec![Attribute::qualified("sales", "name", DataType::Text)]));
        assert!(matches!(joined.resolve("name"), Err(AlgebraError::AmbiguousAttribute { .. })));
        assert_eq!(joined.resolve("sales.name").unwrap(), 2);
        assert_eq!(joined.try_resolve("nothere").unwrap(), None);
    }

    #[test]
    fn concat_and_project() {
        let s = shop_schema();
        let items = Schema::from_pairs(&[("id", DataType::Int), ("price", DataType::Int)]);
        let both = s.concat(&items);
        assert_eq!(both.arity(), 4);
        let proj = both.project(&[3, 0]);
        assert_eq!(proj.attribute_names(), vec!["price", "name"]);
    }

    #[test]
    fn provenance_flags_partition_schema() {
        let s = shop_schema()
            .with_attribute(Attribute::new("prov_shop_name", DataType::Text).as_provenance())
            .with_attribute(Attribute::new("prov_shop_numempl", DataType::Int).as_provenance());
        assert_eq!(s.normal_indices(), vec![0, 1]);
        assert_eq!(s.provenance_indices(), vec![2, 3]);
    }

    #[test]
    fn union_compatibility() {
        let a = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Text)]);
        let b = Schema::from_pairs(&[("p", DataType::Float), ("q", DataType::Text)]);
        let c = Schema::from_pairs(&[("p", DataType::Float)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn qualifier_rewrite_for_alias() {
        let s = shop_schema().with_qualifier("s");
        assert_eq!(s.resolve("s.name").unwrap(), 0);
        assert!(s.resolve("shop.name").is_err());
    }
}
