//! Error type shared by the algebra layer.

use std::fmt;

/// Errors raised while constructing or type-checking algebra expressions and plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// An attribute name could not be resolved against a schema.
    UnknownAttribute {
        /// The attribute name (possibly qualified) that failed to resolve.
        name: String,
        /// The attribute names that were available.
        available: Vec<String>,
    },
    /// An attribute name resolved to more than one attribute.
    AmbiguousAttribute {
        /// The ambiguous name.
        name: String,
    },
    /// A column index was out of bounds for the schema it was resolved against.
    ColumnIndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The width of the schema.
        width: usize,
    },
    /// A value or expression did not have the type an operation required.
    TypeMismatch {
        /// Human-readable description of the context.
        context: String,
        /// The type (or type family) the operation required.
        expected: String,
        /// The type that was actually found.
        actual: String,
        /// Path from the plan root to the offending operator (empty when the error was not
        /// raised by plan verification, e.g. for runtime value arithmetic).
        path: Vec<String>,
    },
    /// Inputs of a set operation were not union compatible.
    NotUnionCompatible {
        /// Width of the left input.
        left_width: usize,
        /// Width of the right input.
        right_width: usize,
    },
    /// A value could not be parsed from its textual form.
    ParseValue {
        /// The text that failed to parse.
        text: String,
        /// The target type.
        target: String,
    },
    /// Arithmetic failed (division by zero on integers, ...).
    Arithmetic(String),
    /// Integer arithmetic overflowed the 64-bit value range.
    ///
    /// Raised by checked `Value` arithmetic instead of silently wrapping (release) or panicking
    /// (debug); the executor surfaces it as `ExecError::ArithmeticOverflow` so that the row,
    /// vectorized and parallel pipelines all report the identical error.
    ArithmeticOverflow {
        /// The operation that overflowed ("addition", "multiplication", ...).
        operation: String,
    },
    /// Catch-all for invariant violations.
    Internal(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownAttribute { name, available } => {
                write!(f, "unknown attribute '{name}' (available: {})", available.join(", "))
            }
            AlgebraError::AmbiguousAttribute { name } => {
                write!(f, "ambiguous attribute reference '{name}'")
            }
            AlgebraError::ColumnIndexOutOfBounds { index, width } => {
                write!(f, "column index {index} out of bounds for schema of width {width}")
            }
            AlgebraError::TypeMismatch { context, expected, actual, path } => {
                write!(f, "type mismatch in {context}: expected {expected}, got {actual}")?;
                if !path.is_empty() {
                    write!(f, " (at {})", path.join(" > "))?;
                }
                Ok(())
            }
            AlgebraError::NotUnionCompatible { left_width, right_width } => {
                write!(
                    f,
                    "set operation inputs are not union compatible ({left_width} vs {right_width} columns)"
                )
            }
            AlgebraError::ParseValue { text, target } => {
                write!(f, "cannot parse '{text}' as {target}")
            }
            AlgebraError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            AlgebraError::ArithmeticOverflow { operation } => {
                write!(f, "arithmetic overflow in {operation}")
            }
            AlgebraError::Internal(msg) => write!(f, "internal algebra error: {msg}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_attribute_lists_candidates() {
        let err = AlgebraError::UnknownAttribute {
            name: "shop.zip".into(),
            available: vec!["name".into(), "numempl".into()],
        };
        let text = err.to_string();
        assert!(text.contains("shop.zip"));
        assert!(text.contains("numempl"));
    }

    #[test]
    fn display_type_mismatch_mentions_both_sides() {
        let err = AlgebraError::TypeMismatch {
            context: "addition".into(),
            expected: "Int".into(),
            actual: "Text".into(),
            path: vec![],
        };
        assert!(err.to_string().contains("Int"));
        assert!(err.to_string().contains("Text"));
    }

    #[test]
    fn display_type_mismatch_renders_operator_path() {
        let err = AlgebraError::TypeMismatch {
            context: "selection predicate".into(),
            expected: "BOOL".into(),
            actual: "TEXT".into(),
            path: vec!["Projection".into(), "Join(left)".into(), "Selection".into()],
        };
        assert!(err.to_string().contains("Projection > Join(left) > Selection"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&AlgebraError::Internal("x".into()));
    }
}
