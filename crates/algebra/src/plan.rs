//! The logical algebra operators of the Perm paper (Figure 1), plus the auxiliary operators
//! needed to express SQL (sort, limit, literal values, subquery aliases).
//!
//! Plans are immutable trees with [`std::sync::Arc`] children so that the provenance rewriter can
//! duplicate sub-plans cheaply (rewrite rules R5–R9 and the ASPJ / set-operation query-tree
//! rewrites all reference the *original* sub-plan next to its rewritten copy).

use std::fmt;
use std::sync::Arc;

use crate::error::AlgebraError;
use crate::expr::{AggregateExpr, ScalarExpr, SortKey};
use crate::schema::{Attribute, Schema};
use crate::tuple::Tuple;
use crate::value::DataType;

/// Set vs. bag semantics of an operator (the `S`/`B` superscripts of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetSemantics {
    /// Duplicate-eliminating (set) semantics.
    Set,
    /// Duplicate-preserving (bag) semantics.
    Bag,
}

/// The kind of a set operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOpKind {
    /// Union (`∪`).
    Union,
    /// Intersection (`∩`).
    Intersect,
    /// Difference (`−`).
    Difference,
}

impl fmt::Display for SetOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SetOpKind::Union => "UNION",
            SetOpKind::Intersect => "INTERSECT",
            SetOpKind::Difference => "EXCEPT",
        };
        f.write_str(s)
    }
}

/// The kind of a join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Cross product (`×`).
    Cross,
    /// Inner join (`⋈_C`).
    Inner,
    /// Left outer join.
    LeftOuter,
    /// Right outer join.
    RightOuter,
    /// Full outer join.
    FullOuter,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Cross => "CROSS",
            JoinKind::Inner => "INNER",
            JoinKind::LeftOuter => "LEFT OUTER",
            JoinKind::RightOuter => "RIGHT OUTER",
            JoinKind::FullOuter => "FULL OUTER",
        };
        f.write_str(s)
    }
}

/// A node of the logical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// A reference to a stored base relation (or a view / subquery forced to act as one via the
    /// SQL-PLE `BASERELATION` keyword).
    BaseRelation {
        /// Catalog name of the relation.
        name: String,
        /// Alias under which the relation is referenced, if any.
        alias: Option<String>,
        /// The relation's schema (attribute qualifiers already set to the alias or name).
        schema: Schema,
        /// Reference counter distinguishing multiple references to the same relation within one
        /// query; used by the provenance attribute naming scheme (`prov_<rel>_<k>_<attr>`).
        ref_id: usize,
    },
    /// A literal relation (used by `INSERT ... VALUES` and tests).
    Values {
        /// Schema of the rows.
        schema: Schema,
        /// The rows.
        rows: Vec<Tuple>,
    },
    /// Projection `Π_A(T)`; `distinct = true` selects the set-semantics version.
    Projection {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Projected expressions with output names.
        exprs: Vec<(ScalarExpr, String)>,
        /// Whether duplicates are eliminated (set semantics).
        distinct: bool,
    },
    /// Selection `σ_C(T)`.
    Selection {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// The predicate.
        predicate: ScalarExpr,
    },
    /// Cross product / join family (`×`, `⋈_C`, outer joins). The join condition refers to the
    /// concatenated schema `left ++ right`.
    Join {
        /// Left input.
        left: Arc<LogicalPlan>,
        /// Right input.
        right: Arc<LogicalPlan>,
        /// Join kind.
        kind: JoinKind,
        /// Join condition; `None` only for cross products.
        condition: Option<ScalarExpr>,
    },
    /// Aggregation `α_{G, aggr}(T)`; output schema is the grouping expressions followed by the
    /// aggregate results.
    Aggregation {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Grouping expressions with output names.
        group_by: Vec<(ScalarExpr, String)>,
        /// Aggregate expressions with output names.
        aggregates: Vec<(AggregateExpr, String)>,
    },
    /// Set operation (union / intersection / difference) with set or bag semantics.
    SetOp {
        /// Left input.
        left: Arc<LogicalPlan>,
        /// Right input.
        right: Arc<LogicalPlan>,
        /// Which set operation.
        kind: SetOpKind,
        /// Set or bag semantics (`UNION` vs `UNION ALL`).
        semantics: SetSemantics,
    },
    /// Sort (`ORDER BY`). Provenance rewriting passes through this operator untouched.
    Sort {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Sort keys.
        keys: Vec<SortKey>,
    },
    /// Limit / offset.
    Limit {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Maximum number of rows to return (`None` = unlimited).
        limit: Option<usize>,
        /// Number of rows to skip.
        offset: usize,
    },
    /// A named subquery (`FROM (...) AS alias`); only changes attribute qualifiers.
    SubqueryAlias {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// The alias.
        alias: String,
    },
    /// An SQL-PLE provenance annotation attached to a from-clause item (§IV-A of the paper).
    ///
    /// Normal execution passes straight through this node; the provenance rewriter of
    /// `perm-core` interprets it.
    ProvenanceAnnotation {
        /// The annotated sub-plan.
        input: Arc<LogicalPlan>,
        /// Which annotation was given.
        kind: ProvenanceAnnotationKind,
    },
}

/// The kinds of SQL-PLE from-clause provenance annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum ProvenanceAnnotationKind {
    /// `... BASERELATION` — treat the sub-plan as a base relation (rewrite rule R1 applies to it
    /// as a whole), limiting the provenance scope.
    BaseRelation,
    /// `... PROVENANCE (attr, ...)` — the sub-plan is already provenance-rewritten (external or
    /// stored provenance); the listed attributes form its P-list.
    AlreadyRewritten(Vec<String>),
}

/// Pop the next child during [`LogicalPlan::with_new_children`]; the arity is pre-checked, so an
/// empty vector here is an internal invariant violation rather than a panic.
fn pop_child(children: &mut Vec<Arc<LogicalPlan>>) -> Result<Arc<LogicalPlan>, AlgebraError> {
    children.pop().ok_or_else(|| AlgebraError::Internal("with_new_children: missing child".into()))
}

impl LogicalPlan {
    /// The output schema of this plan node.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::BaseRelation { schema, .. } | LogicalPlan::Values { schema, .. } => {
                schema.clone()
            }
            LogicalPlan::Projection { input, exprs, .. } => {
                let in_schema = input.schema();
                Schema::new(
                    exprs
                        .iter()
                        .map(|(e, name)| {
                            let data_type = e.data_type(&in_schema).unwrap_or(DataType::Text);
                            // Propagate the provenance flag and qualifier of direct column refs.
                            let (provenance, qualifier) = match e.as_column() {
                                Some(i) => in_schema
                                    .attribute(i)
                                    .map(|a| (a.provenance, a.qualifier.clone()))
                                    .unwrap_or((false, None)),
                                None => (false, None),
                            };
                            Attribute { name: name.clone(), data_type, qualifier, provenance }
                        })
                        .collect(),
                )
            }
            LogicalPlan::Selection { input, .. } => input.schema(),
            LogicalPlan::Join { left, right, .. } => left.schema().concat(&right.schema()),
            LogicalPlan::Aggregation { input, group_by, aggregates } => {
                let in_schema = input.schema();
                let mut attrs = Vec::with_capacity(group_by.len() + aggregates.len());
                for (e, name) in group_by {
                    let data_type = e.data_type(&in_schema).unwrap_or(DataType::Text);
                    let (provenance, qualifier) = match e.as_column() {
                        Some(i) => in_schema
                            .attribute(i)
                            .map(|a| (a.provenance, a.qualifier.clone()))
                            .unwrap_or((false, None)),
                        None => (false, None),
                    };
                    attrs.push(Attribute { name: name.clone(), data_type, qualifier, provenance });
                }
                for (a, name) in aggregates {
                    let data_type = a.data_type(&in_schema).unwrap_or(DataType::Float);
                    attrs.push(Attribute {
                        name: name.clone(),
                        data_type,
                        qualifier: None,
                        provenance: false,
                    });
                }
                Schema::new(attrs)
            }
            LogicalPlan::SetOp { left, .. } => left.schema(),
            LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::SubqueryAlias { input, alias } => input.schema().with_qualifier(alias),
            LogicalPlan::ProvenanceAnnotation { input, kind } => {
                let schema = input.schema();
                match kind {
                    ProvenanceAnnotationKind::BaseRelation => schema,
                    ProvenanceAnnotationKind::AlreadyRewritten(attrs) => Schema::new(
                        schema
                            .attributes()
                            .iter()
                            .map(|a| {
                                let mut a = a.clone();
                                if attrs.iter().any(|p| a.matches(p)) {
                                    a.provenance = true;
                                }
                                a
                            })
                            .collect(),
                    ),
                }
            }
        }
    }

    /// The number of output columns, computed without materialising the full [`Schema`]
    /// (which clones attribute names). Hot paths — the executor and optimizer — only need
    /// arities to split join column spaces.
    ///
    /// Delegates to [`crate::typed::output_arity`], the single arity derivation shared with
    /// the full type inference of [`LogicalPlan::verify`], which cross-checks the two at
    /// every node so they cannot drift apart.
    pub fn output_arity(&self) -> usize {
        crate::typed::output_arity(self)
    }

    /// The direct children of this node.
    pub fn children(&self) -> Vec<&Arc<LogicalPlan>> {
        match self {
            LogicalPlan::BaseRelation { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Projection { input, .. }
            | LogicalPlan::Selection { input, .. }
            | LogicalPlan::Aggregation { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::SubqueryAlias { input, .. }
            | LogicalPlan::ProvenanceAnnotation { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Rebuild this node with new children (same arity as [`LogicalPlan::children`]).
    pub fn with_new_children(
        &self,
        mut children: Vec<Arc<LogicalPlan>>,
    ) -> Result<LogicalPlan, AlgebraError> {
        let expected = self.children().len();
        if children.len() != expected {
            return Err(AlgebraError::Internal(format!(
                "with_new_children: expected {expected} children, got {}",
                children.len()
            )));
        }
        Ok(match self {
            LogicalPlan::BaseRelation { .. } | LogicalPlan::Values { .. } => self.clone(),
            LogicalPlan::Projection { exprs, distinct, .. } => LogicalPlan::Projection {
                input: pop_child(&mut children)?,
                exprs: exprs.clone(),
                distinct: *distinct,
            },
            LogicalPlan::Selection { predicate, .. } => LogicalPlan::Selection {
                input: pop_child(&mut children)?,
                predicate: predicate.clone(),
            },
            LogicalPlan::Join { kind, condition, .. } => {
                let right = pop_child(&mut children)?;
                let left = pop_child(&mut children)?;
                LogicalPlan::Join { left, right, kind: *kind, condition: condition.clone() }
            }
            LogicalPlan::Aggregation { group_by, aggregates, .. } => LogicalPlan::Aggregation {
                input: pop_child(&mut children)?,
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            },
            LogicalPlan::SetOp { kind, semantics, .. } => {
                let right = pop_child(&mut children)?;
                let left = pop_child(&mut children)?;
                LogicalPlan::SetOp { left, right, kind: *kind, semantics: *semantics }
            }
            LogicalPlan::Sort { keys, .. } => {
                LogicalPlan::Sort { input: pop_child(&mut children)?, keys: keys.clone() }
            }
            LogicalPlan::Limit { limit, offset, .. } => LogicalPlan::Limit {
                input: pop_child(&mut children)?,
                limit: *limit,
                offset: *offset,
            },
            LogicalPlan::SubqueryAlias { alias, .. } => LogicalPlan::SubqueryAlias {
                input: pop_child(&mut children)?,
                alias: alias.clone(),
            },
            LogicalPlan::ProvenanceAnnotation { kind, .. } => LogicalPlan::ProvenanceAnnotation {
                input: pop_child(&mut children)?,
                kind: kind.clone(),
            },
        })
    }

    /// Collect every base-relation reference in the plan, left-to-right (pre-order).
    ///
    /// The order matches the order in which the provenance rewriter appends provenance attribute
    /// groups, and therefore the order of the `prov_*` columns in a rewritten query's result.
    pub fn base_relations(&self) -> Vec<&LogicalPlan> {
        let mut out = Vec::new();
        fn walk<'a>(plan: &'a LogicalPlan, out: &mut Vec<&'a LogicalPlan>) {
            if let LogicalPlan::BaseRelation { .. } = plan {
                out.push(plan);
            }
            for child in plan.children() {
                walk(child, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Visit every scalar expression node appearing in the plan (projections, predicates, join
    /// conditions, grouping keys, aggregate arguments, sort keys), recursing into children and
    /// into the sub-plans of sublink expressions.
    pub fn for_each_expr(&self, f: &mut impl FnMut(&ScalarExpr)) {
        fn visit_expr(e: &ScalarExpr, f: &mut impl FnMut(&ScalarExpr)) {
            e.visit(f);
            for sublink in e.sublinks() {
                if let ScalarExpr::Sublink { plan, .. } = sublink {
                    plan.for_each_expr(f);
                }
            }
        }
        match self {
            LogicalPlan::Projection { exprs, .. } => {
                exprs.iter().for_each(|(e, _)| visit_expr(e, f))
            }
            LogicalPlan::Selection { predicate, .. } => visit_expr(predicate, f),
            LogicalPlan::Join { condition: Some(c), .. } => visit_expr(c, f),
            LogicalPlan::Aggregation { group_by, aggregates, .. } => {
                group_by.iter().for_each(|(e, _)| visit_expr(e, f));
                aggregates.iter().filter_map(|(a, _)| a.arg.as_ref()).for_each(|e| {
                    visit_expr(e, f);
                });
            }
            LogicalPlan::Sort { keys, .. } => keys.iter().for_each(|k| visit_expr(&k.expr, f)),
            _ => {}
        }
        for child in self.children() {
            child.for_each_expr(f);
        }
    }

    /// The highest zero-based parameter index (`$n` has index `n - 1`) referenced anywhere in
    /// the plan, or `None` when the plan is parameter-free. Used by prepared statements to
    /// derive the expected number of bound values.
    pub fn max_parameter(&self) -> Option<usize> {
        let mut max: Option<usize> = None;
        self.for_each_expr(&mut |e| {
            if let ScalarExpr::Parameter { index } = e {
                max = Some(max.map_or(*index, |m| m.max(*index)));
            }
        });
        max
    }

    /// Total number of operator nodes in the plan (used by the benchmark reports).
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// A one-line description of the operator (without its children).
    pub fn describe(&self) -> String {
        match self {
            LogicalPlan::BaseRelation { name, alias, ref_id, .. } => match alias {
                Some(a) if a != name => format!("BaseRelation {name} AS {a} (#{ref_id})"),
                _ => format!("BaseRelation {name} (#{ref_id})"),
            },
            LogicalPlan::Values { rows, .. } => format!("Values ({} rows)", rows.len()),
            LogicalPlan::Projection { exprs, distinct, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!(
                    "Projection{} [{}]",
                    if *distinct { " DISTINCT" } else { "" },
                    cols.join(", ")
                )
            }
            LogicalPlan::Selection { predicate, .. } => format!("Selection [{predicate}]"),
            LogicalPlan::Join { kind, condition, .. } => match condition {
                Some(c) => format!("Join {kind} ON {c}"),
                None => format!("Join {kind}"),
            },
            LogicalPlan::Aggregation { group_by, aggregates, .. } => {
                let groups: Vec<String> =
                    group_by.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                let aggs: Vec<String> =
                    aggregates.iter().map(|(a, n)| format!("{a} AS {n}")).collect();
                format!("Aggregation GROUP BY [{}] AGG [{}]", groups.join(", "), aggs.join(", "))
            }
            LogicalPlan::SetOp { kind, semantics, .. } => {
                format!("{kind}{}", if *semantics == SetSemantics::Bag { " ALL" } else { "" })
            }
            LogicalPlan::Sort { keys, .. } => {
                let ks: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                format!("Sort [{}]", ks.join(", "))
            }
            LogicalPlan::Limit { limit, offset, .. } => format!("Limit {limit:?} OFFSET {offset}"),
            LogicalPlan::SubqueryAlias { alias, .. } => format!("SubqueryAlias {alias}"),
            LogicalPlan::ProvenanceAnnotation { kind, .. } => match kind {
                ProvenanceAnnotationKind::BaseRelation => {
                    "ProvenanceAnnotation BASERELATION".to_string()
                }
                ProvenanceAnnotationKind::AlreadyRewritten(attrs) => {
                    format!("ProvenanceAnnotation PROVENANCE ({})", attrs.join(", "))
                }
            },
        }
    }

    /// Pretty-print the plan as an indented tree.
    pub fn display_tree(&self) -> String {
        let mut out = String::new();
        fn walk(plan: &LogicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&plan.describe());
            out.push('\n');
            for child in plan.children() {
                walk(child, depth + 1, out);
            }
        }
        walk(self, 0, &mut out);
        out
    }

    /// Validate structural invariants of the plan (arities, union compatibility, column bounds).
    pub fn validate(&self) -> Result<(), AlgebraError> {
        for child in self.children() {
            child.validate()?;
        }
        match self {
            LogicalPlan::Projection { input, exprs, .. } => {
                let schema = input.schema();
                for (e, _) in exprs {
                    check_columns(e, schema.arity())?;
                }
            }
            LogicalPlan::Selection { input, predicate } => {
                check_columns(predicate, input.schema().arity())?;
            }
            LogicalPlan::Join { left, right, condition: Some(c), .. } => {
                check_columns(c, left.schema().arity() + right.schema().arity())?;
            }
            LogicalPlan::Aggregation { input, group_by, aggregates } => {
                let arity = input.schema().arity();
                for (e, _) in group_by {
                    check_columns(e, arity)?;
                }
                for (a, _) in aggregates {
                    if let Some(arg) = &a.arg {
                        check_columns(arg, arity)?;
                    }
                }
            }
            LogicalPlan::SetOp { left, right, .. } => {
                let l = left.schema();
                let r = right.schema();
                if !l.union_compatible(&r) {
                    return Err(AlgebraError::NotUnionCompatible {
                        left_width: l.arity(),
                        right_width: r.arity(),
                    });
                }
            }
            LogicalPlan::Sort { input, keys } => {
                let arity = input.schema().arity();
                for k in keys {
                    check_columns(&k.expr, arity)?;
                }
            }
            _ => {}
        }
        Ok(())
    }
}

fn check_columns(expr: &ScalarExpr, arity: usize) -> Result<(), AlgebraError> {
    for col in expr.columns_used() {
        if col >= arity {
            return Err(AlgebraError::ColumnIndexOutOfBounds { index: col, width: arity });
        }
    }
    Ok(())
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggregateFunction, BinaryOperator};
    use crate::value::Value;

    fn shop() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::BaseRelation {
            name: "shop".into(),
            alias: None,
            schema: Schema::new(vec![
                Attribute::qualified("shop", "name", DataType::Text),
                Attribute::qualified("shop", "numempl", DataType::Int),
            ]),
            ref_id: 0,
        })
    }

    fn sales() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::BaseRelation {
            name: "sales".into(),
            alias: None,
            schema: Schema::new(vec![
                Attribute::qualified("sales", "sname", DataType::Text),
                Attribute::qualified("sales", "itemid", DataType::Int),
            ]),
            ref_id: 1,
        })
    }

    #[test]
    fn join_schema_is_concatenation() {
        let join = LogicalPlan::Join {
            left: shop(),
            right: sales(),
            kind: JoinKind::Inner,
            condition: Some(ScalarExpr::column(0, "name").eq(ScalarExpr::column(2, "sname"))),
        };
        assert_eq!(join.schema().attribute_names(), vec!["name", "numempl", "sname", "itemid"]);
        join.validate().unwrap();
    }

    #[test]
    fn projection_schema_types_and_names() {
        let proj = LogicalPlan::Projection {
            input: shop(),
            exprs: vec![
                (ScalarExpr::column(0, "name"), "shop_name".into()),
                (
                    ScalarExpr::binary(
                        BinaryOperator::Mul,
                        ScalarExpr::column(1, "numempl"),
                        ScalarExpr::literal(2i64),
                    ),
                    "double_empl".into(),
                ),
            ],
            distinct: false,
        };
        let schema = proj.schema();
        assert_eq!(schema.attribute_names(), vec!["shop_name", "double_empl"]);
        assert_eq!(schema.attribute(0).unwrap().data_type, DataType::Text);
        assert_eq!(schema.attribute(1).unwrap().data_type, DataType::Int);
    }

    #[test]
    fn aggregation_schema() {
        let agg = LogicalPlan::Aggregation {
            input: shop(),
            group_by: vec![(ScalarExpr::column(0, "name"), "name".into())],
            aggregates: vec![(
                AggregateExpr::new(AggregateFunction::Sum, ScalarExpr::column(1, "numempl")),
                "sum_empl".into(),
            )],
        };
        let schema = agg.schema();
        assert_eq!(schema.attribute_names(), vec!["name", "sum_empl"]);
        assert_eq!(schema.attribute(1).unwrap().data_type, DataType::Int);
    }

    #[test]
    fn validate_rejects_out_of_bounds_columns() {
        let bad = LogicalPlan::Selection {
            input: shop(),
            predicate: ScalarExpr::column(7, "ghost").eq(ScalarExpr::literal(1i64)),
        };
        assert!(matches!(bad.validate(), Err(AlgebraError::ColumnIndexOutOfBounds { .. })));
    }

    #[test]
    fn validate_rejects_incompatible_set_op() {
        let one_col = Arc::new(LogicalPlan::Values {
            schema: Schema::from_pairs(&[("x", DataType::Int)]),
            rows: vec![Tuple::new(vec![Value::Int(1)])],
        });
        let setop = LogicalPlan::SetOp {
            left: shop(),
            right: one_col,
            kind: SetOpKind::Union,
            semantics: SetSemantics::Bag,
        };
        assert!(matches!(setop.validate(), Err(AlgebraError::NotUnionCompatible { .. })));
    }

    #[test]
    fn base_relations_are_collected_in_preorder() {
        let join = LogicalPlan::Join {
            left: shop(),
            right: Arc::new(LogicalPlan::Selection {
                input: sales(),
                predicate: ScalarExpr::column(1, "itemid").eq(ScalarExpr::literal(1i64)),
            }),
            kind: JoinKind::Cross,
            condition: None,
        };
        let rels: Vec<String> = join
            .base_relations()
            .iter()
            .map(|p| match p {
                LogicalPlan::BaseRelation { name, .. } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rels, vec!["shop", "sales"]);
    }

    #[test]
    fn with_new_children_swaps_inputs() {
        let sel = LogicalPlan::Selection {
            input: shop(),
            predicate: ScalarExpr::column(1, "numempl").eq(ScalarExpr::literal(3i64)),
        };
        let replaced = sel.with_new_children(vec![sales()]).unwrap();
        match &replaced {
            LogicalPlan::Selection { input, .. } => match input.as_ref() {
                LogicalPlan::BaseRelation { name, .. } => assert_eq!(name, "sales"),
                other => panic!("unexpected input {other:?}"),
            },
            other => panic!("unexpected plan {other:?}"),
        }
        assert!(sel.with_new_children(vec![]).is_err());
    }

    #[test]
    fn subquery_alias_requalifies_schema() {
        let aliased = LogicalPlan::SubqueryAlias { input: shop(), alias: "s".into() };
        assert_eq!(aliased.schema().resolve("s.name").unwrap(), 0);
    }

    #[test]
    fn display_tree_is_indented() {
        let plan = LogicalPlan::Selection {
            input: shop(),
            predicate: ScalarExpr::column(1, "numempl").eq(ScalarExpr::literal(3i64)),
        };
        let text = plan.display_tree();
        assert!(text.starts_with("Selection"));
        assert!(text.contains("\n  BaseRelation shop"));
    }

    #[test]
    fn node_count_counts_operators() {
        let plan = LogicalPlan::Selection { input: shop(), predicate: ScalarExpr::literal(true) };
        assert_eq!(plan.node_count(), 2);
    }
}
