//! # perm-algebra
//!
//! The extended, bag-semantic relational algebra underlying the Perm provenance system
//! (Glavic & Alonso, ICDE 2009, Figure 1).
//!
//! This crate defines the *logical* layer shared by every other crate in the workspace:
//!
//! * [`Value`] / [`DataType`] — the scalar type system (SQL-style three-valued logic, dates,
//!   numeric types, text).
//! * [`Tuple`] — a row of values.
//! * [`chunk::Array`] / [`chunk::DataChunk`] — typed columnar vectors with validity bitmaps and
//!   the fixed-size row batches the vectorized executor moves between operators.
//! * [`Schema`] / [`Attribute`] — result descriptions with optional relation qualifiers and
//!   provenance markers.
//! * [`expr::ScalarExpr`] / [`expr::AggregateExpr`] — the expression language allowed in
//!   projections, selections, join conditions and aggregations.
//! * [`plan::LogicalPlan`] — the algebra operators of the paper's Figure 1: set/bag projection,
//!   selection, cross product, inner and outer joins, aggregation, and set/bag union,
//!   intersection and difference, plus the auxiliary operators needed for SQL (sort, limit,
//!   values, subquery alias).
//! * [`builder::PlanBuilder`] — an ergonomic way to assemble plans in tests, baselines and
//!   workload generators.
//! * [`typed::TypedSchema`] / [`LogicalPlan::verify`](plan::LogicalPlan::verify) — static type
//!   inference over plans (per-column type, nullability, provenance flag) with strict operator
//!   typing rules; every plan boundary (SQL binding, provenance rewrite, optimizer passes)
//!   verifies through it.
//!
//! The algebra is deliberately engine-agnostic: execution lives in `perm-exec`, storage in
//! `perm-storage`, SQL binding in `perm-sql`, and the provenance rewrite rules (the paper's
//! contribution) in `perm-core`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Non-test code must surface failures as structured errors, never panic on a recoverable
// condition (tests are exempt via clippy.toml); `cargo xtask lint` checks this header.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod builder;
pub mod chunk;
pub mod error;
pub mod expr;
pub mod plan;
pub mod schema;
pub mod tuple;
pub mod typed;
pub mod value;

pub use builder::PlanBuilder;
pub use chunk::{Array, ArrayBuilder, Bitmap, DataChunk, DEFAULT_CHUNK_SIZE};
pub use error::AlgebraError;
pub use expr::{
    AggregateExpr, AggregateFunction, BinaryOperator, ScalarExpr, ScalarFunction, SortKey,
    SortOrder, SublinkKind, UnaryOperator,
};
pub use plan::{JoinKind, LogicalPlan, ProvenanceAnnotationKind, SetOpKind, SetSemantics};
pub use schema::{Attribute, Schema};
pub use tuple::Tuple;
pub use typed::{verification_enabled, ColumnType, TypeError, TypeErrorKind, TypedSchema};
pub use value::{total_float_cmp, DataType, Value};
