//! Tuples (rows) of scalar values.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A tuple is an ordered list of scalar values.
///
/// Relations in the Perm algebra use *bag semantics*: a tuple may occur multiple times in a
/// relation. Multiplicity is represented by physical duplication in `perm-storage` (matching the
/// representation the paper's rewritten queries produce), so the tuple itself carries no count.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// The empty tuple (used as the group key of a global aggregation).
    pub fn empty() -> Tuple {
        Tuple { values: Vec::new() }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Is the tuple empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Value at position `i`, if within bounds.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Concatenate two tuples (used by joins and cross products).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Project the tuple onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple { values: positions.iter().map(|&i| self.values[i].clone()).collect() }
    }

    /// A tuple of `arity` NULL values (used to pad non-matching sides of outer joins).
    pub fn nulls(arity: usize) -> Tuple {
        Tuple { values: vec![Value::Null; arity] }
    }

    /// Append a value.
    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        &self.values[index]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro for building tuples in tests and examples.
///
/// ```
/// use perm_algebra::{tuple, Value};
/// let t = tuple!["Merdies", 3];
/// assert_eq!(t.arity(), 2);
/// assert_eq!(t[0], Value::text("Merdies"));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_preserves_order() {
        let a = tuple![1, 2];
        let b = tuple!["x"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c[0], Value::Int(1));
        assert_eq!(c[2], Value::text("x"));
    }

    #[test]
    fn project_selects_positions() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0]), tuple![30, 10]);
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn nulls_builds_padding_tuple() {
        let t = Tuple::nulls(3);
        assert_eq!(t.arity(), 3);
        assert!(t.values().iter().all(Value::is_null));
    }

    #[test]
    fn display_is_parenthesised() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, a)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn tuples_hash_and_compare_for_grouping() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(tuple![1, "a"]);
        set.insert(tuple![1, "a"]);
        set.insert(tuple![2, "a"]);
        assert_eq!(set.len(), 2);
    }
}
