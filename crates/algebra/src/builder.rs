//! A fluent builder for logical plans.
//!
//! Used heavily by tests, the baselines and the artificial workload generators of `perm-tpch`.
//! Column references can be given by *name*; the builder resolves them against the current
//! schema, which keeps call sites readable.

use std::sync::Arc;

use crate::error::AlgebraError;
use crate::expr::{AggregateExpr, ScalarExpr, SortKey};
use crate::plan::{JoinKind, LogicalPlan, SetOpKind, SetSemantics};
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Builds [`LogicalPlan`] trees incrementally.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: Arc<LogicalPlan>,
}

impl PlanBuilder {
    /// Start from an existing plan.
    pub fn from_plan(plan: LogicalPlan) -> PlanBuilder {
        PlanBuilder { plan: Arc::new(plan) }
    }

    /// Start from a base relation with the given schema. Attribute qualifiers are set to the
    /// relation name so qualified references resolve.
    pub fn scan(name: impl Into<String>, schema: Schema, ref_id: usize) -> PlanBuilder {
        let name = name.into();
        let schema = schema.with_qualifier(&name);
        PlanBuilder {
            plan: Arc::new(LogicalPlan::BaseRelation { name, alias: None, schema, ref_id }),
        }
    }

    /// Start from a literal set of rows.
    pub fn values(schema: Schema, rows: Vec<Tuple>) -> PlanBuilder {
        PlanBuilder { plan: Arc::new(LogicalPlan::Values { schema, rows }) }
    }

    /// The schema of the plan built so far.
    pub fn schema(&self) -> Schema {
        self.plan.schema()
    }

    /// Resolve an attribute name to a column expression against the current schema.
    pub fn col(&self, name: &str) -> Result<ScalarExpr, AlgebraError> {
        let schema = self.schema();
        let idx = schema.resolve(name)?;
        Ok(ScalarExpr::column(idx, schema.attribute(idx)?.name.clone()))
    }

    /// Add a selection with the given predicate.
    pub fn filter(self, predicate: ScalarExpr) -> PlanBuilder {
        PlanBuilder { plan: Arc::new(LogicalPlan::Selection { input: self.plan, predicate }) }
    }

    /// Add a bag-semantics projection. Each entry is `(expression, output name)`.
    pub fn project(self, exprs: Vec<(ScalarExpr, String)>) -> PlanBuilder {
        PlanBuilder {
            plan: Arc::new(LogicalPlan::Projection { input: self.plan, exprs, distinct: false }),
        }
    }

    /// Add a set-semantics (DISTINCT) projection.
    pub fn project_distinct(self, exprs: Vec<(ScalarExpr, String)>) -> PlanBuilder {
        PlanBuilder {
            plan: Arc::new(LogicalPlan::Projection { input: self.plan, exprs, distinct: true }),
        }
    }

    /// Project the named columns (no renaming, no computed expressions).
    pub fn project_columns(self, names: &[&str]) -> Result<PlanBuilder, AlgebraError> {
        let schema = self.schema();
        let mut exprs = Vec::with_capacity(names.len());
        for name in names {
            let idx = schema.resolve(name)?;
            let attr = schema.attribute(idx)?;
            exprs.push((ScalarExpr::column(idx, attr.name.clone()), attr.name.clone()));
        }
        Ok(self.project(exprs))
    }

    /// Join with another plan.
    pub fn join(
        self,
        right: PlanBuilder,
        kind: JoinKind,
        condition: Option<ScalarExpr>,
    ) -> PlanBuilder {
        PlanBuilder {
            plan: Arc::new(LogicalPlan::Join {
                left: self.plan,
                right: right.plan,
                kind,
                condition,
            }),
        }
    }

    /// Cross product with another plan.
    pub fn cross_join(self, right: PlanBuilder) -> PlanBuilder {
        self.join(right, JoinKind::Cross, None)
    }

    /// Add an aggregation.
    pub fn aggregate(
        self,
        group_by: Vec<(ScalarExpr, String)>,
        aggregates: Vec<(AggregateExpr, String)>,
    ) -> PlanBuilder {
        PlanBuilder {
            plan: Arc::new(LogicalPlan::Aggregation { input: self.plan, group_by, aggregates }),
        }
    }

    /// Combine with another plan through a set operation.
    pub fn set_op(
        self,
        right: PlanBuilder,
        kind: SetOpKind,
        semantics: SetSemantics,
    ) -> PlanBuilder {
        PlanBuilder {
            plan: Arc::new(LogicalPlan::SetOp {
                left: self.plan,
                right: right.plan,
                kind,
                semantics,
            }),
        }
    }

    /// Add a sort.
    pub fn sort(self, keys: Vec<SortKey>) -> PlanBuilder {
        PlanBuilder { plan: Arc::new(LogicalPlan::Sort { input: self.plan, keys }) }
    }

    /// Add a limit.
    pub fn limit(self, limit: Option<usize>, offset: usize) -> PlanBuilder {
        PlanBuilder { plan: Arc::new(LogicalPlan::Limit { input: self.plan, limit, offset }) }
    }

    /// Wrap in a subquery alias.
    pub fn alias(self, alias: impl Into<String>) -> PlanBuilder {
        PlanBuilder {
            plan: Arc::new(LogicalPlan::SubqueryAlias { input: self.plan, alias: alias.into() }),
        }
    }

    /// Finish building, returning the plan.
    pub fn build(self) -> LogicalPlan {
        Arc::try_unwrap(self.plan).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Finish building, returning the plan wrapped in an [`Arc`].
    pub fn build_arc(self) -> Arc<LogicalPlan> {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AggregateFunction;
    use crate::value::DataType;

    fn shop_schema() -> Schema {
        Schema::from_pairs(&[("name", DataType::Text), ("numempl", DataType::Int)])
    }

    fn sales_schema() -> Schema {
        Schema::from_pairs(&[("sname", DataType::Text), ("itemid", DataType::Int)])
    }

    #[test]
    fn build_the_paper_example_query_shape() {
        // q_ex = α_{name, sum(price)}(σ_{name=sname ∧ itemid=id}(shop × sales × items))
        let items_schema = Schema::from_pairs(&[("id", DataType::Int), ("price", DataType::Int)]);
        let shop = PlanBuilder::scan("shop", shop_schema(), 0);
        let sales = PlanBuilder::scan("sales", sales_schema(), 1);
        let items = PlanBuilder::scan("items", items_schema, 2);

        let prod = shop.cross_join(sales).cross_join(items);
        let name = prod.col("shop.name").unwrap();
        let sname = prod.col("sales.sname").unwrap();
        let itemid = prod.col("sales.itemid").unwrap();
        let id = prod.col("items.id").unwrap();
        let price = prod.col("items.price").unwrap();

        let filtered = prod.filter(name.clone().eq(sname).and(itemid.eq(id)));
        let agg = filtered.aggregate(
            vec![(name, "name".into())],
            vec![(AggregateExpr::new(AggregateFunction::Sum, price), "sum_price".into())],
        );
        let plan = agg.build();
        plan.validate().unwrap();
        assert_eq!(plan.schema().attribute_names(), vec!["name", "sum_price"]);
        assert_eq!(plan.base_relations().len(), 3);
    }

    #[test]
    fn col_resolves_qualified_names() {
        let b = PlanBuilder::scan("shop", shop_schema(), 0);
        assert!(b.col("shop.name").is_ok());
        assert!(b.col("name").is_ok());
        assert!(b.col("ghost").is_err());
    }

    #[test]
    fn project_columns_by_name() {
        let b = PlanBuilder::scan("shop", shop_schema(), 0).project_columns(&["numempl"]).unwrap();
        assert_eq!(b.schema().attribute_names(), vec!["numempl"]);
    }

    #[test]
    fn set_op_of_compatible_scans_validates() {
        let a = PlanBuilder::scan("shop", shop_schema(), 0);
        let b = PlanBuilder::scan("shop", shop_schema(), 1);
        let u = a.set_op(b, SetOpKind::Union, SetSemantics::Bag).build();
        u.validate().unwrap();
    }
}
