//! Columnar vectors ([`Array`]) and fixed-size batches ([`DataChunk`]).
//!
//! The executor moves data between operators as chunks of up to [`DEFAULT_CHUNK_SIZE`] rows,
//! stored column-wise: one typed [`Array`] per attribute plus a validity bitmap marking NULLs.
//! Predicates then evaluate into a filter bitmap that is applied by compacting whole columns,
//! projections gather columns instead of building per-row `Vec<Value>`s, and joins probe on
//! column slices — the per-row allocation and `clone()` traffic of tuple-at-a-time execution
//! disappears from the hot path.
//!
//! Tuples still exist at the edges (SQL literals, INSERT values, client-visible rows) and the
//! chunk layer converts losslessly in both directions: [`DataChunk::from_tuples`] /
//! [`DataChunk::tuple_at`]. Columns whose rows do not share one scalar type (legal in this
//! engine, e.g. a `CASE` mixing INT and TEXT arms) degrade to the boxed [`Array::Any`]
//! representation, so the columnar layer is a fast path, never a semantic restriction.

use std::sync::Arc;

use crate::tuple::Tuple;
use crate::value::{DataType, Value};

/// Number of rows per [`DataChunk`] in the executor pipeline.
pub const DEFAULT_CHUNK_SIZE: usize = 1024;

/// A validity bitmap: bit `i` is set iff row `i` holds a (non-NULL) value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` bits, all set (all rows valid).
    pub fn all_set(len: usize) -> Bitmap {
        let mut b = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.clear_tail();
        b
    }

    /// A bitmap of `len` bits, none set (all rows NULL).
    pub fn all_unset(len: usize) -> Bitmap {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the bitmap empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Append all bits of `other`, a word at a time (the per-bit [`Bitmap::push`] loop is too
    /// slow for column concatenation).
    pub fn extend_from(&mut self, other: &Bitmap) {
        if other.len == 0 {
            return;
        }
        let offset = self.len % 64;
        if offset == 0 {
            self.words.extend_from_slice(&other.words);
        } else {
            let shift = 64 - offset;
            for &w in &other.words {
                if let Some(last) = self.words.last_mut() {
                    *last |= w << offset;
                }
                self.words.push(w >> shift);
            }
        }
        self.len += other.len;
        self.words.truncate(self.len.div_ceil(64));
        self.clear_tail();
    }

    /// Append a bit.
    #[inline]
    pub fn push(&mut self, set: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if set {
            self.words[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Are all bits set (no NULLs)?
    pub fn all_set_bits(&self) -> bool {
        self.count_set() == self.len
    }

    /// Iterate the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Bitmap {
        let mut b = Bitmap::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

/// A typed columnar vector of scalar values with a validity bitmap.
///
/// The typed variants store unboxed native values; [`Array::Null`] is the degenerate all-NULL
/// column and [`Array::Any`] is the boxed fallback for columns whose rows mix scalar types.
/// [`Array::Dict`] and [`Array::RunLength`] are *encoded* views over another array; equality
/// ([`PartialEq`]) is logical, so an encoded array equals its decoded form row for row.
#[derive(Debug, Clone)]
pub enum Array {
    /// Booleans.
    Bool {
        /// Native values (`false` at invalid slots).
        values: Vec<bool>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// 64-bit integers.
    Int {
        /// Native values (`0` at invalid slots).
        values: Vec<i64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// 64-bit floats.
    Float {
        /// Native values (`0.0` at invalid slots).
        values: Vec<f64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// UTF-8 text (shared, so gathers are refcount bumps).
    Text {
        /// Native values (empty strings at invalid slots).
        values: Vec<Arc<str>>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Dates as days since 1970-01-01.
    Date {
        /// Native values (`0` at invalid slots).
        values: Vec<i32>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// A column of `len` NULLs.
    Null {
        /// Number of rows.
        len: usize,
    },
    /// Boxed fallback for columns mixing scalar types.
    Any {
        /// One boxed value per row.
        values: Vec<Value>,
    },
    /// Dictionary-encoded view: row `i` is row `indices[i]` of the shared `dict` array.
    ///
    /// Join gathers over duplicating provenance joins produce this instead of materializing
    /// the repeated source tuples: the dictionary is the (already materialized) build-side
    /// column shared by refcount, and only the 4-byte indices are per-output-row. NULLs live
    /// in the dictionary (`dict.is_null(indices[i])`), so there is no separate validity map.
    Dict {
        /// One dictionary row index per output row.
        indices: Vec<u32>,
        /// The shared dictionary of distinct (or at least source) rows.
        dict: Arc<Array>,
    },
    /// Run-length-encoded column: run `k` covers rows `[run_ends[k-1], run_ends[k])` and holds
    /// row `k` of `values`. Produced by wire serialization for long constant stretches; the
    /// executor never creates it on the hot path.
    RunLength {
        /// One representative row per run.
        values: Arc<Array>,
        /// Cumulative exclusive end offsets, strictly increasing; the last equals the length.
        run_ends: Vec<u32>,
    },
}

/// The run index covering row `i` of a run-length array with the given cumulative ends.
#[inline]
fn rle_run_index(run_ends: &[u32], i: usize) -> usize {
    run_ends.partition_point(|&end| end as usize <= i)
}

impl Array {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Array::Bool { values, .. } => values.len(),
            Array::Int { values, .. } => values.len(),
            Array::Float { values, .. } => values.len(),
            Array::Text { values, .. } => values.len(),
            Array::Date { values, .. } => values.len(),
            Array::Null { len } => *len,
            Array::Any { values } => values.len(),
            Array::Dict { indices, .. } => indices.len(),
            Array::RunLength { run_ends, .. } => run_ends.last().map_or(0, |&end| end as usize),
        }
    }

    /// Is the array empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is this a [`Array::Dict`] or [`Array::RunLength`] view (as opposed to a plain array)?
    pub fn is_encoded(&self) -> bool {
        matches!(self, Array::Dict { .. } | Array::RunLength { .. })
    }

    /// Resolve logical row `i` to the plain array and physical row that actually hold it,
    /// following any chain of encoded views.
    #[inline]
    fn resolve_row(&self, i: usize) -> (&Array, usize) {
        let (mut array, mut idx) = (self, i);
        loop {
            match array {
                Array::Dict { indices, dict } => {
                    idx = indices[idx] as usize;
                    array = dict;
                }
                Array::RunLength { values, run_ends } => {
                    idx = rle_run_index(run_ends, idx);
                    array = values;
                }
                _ => return (array, idx),
            }
        }
    }

    /// Is row `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Array::Bool { validity, .. }
            | Array::Int { validity, .. }
            | Array::Float { validity, .. }
            | Array::Text { validity, .. }
            | Array::Date { validity, .. } => !validity.get(i),
            Array::Null { .. } => true,
            Array::Any { values } => values[i].is_null(),
            Array::Dict { .. } | Array::RunLength { .. } => {
                let (array, idx) = self.resolve_row(i);
                array.is_null(idx)
            }
        }
    }

    /// The value at row `i` (a clone; text is a refcount bump).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            Array::Bool { values, validity } => {
                if validity.get(i) {
                    Value::Bool(values[i])
                } else {
                    Value::Null
                }
            }
            Array::Int { values, validity } => {
                if validity.get(i) {
                    Value::Int(values[i])
                } else {
                    Value::Null
                }
            }
            Array::Float { values, validity } => {
                if validity.get(i) {
                    Value::Float(values[i])
                } else {
                    Value::Null
                }
            }
            Array::Text { values, validity } => {
                if validity.get(i) {
                    Value::Text(values[i].clone())
                } else {
                    Value::Null
                }
            }
            Array::Date { values, validity } => {
                if validity.get(i) {
                    Value::Date(values[i])
                } else {
                    Value::Null
                }
            }
            Array::Null { .. } => Value::Null,
            Array::Any { values } => values[i].clone(),
            Array::Dict { .. } | Array::RunLength { .. } => {
                let (array, idx) = self.resolve_row(i);
                array.value(idx)
            }
        }
    }

    /// The scalar type of the column ([`DataType::Null`] for all-NULL or mixed columns).
    pub fn data_type(&self) -> DataType {
        match self {
            Array::Bool { .. } => DataType::Bool,
            Array::Int { .. } => DataType::Int,
            Array::Float { .. } => DataType::Float,
            Array::Text { .. } => DataType::Text,
            Array::Date { .. } => DataType::Date,
            Array::Null { .. } | Array::Any { .. } => DataType::Null,
            Array::Dict { dict, .. } => dict.data_type(),
            Array::RunLength { values, .. } => values.data_type(),
        }
    }

    /// Build an array from a sequence of values (choosing the best representation).
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Array {
        let mut builder = ArrayBuilder::new();
        for v in values {
            builder.push(v);
        }
        builder.finish()
    }

    /// An array repeating `value` `len` times (literal broadcast).
    pub fn repeat(value: &Value, len: usize) -> Array {
        match value {
            Value::Null => Array::Null { len },
            Value::Bool(b) => Array::Bool { values: vec![*b; len], validity: Bitmap::all_set(len) },
            Value::Int(i) => Array::Int { values: vec![*i; len], validity: Bitmap::all_set(len) },
            Value::Float(f) => {
                Array::Float { values: vec![*f; len], validity: Bitmap::all_set(len) }
            }
            Value::Text(s) => {
                Array::Text { values: vec![s.clone(); len], validity: Bitmap::all_set(len) }
            }
            Value::Date(d) => Array::Date { values: vec![*d; len], validity: Bitmap::all_set(len) },
        }
    }

    /// Keep only the rows whose mask bit is `true` (filter compaction).
    pub fn filter(&self, mask: &[bool]) -> Array {
        debug_assert_eq!(mask.len(), self.len());
        fn compact<T: Clone>(values: &[T], validity: &Bitmap, mask: &[bool]) -> (Vec<T>, Bitmap) {
            let kept = mask.iter().filter(|m| **m).count();
            let mut out = Vec::with_capacity(kept);
            // No-NULL columns skip per-row validity bookkeeping entirely.
            if validity.all_set_bits() {
                for (i, keep) in mask.iter().enumerate() {
                    if *keep {
                        out.push(values[i].clone());
                    }
                }
                return (out, Bitmap::all_set(kept));
            }
            let mut v = Bitmap::new();
            for (i, keep) in mask.iter().enumerate() {
                if *keep {
                    out.push(values[i].clone());
                    v.push(validity.get(i));
                }
            }
            (out, v)
        }
        match self {
            Array::Bool { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Bool { values, validity }
            }
            Array::Int { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Int { values, validity }
            }
            Array::Float { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Float { values, validity }
            }
            Array::Text { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Text { values, validity }
            }
            Array::Date { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Date { values, validity }
            }
            Array::Null { .. } => Array::Null { len: mask.iter().filter(|m| **m).count() },
            Array::Any { values } => Array::Any {
                values: values
                    .iter()
                    .zip(mask)
                    .filter(|(_, keep)| **keep)
                    .map(|(v, _)| v.clone())
                    .collect(),
            },
            // A dict view filters by compacting its indices; the dictionary is untouched.
            Array::Dict { indices, dict } => Array::Dict {
                indices: indices
                    .iter()
                    .zip(mask)
                    .filter(|(_, keep)| **keep)
                    .map(|(&i, _)| i)
                    .collect(),
                dict: dict.clone(),
            },
            Array::RunLength { .. } => self.to_plain().filter(mask),
        }
    }

    /// Gather the rows at `indices` (column gather; indices may repeat and reorder).
    pub fn take(&self, indices: &[u32]) -> Array {
        fn gather<T: Clone>(values: &[T], validity: &Bitmap, indices: &[u32]) -> (Vec<T>, Bitmap) {
            // No-NULL columns skip per-row validity bookkeeping entirely.
            if validity.all_set_bits() {
                let out = indices.iter().map(|&i| values[i as usize].clone()).collect();
                return (out, Bitmap::all_set(indices.len()));
            }
            let mut out = Vec::with_capacity(indices.len());
            let mut v = Bitmap::new();
            for &i in indices {
                out.push(values[i as usize].clone());
                v.push(validity.get(i as usize));
            }
            (out, v)
        }
        match self {
            Array::Bool { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Bool { values, validity }
            }
            Array::Int { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Int { values, validity }
            }
            Array::Float { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Float { values, validity }
            }
            Array::Text { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Text { values, validity }
            }
            Array::Date { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Date { values, validity }
            }
            Array::Null { .. } => Array::Null { len: indices.len() },
            Array::Any { values } => {
                Array::Any { values: indices.iter().map(|&i| values[i as usize].clone()).collect() }
            }
            // A dict view gathers by gathering its indices; the dictionary is untouched.
            Array::Dict { indices: inner, dict } => Array::Dict {
                indices: indices.iter().map(|&i| inner[i as usize]).collect(),
                dict: dict.clone(),
            },
            Array::RunLength { values, run_ends } => Array::Dict {
                indices: indices
                    .iter()
                    .map(|&i| rle_run_index(run_ends, i as usize) as u32)
                    .collect(),
                dict: values.clone(),
            },
        }
    }

    /// Gather with optional indices: `None` produces a NULL row (outer-join padding).
    pub fn take_opt(&self, indices: &[Option<u32>]) -> Array {
        fn gather<T: Clone + Default>(
            values: &[T],
            validity: &Bitmap,
            indices: &[Option<u32>],
        ) -> (Vec<T>, Bitmap) {
            let mut out = Vec::with_capacity(indices.len());
            let mut v = Bitmap::new();
            for idx in indices {
                match idx {
                    Some(i) => {
                        out.push(values[*i as usize].clone());
                        v.push(validity.get(*i as usize));
                    }
                    None => {
                        out.push(T::default());
                        v.push(false);
                    }
                }
            }
            (out, v)
        }
        match self {
            Array::Bool { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Bool { values, validity }
            }
            Array::Int { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Int { values, validity }
            }
            Array::Float { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Float { values, validity }
            }
            Array::Text { values, validity } => {
                let mut out = Vec::with_capacity(indices.len());
                let mut v = Bitmap::new();
                for idx in indices {
                    match idx {
                        Some(i) => {
                            out.push(values[*i as usize].clone());
                            v.push(validity.get(*i as usize));
                        }
                        None => {
                            out.push(Arc::from(""));
                            v.push(false);
                        }
                    }
                }
                Array::Text { values: out, validity: v }
            }
            Array::Date { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Date { values, validity }
            }
            Array::Null { .. } => Array::Null { len: indices.len() },
            Array::Any { values } => Array::Any {
                values: indices
                    .iter()
                    .map(|idx| match idx {
                        Some(i) => values[*i as usize].clone(),
                        None => Value::Null,
                    })
                    .collect(),
            },
            // Encoded views cannot represent the injected NULL padding rows natively; the
            // padded gather is rare (outer-join NULL extension), so go through boxed values.
            Array::Dict { .. } | Array::RunLength { .. } => Array::from_values(
                indices.iter().map(|idx| idx.map_or(Value::Null, |i| self.value(i as usize))),
            ),
        }
    }

    /// A copy of the rows `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Array {
        fn cut<T: Clone>(
            values: &[T],
            validity: &Bitmap,
            offset: usize,
            len: usize,
        ) -> (Vec<T>, Bitmap) {
            let out = values[offset..offset + len].to_vec();
            if validity.all_set_bits() {
                return (out, Bitmap::all_set(len));
            }
            let v = (offset..offset + len).map(|i| validity.get(i)).collect();
            (out, v)
        }
        match self {
            Array::Bool { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Bool { values, validity }
            }
            Array::Int { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Int { values, validity }
            }
            Array::Float { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Float { values, validity }
            }
            Array::Text { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Text { values, validity }
            }
            Array::Date { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Date { values, validity }
            }
            Array::Null { .. } => Array::Null { len },
            Array::Any { values } => Array::Any { values: values[offset..offset + len].to_vec() },
            Array::Dict { indices, dict } => {
                Array::Dict { indices: indices[offset..offset + len].to_vec(), dict: dict.clone() }
            }
            Array::RunLength { .. } => self.to_plain().slice(offset, len),
        }
    }

    /// Concatenate several arrays into one (same-variant inputs extend natively; mixed variants
    /// degrade to the boxed fallback).
    pub fn concat(arrays: &[&Array]) -> Array {
        /// Same-variant fast path: native `extend_from_slice` per input, no value boxing.
        macro_rules! typed_concat {
            ($variant:ident) => {{
                if arrays.iter().all(|a| matches!(a, Array::$variant { .. })) {
                    let mut values = Vec::new();
                    let mut validity = Bitmap::new();
                    for a in arrays {
                        if let Array::$variant { values: v, validity: b } = a {
                            values.extend_from_slice(v);
                            validity.extend_from(b);
                        }
                    }
                    return Array::$variant { values, validity };
                }
            }};
        }
        match arrays {
            [] => Array::Null { len: 0 },
            [only] => (*only).clone(),
            _ => {
                // Dict views over the *same* dictionary concatenate by index; this keeps the
                // factorized form through chunk reassembly (e.g. Relation::from_chunks).
                if let Array::Dict { dict: first_dict, .. } = arrays[0] {
                    if arrays.iter().all(
                        |a| matches!(a, Array::Dict { dict, .. } if Arc::ptr_eq(dict, first_dict)),
                    ) {
                        let mut indices = Vec::with_capacity(arrays.iter().map(|a| a.len()).sum());
                        for a in arrays {
                            if let Array::Dict { indices: i, .. } = a {
                                indices.extend_from_slice(i);
                            }
                        }
                        return Array::Dict { indices, dict: first_dict.clone() };
                    }
                }
                // Mixed or differently-backed encoded inputs: decode them once, then the plain
                // typed fast paths below apply.
                if arrays.iter().any(|a| a.is_encoded()) {
                    let decoded: Vec<Array> = arrays
                        .iter()
                        .map(|a| if a.is_encoded() { a.to_plain() } else { (*a).clone() })
                        .collect();
                    let refs: Vec<&Array> = decoded.iter().collect();
                    return Array::concat(&refs);
                }
                typed_concat!(Int);
                typed_concat!(Text);
                typed_concat!(Float);
                typed_concat!(Date);
                typed_concat!(Bool);
                let mut builder = ArrayBuilder::with_capacity(arrays.iter().map(|a| a.len()).sum());
                for a in arrays {
                    for i in 0..a.len() {
                        builder.push(a.value(i));
                    }
                }
                builder.finish()
            }
        }
    }

    /// Like [`Array::take`], but gathers plain arrays into a [`Array::Dict`] view sharing
    /// `self` as the dictionary (a u32 index per output row) instead of cloning every value.
    /// Existing views compose by index so the result never nests. `ORDER BY` uses this to
    /// re-chunk wide sorted payloads: the per-cell cost is an index write, and the values —
    /// text columns of provenance results in particular — stay shared by refcount.
    pub fn take_view(self: &Arc<Array>, indices: &[u32]) -> Array {
        match self.as_ref() {
            Array::Null { .. } => Array::Null { len: indices.len() },
            Array::Dict { indices: inner, dict } => Array::Dict {
                indices: indices.iter().map(|&i| inner[i as usize]).collect(),
                dict: dict.clone(),
            },
            Array::RunLength { .. } => self.take(indices),
            _ => Array::Dict { indices: indices.to_vec(), dict: self.clone() },
        }
    }

    /// Compare rows `i` of `self` and `j` of `other` under the total value order used for
    /// sorting ([`Value::cmp`]: NULLs first, then type rank, then value).
    pub fn compare(&self, i: usize, other: &Array, j: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        // Resolve encoded views first so the typed fast paths below apply to them too.
        let (this, i) = self.resolve_row(i);
        let (other, j) = other.resolve_row(j);
        // Typed fast path when both sides are the same native variant and non-null.
        match (this, other) {
            (Array::Int { values: a, validity: va }, Array::Int { values: b, validity: vb })
                if va.get(i) && vb.get(j) =>
            {
                return a[i].cmp(&b[j]);
            }
            (Array::Text { values: a, validity: va }, Array::Text { values: b, validity: vb })
                if va.get(i) && vb.get(j) =>
            {
                return a[i].cmp(&b[j]);
            }
            (Array::Date { values: a, validity: va }, Array::Date { values: b, validity: vb })
                if va.get(i) && vb.get(j) =>
            {
                return a[i].cmp(&b[j]);
            }
            (
                Array::Float { values: a, validity: va },
                Array::Float { values: b, validity: vb },
            ) if va.get(i) && vb.get(j) => {
                // NaN-total ordering (NaN sorts last) so sort keys are deterministic; plain
                // `partial_cmp` would make ORDER BY nondeterministic in the presence of NaN.
                return crate::value::total_float_cmp(a[i], b[j]);
            }
            _ => {}
        }
        match (this.is_null(i), other.is_null(j)) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => this.value(i).cmp(&other.value(j)),
        }
    }

    /// Append the display form of row `i` to `out` (`NULL` for NULL), without boxing a
    /// [`Value`]. Used by the wire protocol's chunk-wise result rendering.
    pub fn format_into(&self, i: usize, out: &mut String) {
        use std::fmt::Write;
        if self.is_encoded() {
            let (array, idx) = self.resolve_row(i);
            return array.format_into(idx, out);
        }
        match self {
            Array::Bool { values, validity } if validity.get(i) => {
                out.push_str(if values[i] { "true" } else { "false" });
            }
            Array::Int { values, validity } if validity.get(i) => {
                let _ = write!(out, "{}", values[i]);
            }
            Array::Float { values, validity } if validity.get(i) => {
                out.push_str(&crate::value::format_float(values[i]));
            }
            Array::Text { values, validity } if validity.get(i) => out.push_str(&values[i]),
            Array::Date { values, validity } if validity.get(i) => {
                out.push_str(&crate::value::format_date(values[i]));
            }
            Array::Any { values } if !values[i].is_null() => {
                let _ = write!(out, "{}", values[i]);
            }
            _ => out.push_str("NULL"),
        }
    }

    /// Decode an encoded view into a plain (unencoded) array; plain arrays are cloned as-is.
    pub fn to_plain(&self) -> Array {
        match self {
            Array::Dict { indices, dict } => {
                if dict.is_encoded() {
                    dict.to_plain().take(indices)
                } else {
                    dict.take(indices)
                }
            }
            Array::RunLength { values, run_ends } => {
                let mut indices = Vec::with_capacity(self.len());
                let mut start = 0u32;
                for (run, &end) in run_ends.iter().enumerate() {
                    indices.extend(std::iter::repeat_n(run as u32, (end - start) as usize));
                    start = end;
                }
                if values.is_encoded() {
                    values.to_plain().take(&indices)
                } else {
                    values.take(&indices)
                }
            }
            other => other.clone(),
        }
    }

    /// Gather the rows at `indices` as a dictionary *view* of `self` instead of materializing
    /// copies — the factorized join-output gather. Composes with an existing dict view by
    /// remapping through its indices (never nests), and degenerates to a plain gather for
    /// all-NULL columns where a view would save nothing.
    pub fn take_dict(self: &Arc<Array>, indices: &[u32]) -> Array {
        match self.as_ref() {
            Array::Null { .. } => Array::Null { len: indices.len() },
            Array::Dict { indices: inner, dict } => Array::Dict {
                indices: indices.iter().map(|&i| inner[i as usize]).collect(),
                dict: dict.clone(),
            },
            Array::RunLength { values, run_ends } => Array::Dict {
                indices: indices
                    .iter()
                    .map(|&i| rle_run_index(run_ends, i as usize) as u32)
                    .collect(),
                dict: values.clone(),
            },
            _ => Array::Dict { indices: indices.to_vec(), dict: self.clone() },
        }
    }

    /// Approximate heap footprint in bytes (used for per-session stream memory accounting).
    /// A dict view charges its shared dictionary in full; callers holding many views over one
    /// dictionary therefore over-count, which errs on the safe side for admission decisions.
    pub fn byte_size(&self) -> usize {
        fn bitmap_bytes(b: &Bitmap) -> usize {
            b.words.len() * 8
        }
        match self {
            Array::Bool { values, validity } => values.len() + bitmap_bytes(validity),
            Array::Int { values, validity } => values.len() * 8 + bitmap_bytes(validity),
            Array::Float { values, validity } => values.len() * 8 + bitmap_bytes(validity),
            Array::Text { values, validity } => {
                values.iter().map(|s| s.len() + std::mem::size_of::<Arc<str>>()).sum::<usize>()
                    + bitmap_bytes(validity)
            }
            Array::Date { values, validity } => values.len() * 4 + bitmap_bytes(validity),
            Array::Null { .. } => 0,
            Array::Any { values } => {
                values.len() * std::mem::size_of::<Value>()
                    + values
                        .iter()
                        .map(|v| if let Value::Text(s) = v { s.len() } else { 0 })
                        .sum::<usize>()
            }
            Array::Dict { indices, dict } => indices.len() * 4 + dict.byte_size(),
            Array::RunLength { values, run_ends } => run_ends.len() * 4 + values.byte_size(),
        }
    }

    /// Attempt run-length compression of a plain array. Returns `Some` only when the array
    /// compresses well (at most one run per three rows); encoded or short inputs return `None`.
    /// Used by wire serialization — the executor itself never produces run-length arrays.
    pub fn rle_compress(&self) -> Option<Array> {
        let len = self.len();
        if len < 4 || self.is_encoded() || matches!(self, Array::Null { .. }) {
            return None;
        }
        // One pass to find run boundaries (logical equality, NULL == NULL).
        fn runs_of<T: PartialEq>(
            values: &[T],
            validity: &Bitmap,
            same: impl Fn(&T, &T) -> bool,
        ) -> Vec<u32> {
            let mut ends = Vec::new();
            for i in 1..values.len() {
                let equal = match (validity.get(i - 1), validity.get(i)) {
                    (true, true) => same(&values[i - 1], &values[i]),
                    (false, false) => true,
                    _ => false,
                };
                if !equal {
                    ends.push(i as u32);
                }
            }
            ends.push(values.len() as u32);
            ends
        }
        let run_ends = match self {
            Array::Bool { values, validity } => runs_of(values, validity, |a, b| a == b),
            Array::Int { values, validity } => runs_of(values, validity, |a, b| a == b),
            Array::Date { values, validity } => runs_of(values, validity, |a, b| a == b),
            // Floats compare bitwise so NaN runs still compress deterministically.
            Array::Float { values, validity } => {
                runs_of(values, validity, |a, b| a.to_bits() == b.to_bits())
            }
            Array::Text { values, validity } => {
                runs_of(values, validity, |a, b| Arc::ptr_eq(a, b) || a == b)
            }
            _ => return None,
        };
        if run_ends.len() * 3 > len {
            return None;
        }
        // Gather one representative row per run.
        let representatives: Vec<u32> =
            std::iter::once(0).chain(run_ends[..run_ends.len() - 1].iter().copied()).collect();
        Some(Array::RunLength { values: Arc::new(self.take(&representatives)), run_ends })
    }
}

/// Logical row-wise equality: an encoded array equals its decoded form. Plain same-variant
/// pairs compare their native buffers; everything else falls back to per-row values (invalid
/// slots compare as NULL regardless of the padding stored in the native buffer).
impl PartialEq for Array {
    fn eq(&self, other: &Array) -> bool {
        fn plain_pair_eq(a: &Array, b: &Array) -> Option<bool> {
            macro_rules! typed_eq {
                ($variant:ident) => {
                    if let (
                        Array::$variant { values: va, validity: ba },
                        Array::$variant { values: vb, validity: bb },
                    ) = (a, b)
                    {
                        return Some(
                            ba == bb
                                && va
                                    .iter()
                                    .zip(vb)
                                    .enumerate()
                                    .all(|(i, (x, y))| !ba.get(i) || x == y),
                        );
                    }
                };
            }
            typed_eq!(Bool);
            typed_eq!(Int);
            typed_eq!(Float);
            typed_eq!(Text);
            typed_eq!(Date);
            if let (Array::Null { len: a }, Array::Null { len: b }) = (a, b) {
                return Some(a == b);
            }
            None
        }
        if self.len() != other.len() {
            return false;
        }
        if let Some(eq) = plain_pair_eq(self, other) {
            return eq;
        }
        (0..self.len()).all(|i| {
            let (a, ai) = self.resolve_row(i);
            let (b, bi) = other.resolve_row(i);
            match (a.is_null(ai), b.is_null(bi)) {
                (true, true) => true,
                (false, false) => a.value(ai) == b.value(bi),
                _ => false,
            }
        })
    }
}

/// Incremental [`Array`] construction from dynamically typed [`Value`]s.
///
/// The builder starts untyped, locks onto the variant of the first non-NULL value and degrades
/// to the boxed [`Array::Any`] representation if a later value does not fit.
#[derive(Debug, Default)]
pub struct ArrayBuilder {
    repr: BuilderRepr,
    /// Expected number of values; pre-sizes the native vector when the type locks in.
    capacity: usize,
}

#[derive(Debug, Default)]
enum BuilderRepr {
    /// Nothing but NULLs seen so far.
    #[default]
    Untyped,
    Nulls(usize),
    Typed(Array),
    Any(Vec<Value>),
}

impl ArrayBuilder {
    /// An empty builder.
    pub fn new() -> ArrayBuilder {
        ArrayBuilder::default()
    }

    /// A builder expecting about `capacity` values (pre-sizes the native vector when the
    /// column type locks in).
    pub fn with_capacity(capacity: usize) -> ArrayBuilder {
        ArrayBuilder { repr: BuilderRepr::default(), capacity }
    }

    /// Append a value.
    pub fn push(&mut self, value: Value) {
        let repr = std::mem::take(&mut self.repr);
        self.repr = match (repr, value) {
            (BuilderRepr::Untyped, Value::Null) => BuilderRepr::Nulls(1),
            (BuilderRepr::Nulls(n), Value::Null) => BuilderRepr::Nulls(n + 1),
            (BuilderRepr::Untyped, v) => BuilderRepr::Typed(seed_typed(0, v, self.capacity)),
            (BuilderRepr::Nulls(n), v) => BuilderRepr::Typed(seed_typed(n, v, self.capacity)),
            (BuilderRepr::Typed(mut array), v) => match push_typed(&mut array, v) {
                Ok(()) => BuilderRepr::Typed(array),
                Err(v) => {
                    // Type conflict: degrade to boxed values.
                    let mut values: Vec<Value> =
                        Vec::with_capacity(self.capacity.max(array.len() + 1));
                    values.extend((0..array.len()).map(|i| array.value(i)));
                    values.push(v);
                    BuilderRepr::Any(values)
                }
            },
            (BuilderRepr::Any(mut values), v) => {
                values.push(v);
                BuilderRepr::Any(values)
            }
        };
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        match &self.repr {
            BuilderRepr::Untyped => 0,
            BuilderRepr::Nulls(n) => *n,
            BuilderRepr::Typed(a) => a.len(),
            BuilderRepr::Any(v) => v.len(),
        }
    }

    /// Is the builder empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish the array.
    pub fn finish(self) -> Array {
        match self.repr {
            BuilderRepr::Untyped => Array::Null { len: 0 },
            BuilderRepr::Nulls(n) => Array::Null { len: n },
            BuilderRepr::Typed(a) => a,
            BuilderRepr::Any(values) => Array::Any { values },
        }
    }
}

/// Start a typed array with `nulls` leading NULL slots followed by `value`, pre-sized for
/// `capacity` total values.
fn seed_typed(nulls: usize, value: Value, capacity: usize) -> Array {
    let capacity = capacity.max(nulls + 1);
    fn seeded<T: Clone>(fill: T, nulls: usize, value: T, capacity: usize) -> Vec<T> {
        let mut values = Vec::with_capacity(capacity);
        values.resize(nulls, fill);
        values.push(value);
        values
    }
    let mut validity = Bitmap::all_unset(nulls);
    validity.push(true);
    match value {
        Value::Bool(b) => Array::Bool { values: seeded(false, nulls, b, capacity), validity },
        Value::Int(i) => Array::Int { values: seeded(0, nulls, i, capacity), validity },
        Value::Float(f) => Array::Float { values: seeded(0.0, nulls, f, capacity), validity },
        Value::Text(s) => {
            Array::Text { values: seeded(Arc::from(""), nulls, s, capacity), validity }
        }
        Value::Date(d) => Array::Date { values: seeded(0, nulls, d, capacity), validity },
        Value::Null => unreachable!("NULL is handled by the builder before seeding"),
    }
}

/// Append `value` to a typed array; returns the value back on a type conflict.
fn push_typed(array: &mut Array, value: Value) -> Result<(), Value> {
    match (array, value) {
        (Array::Bool { values, validity }, Value::Bool(b)) => {
            values.push(b);
            validity.push(true);
        }
        (Array::Int { values, validity }, Value::Int(i)) => {
            values.push(i);
            validity.push(true);
        }
        (Array::Float { values, validity }, Value::Float(f)) => {
            values.push(f);
            validity.push(true);
        }
        (Array::Text { values, validity }, Value::Text(s)) => {
            values.push(s);
            validity.push(true);
        }
        (Array::Date { values, validity }, Value::Date(d)) => {
            values.push(d);
            validity.push(true);
        }
        (Array::Bool { values, validity }, Value::Null) => {
            values.push(false);
            validity.push(false);
        }
        (Array::Int { values, validity }, Value::Null) => {
            values.push(0);
            validity.push(false);
        }
        (Array::Float { values, validity }, Value::Null) => {
            values.push(0.0);
            validity.push(false);
        }
        (Array::Text { values, validity }, Value::Null) => {
            values.push(Arc::from(""));
            validity.push(false);
        }
        (Array::Date { values, validity }, Value::Null) => {
            values.push(0);
            validity.push(false);
        }
        (_, value) => return Err(value),
    }
    Ok(())
}

/// A batch of rows stored column-wise: one [`Array`] per attribute.
///
/// Columns are held behind [`Arc`]s so that passing a column through a projection, or emitting
/// a cached storage chunk from a scan, is a refcount bump rather than a copy.
#[derive(Debug, Clone, PartialEq)]
pub struct DataChunk {
    columns: Vec<Arc<Array>>,
    rows: usize,
}

impl DataChunk {
    /// Build a chunk from columns (all columns must have the same length).
    pub fn new(columns: Vec<Arc<Array>>) -> DataChunk {
        let rows = columns.first().map_or(0, |c| c.len());
        debug_assert!(columns.iter().all(|c| c.len() == rows), "column lengths must agree");
        DataChunk { columns, rows }
    }

    /// An empty chunk of `arity` columns and zero rows.
    pub fn empty(arity: usize) -> DataChunk {
        DataChunk {
            columns: (0..arity).map(|_| Arc::new(Array::Null { len: 0 })).collect(),
            rows: 0,
        }
    }

    /// A chunk of `rows` rows and zero columns (the projection-free edge case, e.g.
    /// `SELECT count(*)` pipelines).
    pub fn zero_width(rows: usize) -> DataChunk {
        DataChunk { columns: Vec::new(), rows }
    }

    /// Convert a slice of tuples into one chunk of `arity` columns.
    pub fn from_tuples(arity: usize, rows: &[Tuple]) -> DataChunk {
        let mut builders: Vec<ArrayBuilder> = (0..arity).map(|_| ArrayBuilder::new()).collect();
        for t in rows {
            for (c, builder) in builders.iter_mut().enumerate() {
                builder.push(t.get(c).cloned().unwrap_or(Value::Null));
            }
        }
        DataChunk {
            columns: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            rows: rows.len(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Is the chunk empty (no rows)?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column `c`.
    pub fn column(&self, c: usize) -> &Arc<Array> {
        &self.columns[c]
    }

    /// All columns.
    pub fn columns(&self) -> &[Arc<Array>] {
        &self.columns
    }

    /// The value at (`row`, `col`).
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialize row `i` as a tuple.
    pub fn tuple_at(&self, i: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Iterate the rows as tuples (the compatibility edge; hot paths stay columnar).
    pub fn iter_tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.rows).map(|i| self.tuple_at(i))
    }

    /// Keep only the rows whose mask bit is `true`.
    pub fn filter(&self, mask: &[bool]) -> DataChunk {
        debug_assert_eq!(mask.len(), self.rows);
        let rows = mask.iter().filter(|m| **m).count();
        if rows == self.rows {
            return self.clone();
        }
        DataChunk { columns: self.columns.iter().map(|c| Arc::new(c.filter(mask))).collect(), rows }
    }

    /// Gather the rows at `indices`.
    pub fn take(&self, indices: &[u32]) -> DataChunk {
        DataChunk {
            columns: self.columns.iter().map(|c| Arc::new(c.take(indices))).collect(),
            rows: indices.len(),
        }
    }

    /// A copy of the rows `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> DataChunk {
        DataChunk {
            columns: self.columns.iter().map(|c| Arc::new(c.slice(offset, len))).collect(),
            rows: len,
        }
    }

    /// Approximate heap footprint in bytes (used for per-session stream memory accounting).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Decode any encoded (dict / run-length) columns into plain arrays.
    pub fn to_plain(&self) -> DataChunk {
        if self.columns.iter().all(|c| !c.is_encoded()) {
            return self.clone();
        }
        DataChunk {
            columns: self
                .columns
                .iter()
                .map(|c| if c.is_encoded() { Arc::new(c.to_plain()) } else { c.clone() })
                .collect(),
            rows: self.rows,
        }
    }

    /// Concatenate chunks of the same arity into one chunk.
    pub fn concat(arity: usize, chunks: &[DataChunk]) -> DataChunk {
        if chunks.len() == 1 {
            return chunks[0].clone();
        }
        let rows = chunks.iter().map(|c| c.num_rows()).sum();
        let columns = (0..arity)
            .map(|c| {
                let parts: Vec<&Array> = chunks.iter().map(|ch| ch.column(c).as_ref()).collect();
                Arc::new(Array::concat(&parts))
            })
            .collect();
        DataChunk { columns, rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(129));
        assert_eq!(b.count_set(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(Bitmap::all_set(70).all_set_bits());
        assert_eq!(Bitmap::all_unset(70).count_set(), 0);
    }

    #[test]
    fn builder_types_lock_and_degrade() {
        let a = Array::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert!(matches!(a, Array::Int { .. }));
        assert_eq!(a.value(0), Value::Int(1));
        assert_eq!(a.value(1), Value::Null);
        assert_eq!(a.value(2), Value::Int(3));

        // Leading NULLs then a typed value.
        let a = Array::from_values(vec![Value::Null, Value::text("x")]);
        assert!(matches!(a, Array::Text { .. }));
        assert_eq!(a.value(0), Value::Null);
        assert_eq!(a.value(1), Value::text("x"));

        // Mixed types degrade to the boxed fallback without losing values.
        let a = Array::from_values(vec![Value::Int(1), Value::text("x"), Value::Null]);
        assert!(matches!(a, Array::Any { .. }));
        assert_eq!(a.value(0), Value::Int(1));
        assert_eq!(a.value(1), Value::text("x"));
        assert_eq!(a.value(2), Value::Null);

        let a = Array::from_values(vec![Value::Null, Value::Null]);
        assert!(matches!(a, Array::Null { len: 2 }));
    }

    #[test]
    fn chunk_round_trips_tuples() {
        let rows = vec![tuple![1, "a"], tuple![2, "b"], Tuple::new(vec![Value::Null, Value::Null])];
        let chunk = DataChunk::from_tuples(2, &rows);
        assert_eq!(chunk.num_rows(), 3);
        assert_eq!(chunk.num_columns(), 2);
        let back: Vec<Tuple> = chunk.iter_tuples().collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn filter_take_slice() {
        let rows: Vec<Tuple> = (0..10i64).map(|i| tuple![i, i * 10]).collect();
        let chunk = DataChunk::from_tuples(2, &rows);
        let mask: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let filtered = chunk.filter(&mask);
        assert_eq!(filtered.num_rows(), 5);
        assert_eq!(filtered.tuple_at(2), tuple![4, 40]);

        let taken = chunk.take(&[9, 0, 9]);
        assert_eq!(taken.tuple_at(0), tuple![9, 90]);
        assert_eq!(taken.tuple_at(1), tuple![0, 0]);
        assert_eq!(taken.tuple_at(2), tuple![9, 90]);

        let sliced = chunk.slice(3, 4);
        assert_eq!(sliced.num_rows(), 4);
        assert_eq!(sliced.tuple_at(0), tuple![3, 30]);
        assert_eq!(sliced.tuple_at(3), tuple![6, 60]);
    }

    #[test]
    fn take_opt_pads_nulls() {
        let chunk = DataChunk::from_tuples(1, &[tuple![7], tuple![8]]);
        let col = chunk.column(0).take_opt(&[Some(1), None, Some(0)]);
        assert_eq!(col.value(0), Value::Int(8));
        assert_eq!(col.value(1), Value::Null);
        assert_eq!(col.value(2), Value::Int(7));
    }

    #[test]
    fn concat_same_and_mixed_variants() {
        let a = Array::from_values(vec![Value::Int(1), Value::Int(2)]);
        let b = Array::from_values(vec![Value::Null, Value::Int(4)]);
        let c = Array::concat(&[&a, &b]);
        assert!(matches!(c, Array::Int { .. }));
        assert_eq!(c.len(), 4);
        assert_eq!(c.value(2), Value::Null);
        assert_eq!(c.value(3), Value::Int(4));

        let t = Array::from_values(vec![Value::text("x")]);
        let mixed = Array::concat(&[&a, &t]);
        assert_eq!(mixed.len(), 3);
        assert_eq!(mixed.value(2), Value::text("x"));
    }

    #[test]
    fn compare_matches_value_order() {
        let a = Array::from_values(vec![Value::Null, Value::Int(1), Value::Int(5)]);
        assert_eq!(a.compare(0, &a, 1), std::cmp::Ordering::Less); // NULLs first
        assert_eq!(a.compare(1, &a, 2), std::cmp::Ordering::Less);
        assert_eq!(a.compare(2, &a, 2), std::cmp::Ordering::Equal);
        let mixed = Array::from_values(vec![Value::Int(2), Value::Float(2.0)]);
        assert_eq!(mixed.compare(0, &mixed, 1), std::cmp::Ordering::Equal);
    }

    #[test]
    fn format_into_matches_display() {
        let rows = vec![
            tuple![1, 2.5, "x", true],
            Tuple::new(vec![Value::Null, Value::Null, Value::Null, Value::Null]),
        ];
        let chunk = DataChunk::from_tuples(4, &rows);
        let mut out = String::new();
        for c in 0..4 {
            chunk.column(c).format_into(0, &mut out);
            out.push('|');
            chunk.column(c).format_into(1, &mut out);
            out.push('|');
        }
        assert_eq!(out, "1|NULL|2.5|NULL|x|NULL|true|NULL|");
    }

    #[test]
    fn repeat_broadcasts_literals() {
        let a = Array::repeat(&Value::text("p"), 3);
        assert_eq!(a.len(), 3);
        assert_eq!(a.value(2), Value::text("p"));
        assert!(matches!(Array::repeat(&Value::Null, 2), Array::Null { len: 2 }));
    }

    #[test]
    fn dict_views_behave_like_their_decoded_form() {
        let dict =
            Arc::new(Array::from_values(vec![Value::text("a"), Value::Null, Value::text("c")]));
        let view = dict.take_dict(&[2, 0, 1, 2, 2]);
        assert!(matches!(view, Array::Dict { .. }));
        assert_eq!(view.len(), 5);
        assert_eq!(view.value(0), Value::text("c"));
        assert_eq!(view.value(1), Value::text("a"));
        assert!(view.is_null(2));
        assert_eq!(view.data_type(), DataType::Text);

        // Logical equality against the decoded form.
        let plain = view.to_plain();
        assert!(!plain.is_encoded());
        assert_eq!(view, plain);

        // take composes without nesting: the result still points at the original dict.
        let taken = Arc::new(view.clone()).take_dict(&[4, 2]);
        match &taken {
            Array::Dict { indices, dict: d } => {
                assert_eq!(indices, &[2, 1]);
                assert!(Arc::ptr_eq(d, &dict));
            }
            other => panic!("expected dict view, got {other:?}"),
        }
        assert_eq!(view.take(&[4, 2]), taken);

        // filter and slice stay views.
        let filtered = view.filter(&[true, false, true, false, true]);
        assert!(filtered.is_encoded());
        assert_eq!(filtered.to_plain(), plain.filter(&[true, false, true, false, true]));
        let sliced = view.slice(1, 3);
        assert!(sliced.is_encoded());
        assert_eq!(sliced.to_plain(), plain.slice(1, 3));

        // take_opt pads NULLs like the plain form.
        let padded = view.take_opt(&[Some(0), None, Some(3)]);
        assert_eq!(padded, plain.take_opt(&[Some(0), None, Some(3)]));

        // compare resolves through the encoding.
        assert_eq!(view.compare(0, &plain, 0), std::cmp::Ordering::Equal);
        assert_eq!(view.compare(1, &view, 0), std::cmp::Ordering::Less);

        // format_into matches the plain rendering.
        let (mut a, mut b) = (String::new(), String::new());
        for i in 0..view.len() {
            view.format_into(i, &mut a);
            plain.format_into(i, &mut b);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn dict_concat_over_shared_dictionary_stays_encoded() {
        let dict = Arc::new(Array::from_values((0..4i64).map(Value::Int).collect::<Vec<_>>()));
        let a = dict.take_dict(&[0, 1]);
        let b = dict.take_dict(&[3, 3, 2]);
        let joined = Array::concat(&[&a, &b]);
        match &joined {
            Array::Dict { indices, dict: d } => {
                assert_eq!(indices, &[0, 1, 3, 3, 2]);
                assert!(Arc::ptr_eq(d, &dict));
            }
            other => panic!("expected dict concat to stay encoded, got {other:?}"),
        }
        // Mixed dict + plain decodes to a typed plain array.
        let plain_tail = Array::from_values(vec![Value::Int(9)]);
        let mixed = Array::concat(&[&a, &plain_tail]);
        assert!(matches!(mixed, Array::Int { .. }));
        assert_eq!(mixed.value(2), Value::Int(9));
    }

    #[test]
    fn rle_round_trip_and_threshold() {
        let long = Array::from_values(
            std::iter::repeat_n(Value::Int(7), 5)
                .chain(std::iter::repeat_n(Value::Null, 3))
                .chain(std::iter::repeat_n(Value::Int(1), 4))
                .collect::<Vec<_>>(),
        );
        let rle = long.rle_compress().expect("3 runs over 12 rows compresses");
        assert!(matches!(rle, Array::RunLength { .. }));
        assert_eq!(rle.len(), 12);
        assert_eq!(rle, long);
        assert_eq!(rle.to_plain(), long);
        assert_eq!(rle.value(4), Value::Int(7));
        assert!(rle.is_null(6));
        assert_eq!(rle.value(8), Value::Int(1));
        // take over RLE produces a dict view over the run values.
        let taken = rle.take(&[0, 6, 11]);
        assert_eq!(taken, long.take(&[0, 6, 11]));

        // Unique values do not compress.
        let unique = Array::from_values((0..12i64).map(Value::Int).collect::<Vec<_>>());
        assert!(unique.rle_compress().is_none());
    }

    #[test]
    fn byte_size_counts_encodings_once_per_reference() {
        let dict = Arc::new(Array::from_values(vec![Value::text("abcd"), Value::text("ef")]));
        let dict_bytes = dict.byte_size();
        assert!(dict_bytes >= 6);
        let view = dict.take_dict(&[0, 1, 0, 1]);
        assert_eq!(view.byte_size(), 4 * 4 + dict_bytes);
    }
}
