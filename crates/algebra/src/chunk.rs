//! Columnar vectors ([`Array`]) and fixed-size batches ([`DataChunk`]).
//!
//! The executor moves data between operators as chunks of up to [`DEFAULT_CHUNK_SIZE`] rows,
//! stored column-wise: one typed [`Array`] per attribute plus a validity bitmap marking NULLs.
//! Predicates then evaluate into a filter bitmap that is applied by compacting whole columns,
//! projections gather columns instead of building per-row `Vec<Value>`s, and joins probe on
//! column slices — the per-row allocation and `clone()` traffic of tuple-at-a-time execution
//! disappears from the hot path.
//!
//! Tuples still exist at the edges (SQL literals, INSERT values, client-visible rows) and the
//! chunk layer converts losslessly in both directions: [`DataChunk::from_tuples`] /
//! [`DataChunk::tuple_at`]. Columns whose rows do not share one scalar type (legal in this
//! engine, e.g. a `CASE` mixing INT and TEXT arms) degrade to the boxed [`Array::Any`]
//! representation, so the columnar layer is a fast path, never a semantic restriction.

use std::sync::Arc;

use crate::tuple::Tuple;
use crate::value::{DataType, Value};

/// Number of rows per [`DataChunk`] in the executor pipeline.
pub const DEFAULT_CHUNK_SIZE: usize = 1024;

/// A validity bitmap: bit `i` is set iff row `i` holds a (non-NULL) value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` bits, all set (all rows valid).
    pub fn all_set(len: usize) -> Bitmap {
        let mut b = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.clear_tail();
        b
    }

    /// A bitmap of `len` bits, none set (all rows NULL).
    pub fn all_unset(len: usize) -> Bitmap {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the bitmap empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Append a bit.
    #[inline]
    pub fn push(&mut self, set: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if set {
            self.words[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Are all bits set (no NULLs)?
    pub fn all_set_bits(&self) -> bool {
        self.count_set() == self.len
    }

    /// Iterate the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Bitmap {
        let mut b = Bitmap::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

/// A typed columnar vector of scalar values with a validity bitmap.
///
/// The typed variants store unboxed native values; [`Array::Null`] is the degenerate all-NULL
/// column and [`Array::Any`] is the boxed fallback for columns whose rows mix scalar types.
#[derive(Debug, Clone, PartialEq)]
pub enum Array {
    /// Booleans.
    Bool {
        /// Native values (`false` at invalid slots).
        values: Vec<bool>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// 64-bit integers.
    Int {
        /// Native values (`0` at invalid slots).
        values: Vec<i64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// 64-bit floats.
    Float {
        /// Native values (`0.0` at invalid slots).
        values: Vec<f64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// UTF-8 text (shared, so gathers are refcount bumps).
    Text {
        /// Native values (empty strings at invalid slots).
        values: Vec<Arc<str>>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Dates as days since 1970-01-01.
    Date {
        /// Native values (`0` at invalid slots).
        values: Vec<i32>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// A column of `len` NULLs.
    Null {
        /// Number of rows.
        len: usize,
    },
    /// Boxed fallback for columns mixing scalar types.
    Any {
        /// One boxed value per row.
        values: Vec<Value>,
    },
}

impl Array {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Array::Bool { values, .. } => values.len(),
            Array::Int { values, .. } => values.len(),
            Array::Float { values, .. } => values.len(),
            Array::Text { values, .. } => values.len(),
            Array::Date { values, .. } => values.len(),
            Array::Null { len } => *len,
            Array::Any { values } => values.len(),
        }
    }

    /// Is the array empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is row `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Array::Bool { validity, .. }
            | Array::Int { validity, .. }
            | Array::Float { validity, .. }
            | Array::Text { validity, .. }
            | Array::Date { validity, .. } => !validity.get(i),
            Array::Null { .. } => true,
            Array::Any { values } => values[i].is_null(),
        }
    }

    /// The value at row `i` (a clone; text is a refcount bump).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            Array::Bool { values, validity } => {
                if validity.get(i) {
                    Value::Bool(values[i])
                } else {
                    Value::Null
                }
            }
            Array::Int { values, validity } => {
                if validity.get(i) {
                    Value::Int(values[i])
                } else {
                    Value::Null
                }
            }
            Array::Float { values, validity } => {
                if validity.get(i) {
                    Value::Float(values[i])
                } else {
                    Value::Null
                }
            }
            Array::Text { values, validity } => {
                if validity.get(i) {
                    Value::Text(values[i].clone())
                } else {
                    Value::Null
                }
            }
            Array::Date { values, validity } => {
                if validity.get(i) {
                    Value::Date(values[i])
                } else {
                    Value::Null
                }
            }
            Array::Null { .. } => Value::Null,
            Array::Any { values } => values[i].clone(),
        }
    }

    /// The scalar type of the column ([`DataType::Null`] for all-NULL or mixed columns).
    pub fn data_type(&self) -> DataType {
        match self {
            Array::Bool { .. } => DataType::Bool,
            Array::Int { .. } => DataType::Int,
            Array::Float { .. } => DataType::Float,
            Array::Text { .. } => DataType::Text,
            Array::Date { .. } => DataType::Date,
            Array::Null { .. } | Array::Any { .. } => DataType::Null,
        }
    }

    /// Build an array from a sequence of values (choosing the best representation).
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Array {
        let mut builder = ArrayBuilder::new();
        for v in values {
            builder.push(v);
        }
        builder.finish()
    }

    /// An array repeating `value` `len` times (literal broadcast).
    pub fn repeat(value: &Value, len: usize) -> Array {
        match value {
            Value::Null => Array::Null { len },
            Value::Bool(b) => Array::Bool { values: vec![*b; len], validity: Bitmap::all_set(len) },
            Value::Int(i) => Array::Int { values: vec![*i; len], validity: Bitmap::all_set(len) },
            Value::Float(f) => {
                Array::Float { values: vec![*f; len], validity: Bitmap::all_set(len) }
            }
            Value::Text(s) => {
                Array::Text { values: vec![s.clone(); len], validity: Bitmap::all_set(len) }
            }
            Value::Date(d) => Array::Date { values: vec![*d; len], validity: Bitmap::all_set(len) },
        }
    }

    /// Keep only the rows whose mask bit is `true` (filter compaction).
    pub fn filter(&self, mask: &[bool]) -> Array {
        debug_assert_eq!(mask.len(), self.len());
        fn compact<T: Clone>(values: &[T], validity: &Bitmap, mask: &[bool]) -> (Vec<T>, Bitmap) {
            let kept = mask.iter().filter(|m| **m).count();
            let mut out = Vec::with_capacity(kept);
            // No-NULL columns skip per-row validity bookkeeping entirely.
            if validity.all_set_bits() {
                for (i, keep) in mask.iter().enumerate() {
                    if *keep {
                        out.push(values[i].clone());
                    }
                }
                return (out, Bitmap::all_set(kept));
            }
            let mut v = Bitmap::new();
            for (i, keep) in mask.iter().enumerate() {
                if *keep {
                    out.push(values[i].clone());
                    v.push(validity.get(i));
                }
            }
            (out, v)
        }
        match self {
            Array::Bool { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Bool { values, validity }
            }
            Array::Int { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Int { values, validity }
            }
            Array::Float { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Float { values, validity }
            }
            Array::Text { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Text { values, validity }
            }
            Array::Date { values, validity } => {
                let (values, validity) = compact(values, validity, mask);
                Array::Date { values, validity }
            }
            Array::Null { .. } => Array::Null { len: mask.iter().filter(|m| **m).count() },
            Array::Any { values } => Array::Any {
                values: values
                    .iter()
                    .zip(mask)
                    .filter(|(_, keep)| **keep)
                    .map(|(v, _)| v.clone())
                    .collect(),
            },
        }
    }

    /// Gather the rows at `indices` (column gather; indices may repeat and reorder).
    pub fn take(&self, indices: &[u32]) -> Array {
        fn gather<T: Clone>(values: &[T], validity: &Bitmap, indices: &[u32]) -> (Vec<T>, Bitmap) {
            // No-NULL columns skip per-row validity bookkeeping entirely.
            if validity.all_set_bits() {
                let out = indices.iter().map(|&i| values[i as usize].clone()).collect();
                return (out, Bitmap::all_set(indices.len()));
            }
            let mut out = Vec::with_capacity(indices.len());
            let mut v = Bitmap::new();
            for &i in indices {
                out.push(values[i as usize].clone());
                v.push(validity.get(i as usize));
            }
            (out, v)
        }
        match self {
            Array::Bool { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Bool { values, validity }
            }
            Array::Int { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Int { values, validity }
            }
            Array::Float { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Float { values, validity }
            }
            Array::Text { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Text { values, validity }
            }
            Array::Date { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Date { values, validity }
            }
            Array::Null { .. } => Array::Null { len: indices.len() },
            Array::Any { values } => {
                Array::Any { values: indices.iter().map(|&i| values[i as usize].clone()).collect() }
            }
        }
    }

    /// Gather with optional indices: `None` produces a NULL row (outer-join padding).
    pub fn take_opt(&self, indices: &[Option<u32>]) -> Array {
        fn gather<T: Clone + Default>(
            values: &[T],
            validity: &Bitmap,
            indices: &[Option<u32>],
        ) -> (Vec<T>, Bitmap) {
            let mut out = Vec::with_capacity(indices.len());
            let mut v = Bitmap::new();
            for idx in indices {
                match idx {
                    Some(i) => {
                        out.push(values[*i as usize].clone());
                        v.push(validity.get(*i as usize));
                    }
                    None => {
                        out.push(T::default());
                        v.push(false);
                    }
                }
            }
            (out, v)
        }
        match self {
            Array::Bool { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Bool { values, validity }
            }
            Array::Int { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Int { values, validity }
            }
            Array::Float { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Float { values, validity }
            }
            Array::Text { values, validity } => {
                let mut out = Vec::with_capacity(indices.len());
                let mut v = Bitmap::new();
                for idx in indices {
                    match idx {
                        Some(i) => {
                            out.push(values[*i as usize].clone());
                            v.push(validity.get(*i as usize));
                        }
                        None => {
                            out.push(Arc::from(""));
                            v.push(false);
                        }
                    }
                }
                Array::Text { values: out, validity: v }
            }
            Array::Date { values, validity } => {
                let (values, validity) = gather(values, validity, indices);
                Array::Date { values, validity }
            }
            Array::Null { .. } => Array::Null { len: indices.len() },
            Array::Any { values } => Array::Any {
                values: indices
                    .iter()
                    .map(|idx| match idx {
                        Some(i) => values[*i as usize].clone(),
                        None => Value::Null,
                    })
                    .collect(),
            },
        }
    }

    /// A copy of the rows `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Array {
        fn cut<T: Clone>(
            values: &[T],
            validity: &Bitmap,
            offset: usize,
            len: usize,
        ) -> (Vec<T>, Bitmap) {
            let out = values[offset..offset + len].to_vec();
            if validity.all_set_bits() {
                return (out, Bitmap::all_set(len));
            }
            let v = (offset..offset + len).map(|i| validity.get(i)).collect();
            (out, v)
        }
        match self {
            Array::Bool { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Bool { values, validity }
            }
            Array::Int { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Int { values, validity }
            }
            Array::Float { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Float { values, validity }
            }
            Array::Text { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Text { values, validity }
            }
            Array::Date { values, validity } => {
                let (values, validity) = cut(values, validity, offset, len);
                Array::Date { values, validity }
            }
            Array::Null { .. } => Array::Null { len },
            Array::Any { values } => Array::Any { values: values[offset..offset + len].to_vec() },
        }
    }

    /// Concatenate several arrays into one (same-variant inputs extend natively; mixed variants
    /// degrade to the boxed fallback).
    pub fn concat(arrays: &[&Array]) -> Array {
        /// Same-variant fast path: native `extend_from_slice` per input, no value boxing.
        macro_rules! typed_concat {
            ($variant:ident) => {{
                if arrays.iter().all(|a| matches!(a, Array::$variant { .. })) {
                    let mut values = Vec::new();
                    let mut validity = Bitmap::new();
                    for a in arrays {
                        if let Array::$variant { values: v, validity: b } = a {
                            values.extend_from_slice(v);
                            b.iter().for_each(|bit| validity.push(bit));
                        }
                    }
                    return Array::$variant { values, validity };
                }
            }};
        }
        match arrays {
            [] => Array::Null { len: 0 },
            [only] => (*only).clone(),
            _ => {
                typed_concat!(Int);
                typed_concat!(Text);
                typed_concat!(Float);
                typed_concat!(Date);
                typed_concat!(Bool);
                let mut builder = ArrayBuilder::with_capacity(arrays.iter().map(|a| a.len()).sum());
                for a in arrays {
                    for i in 0..a.len() {
                        builder.push(a.value(i));
                    }
                }
                builder.finish()
            }
        }
    }

    /// Compare rows `i` of `self` and `j` of `other` under the total value order used for
    /// sorting ([`Value::cmp`]: NULLs first, then type rank, then value).
    pub fn compare(&self, i: usize, other: &Array, j: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        // Typed fast path when both sides are the same native variant and non-null.
        match (self, other) {
            (Array::Int { values: a, validity: va }, Array::Int { values: b, validity: vb })
                if va.get(i) && vb.get(j) =>
            {
                return a[i].cmp(&b[j]);
            }
            (Array::Text { values: a, validity: va }, Array::Text { values: b, validity: vb })
                if va.get(i) && vb.get(j) =>
            {
                return a[i].cmp(&b[j]);
            }
            (Array::Date { values: a, validity: va }, Array::Date { values: b, validity: vb })
                if va.get(i) && vb.get(j) =>
            {
                return a[i].cmp(&b[j]);
            }
            (
                Array::Float { values: a, validity: va },
                Array::Float { values: b, validity: vb },
            ) if va.get(i) && vb.get(j) => {
                // NaN-total ordering (NaN sorts last) so sort keys are deterministic; plain
                // `partial_cmp` would make ORDER BY nondeterministic in the presence of NaN.
                return crate::value::total_float_cmp(a[i], b[j]);
            }
            _ => {}
        }
        match (self.is_null(i), other.is_null(j)) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.value(i).cmp(&other.value(j)),
        }
    }

    /// Append the display form of row `i` to `out` (`NULL` for NULL), without boxing a
    /// [`Value`]. Used by the wire protocol's chunk-wise result rendering.
    pub fn format_into(&self, i: usize, out: &mut String) {
        use std::fmt::Write;
        match self {
            Array::Bool { values, validity } if validity.get(i) => {
                out.push_str(if values[i] { "true" } else { "false" });
            }
            Array::Int { values, validity } if validity.get(i) => {
                let _ = write!(out, "{}", values[i]);
            }
            Array::Float { values, validity } if validity.get(i) => {
                out.push_str(&crate::value::format_float(values[i]));
            }
            Array::Text { values, validity } if validity.get(i) => out.push_str(&values[i]),
            Array::Date { values, validity } if validity.get(i) => {
                out.push_str(&crate::value::format_date(values[i]));
            }
            Array::Any { values } if !values[i].is_null() => {
                let _ = write!(out, "{}", values[i]);
            }
            _ => out.push_str("NULL"),
        }
    }
}

/// Incremental [`Array`] construction from dynamically typed [`Value`]s.
///
/// The builder starts untyped, locks onto the variant of the first non-NULL value and degrades
/// to the boxed [`Array::Any`] representation if a later value does not fit.
#[derive(Debug, Default)]
pub struct ArrayBuilder {
    repr: BuilderRepr,
    /// Expected number of values; pre-sizes the native vector when the type locks in.
    capacity: usize,
}

#[derive(Debug, Default)]
enum BuilderRepr {
    /// Nothing but NULLs seen so far.
    #[default]
    Untyped,
    Nulls(usize),
    Typed(Array),
    Any(Vec<Value>),
}

impl ArrayBuilder {
    /// An empty builder.
    pub fn new() -> ArrayBuilder {
        ArrayBuilder::default()
    }

    /// A builder expecting about `capacity` values (pre-sizes the native vector when the
    /// column type locks in).
    pub fn with_capacity(capacity: usize) -> ArrayBuilder {
        ArrayBuilder { repr: BuilderRepr::default(), capacity }
    }

    /// Append a value.
    pub fn push(&mut self, value: Value) {
        let repr = std::mem::take(&mut self.repr);
        self.repr = match (repr, value) {
            (BuilderRepr::Untyped, Value::Null) => BuilderRepr::Nulls(1),
            (BuilderRepr::Nulls(n), Value::Null) => BuilderRepr::Nulls(n + 1),
            (BuilderRepr::Untyped, v) => BuilderRepr::Typed(seed_typed(0, v, self.capacity)),
            (BuilderRepr::Nulls(n), v) => BuilderRepr::Typed(seed_typed(n, v, self.capacity)),
            (BuilderRepr::Typed(mut array), v) => match push_typed(&mut array, v) {
                Ok(()) => BuilderRepr::Typed(array),
                Err(v) => {
                    // Type conflict: degrade to boxed values.
                    let mut values: Vec<Value> =
                        Vec::with_capacity(self.capacity.max(array.len() + 1));
                    values.extend((0..array.len()).map(|i| array.value(i)));
                    values.push(v);
                    BuilderRepr::Any(values)
                }
            },
            (BuilderRepr::Any(mut values), v) => {
                values.push(v);
                BuilderRepr::Any(values)
            }
        };
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        match &self.repr {
            BuilderRepr::Untyped => 0,
            BuilderRepr::Nulls(n) => *n,
            BuilderRepr::Typed(a) => a.len(),
            BuilderRepr::Any(v) => v.len(),
        }
    }

    /// Is the builder empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish the array.
    pub fn finish(self) -> Array {
        match self.repr {
            BuilderRepr::Untyped => Array::Null { len: 0 },
            BuilderRepr::Nulls(n) => Array::Null { len: n },
            BuilderRepr::Typed(a) => a,
            BuilderRepr::Any(values) => Array::Any { values },
        }
    }
}

/// Start a typed array with `nulls` leading NULL slots followed by `value`, pre-sized for
/// `capacity` total values.
fn seed_typed(nulls: usize, value: Value, capacity: usize) -> Array {
    let capacity = capacity.max(nulls + 1);
    fn seeded<T: Clone>(fill: T, nulls: usize, value: T, capacity: usize) -> Vec<T> {
        let mut values = Vec::with_capacity(capacity);
        values.resize(nulls, fill);
        values.push(value);
        values
    }
    let mut validity = Bitmap::all_unset(nulls);
    validity.push(true);
    match value {
        Value::Bool(b) => Array::Bool { values: seeded(false, nulls, b, capacity), validity },
        Value::Int(i) => Array::Int { values: seeded(0, nulls, i, capacity), validity },
        Value::Float(f) => Array::Float { values: seeded(0.0, nulls, f, capacity), validity },
        Value::Text(s) => {
            Array::Text { values: seeded(Arc::from(""), nulls, s, capacity), validity }
        }
        Value::Date(d) => Array::Date { values: seeded(0, nulls, d, capacity), validity },
        Value::Null => unreachable!("NULL is handled by the builder before seeding"),
    }
}

/// Append `value` to a typed array; returns the value back on a type conflict.
fn push_typed(array: &mut Array, value: Value) -> Result<(), Value> {
    match (array, value) {
        (Array::Bool { values, validity }, Value::Bool(b)) => {
            values.push(b);
            validity.push(true);
        }
        (Array::Int { values, validity }, Value::Int(i)) => {
            values.push(i);
            validity.push(true);
        }
        (Array::Float { values, validity }, Value::Float(f)) => {
            values.push(f);
            validity.push(true);
        }
        (Array::Text { values, validity }, Value::Text(s)) => {
            values.push(s);
            validity.push(true);
        }
        (Array::Date { values, validity }, Value::Date(d)) => {
            values.push(d);
            validity.push(true);
        }
        (Array::Bool { values, validity }, Value::Null) => {
            values.push(false);
            validity.push(false);
        }
        (Array::Int { values, validity }, Value::Null) => {
            values.push(0);
            validity.push(false);
        }
        (Array::Float { values, validity }, Value::Null) => {
            values.push(0.0);
            validity.push(false);
        }
        (Array::Text { values, validity }, Value::Null) => {
            values.push(Arc::from(""));
            validity.push(false);
        }
        (Array::Date { values, validity }, Value::Null) => {
            values.push(0);
            validity.push(false);
        }
        (_, value) => return Err(value),
    }
    Ok(())
}

/// A batch of rows stored column-wise: one [`Array`] per attribute.
///
/// Columns are held behind [`Arc`]s so that passing a column through a projection, or emitting
/// a cached storage chunk from a scan, is a refcount bump rather than a copy.
#[derive(Debug, Clone, PartialEq)]
pub struct DataChunk {
    columns: Vec<Arc<Array>>,
    rows: usize,
}

impl DataChunk {
    /// Build a chunk from columns (all columns must have the same length).
    pub fn new(columns: Vec<Arc<Array>>) -> DataChunk {
        let rows = columns.first().map_or(0, |c| c.len());
        debug_assert!(columns.iter().all(|c| c.len() == rows), "column lengths must agree");
        DataChunk { columns, rows }
    }

    /// An empty chunk of `arity` columns and zero rows.
    pub fn empty(arity: usize) -> DataChunk {
        DataChunk {
            columns: (0..arity).map(|_| Arc::new(Array::Null { len: 0 })).collect(),
            rows: 0,
        }
    }

    /// A chunk of `rows` rows and zero columns (the projection-free edge case, e.g.
    /// `SELECT count(*)` pipelines).
    pub fn zero_width(rows: usize) -> DataChunk {
        DataChunk { columns: Vec::new(), rows }
    }

    /// Convert a slice of tuples into one chunk of `arity` columns.
    pub fn from_tuples(arity: usize, rows: &[Tuple]) -> DataChunk {
        let mut builders: Vec<ArrayBuilder> = (0..arity).map(|_| ArrayBuilder::new()).collect();
        for t in rows {
            for (c, builder) in builders.iter_mut().enumerate() {
                builder.push(t.get(c).cloned().unwrap_or(Value::Null));
            }
        }
        DataChunk {
            columns: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            rows: rows.len(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Is the chunk empty (no rows)?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column `c`.
    pub fn column(&self, c: usize) -> &Arc<Array> {
        &self.columns[c]
    }

    /// All columns.
    pub fn columns(&self) -> &[Arc<Array>] {
        &self.columns
    }

    /// The value at (`row`, `col`).
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialize row `i` as a tuple.
    pub fn tuple_at(&self, i: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Iterate the rows as tuples (the compatibility edge; hot paths stay columnar).
    pub fn iter_tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.rows).map(|i| self.tuple_at(i))
    }

    /// Keep only the rows whose mask bit is `true`.
    pub fn filter(&self, mask: &[bool]) -> DataChunk {
        debug_assert_eq!(mask.len(), self.rows);
        let rows = mask.iter().filter(|m| **m).count();
        if rows == self.rows {
            return self.clone();
        }
        DataChunk { columns: self.columns.iter().map(|c| Arc::new(c.filter(mask))).collect(), rows }
    }

    /// Gather the rows at `indices`.
    pub fn take(&self, indices: &[u32]) -> DataChunk {
        DataChunk {
            columns: self.columns.iter().map(|c| Arc::new(c.take(indices))).collect(),
            rows: indices.len(),
        }
    }

    /// A copy of the rows `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> DataChunk {
        DataChunk {
            columns: self.columns.iter().map(|c| Arc::new(c.slice(offset, len))).collect(),
            rows: len,
        }
    }

    /// Concatenate chunks of the same arity into one chunk.
    pub fn concat(arity: usize, chunks: &[DataChunk]) -> DataChunk {
        if chunks.len() == 1 {
            return chunks[0].clone();
        }
        let rows = chunks.iter().map(|c| c.num_rows()).sum();
        let columns = (0..arity)
            .map(|c| {
                let parts: Vec<&Array> = chunks.iter().map(|ch| ch.column(c).as_ref()).collect();
                Arc::new(Array::concat(&parts))
            })
            .collect();
        DataChunk { columns, rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(129));
        assert_eq!(b.count_set(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(Bitmap::all_set(70).all_set_bits());
        assert_eq!(Bitmap::all_unset(70).count_set(), 0);
    }

    #[test]
    fn builder_types_lock_and_degrade() {
        let a = Array::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert!(matches!(a, Array::Int { .. }));
        assert_eq!(a.value(0), Value::Int(1));
        assert_eq!(a.value(1), Value::Null);
        assert_eq!(a.value(2), Value::Int(3));

        // Leading NULLs then a typed value.
        let a = Array::from_values(vec![Value::Null, Value::text("x")]);
        assert!(matches!(a, Array::Text { .. }));
        assert_eq!(a.value(0), Value::Null);
        assert_eq!(a.value(1), Value::text("x"));

        // Mixed types degrade to the boxed fallback without losing values.
        let a = Array::from_values(vec![Value::Int(1), Value::text("x"), Value::Null]);
        assert!(matches!(a, Array::Any { .. }));
        assert_eq!(a.value(0), Value::Int(1));
        assert_eq!(a.value(1), Value::text("x"));
        assert_eq!(a.value(2), Value::Null);

        let a = Array::from_values(vec![Value::Null, Value::Null]);
        assert!(matches!(a, Array::Null { len: 2 }));
    }

    #[test]
    fn chunk_round_trips_tuples() {
        let rows = vec![tuple![1, "a"], tuple![2, "b"], Tuple::new(vec![Value::Null, Value::Null])];
        let chunk = DataChunk::from_tuples(2, &rows);
        assert_eq!(chunk.num_rows(), 3);
        assert_eq!(chunk.num_columns(), 2);
        let back: Vec<Tuple> = chunk.iter_tuples().collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn filter_take_slice() {
        let rows: Vec<Tuple> = (0..10i64).map(|i| tuple![i, i * 10]).collect();
        let chunk = DataChunk::from_tuples(2, &rows);
        let mask: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let filtered = chunk.filter(&mask);
        assert_eq!(filtered.num_rows(), 5);
        assert_eq!(filtered.tuple_at(2), tuple![4, 40]);

        let taken = chunk.take(&[9, 0, 9]);
        assert_eq!(taken.tuple_at(0), tuple![9, 90]);
        assert_eq!(taken.tuple_at(1), tuple![0, 0]);
        assert_eq!(taken.tuple_at(2), tuple![9, 90]);

        let sliced = chunk.slice(3, 4);
        assert_eq!(sliced.num_rows(), 4);
        assert_eq!(sliced.tuple_at(0), tuple![3, 30]);
        assert_eq!(sliced.tuple_at(3), tuple![6, 60]);
    }

    #[test]
    fn take_opt_pads_nulls() {
        let chunk = DataChunk::from_tuples(1, &[tuple![7], tuple![8]]);
        let col = chunk.column(0).take_opt(&[Some(1), None, Some(0)]);
        assert_eq!(col.value(0), Value::Int(8));
        assert_eq!(col.value(1), Value::Null);
        assert_eq!(col.value(2), Value::Int(7));
    }

    #[test]
    fn concat_same_and_mixed_variants() {
        let a = Array::from_values(vec![Value::Int(1), Value::Int(2)]);
        let b = Array::from_values(vec![Value::Null, Value::Int(4)]);
        let c = Array::concat(&[&a, &b]);
        assert!(matches!(c, Array::Int { .. }));
        assert_eq!(c.len(), 4);
        assert_eq!(c.value(2), Value::Null);
        assert_eq!(c.value(3), Value::Int(4));

        let t = Array::from_values(vec![Value::text("x")]);
        let mixed = Array::concat(&[&a, &t]);
        assert_eq!(mixed.len(), 3);
        assert_eq!(mixed.value(2), Value::text("x"));
    }

    #[test]
    fn compare_matches_value_order() {
        let a = Array::from_values(vec![Value::Null, Value::Int(1), Value::Int(5)]);
        assert_eq!(a.compare(0, &a, 1), std::cmp::Ordering::Less); // NULLs first
        assert_eq!(a.compare(1, &a, 2), std::cmp::Ordering::Less);
        assert_eq!(a.compare(2, &a, 2), std::cmp::Ordering::Equal);
        let mixed = Array::from_values(vec![Value::Int(2), Value::Float(2.0)]);
        assert_eq!(mixed.compare(0, &mixed, 1), std::cmp::Ordering::Equal);
    }

    #[test]
    fn format_into_matches_display() {
        let rows = vec![
            tuple![1, 2.5, "x", true],
            Tuple::new(vec![Value::Null, Value::Null, Value::Null, Value::Null]),
        ];
        let chunk = DataChunk::from_tuples(4, &rows);
        let mut out = String::new();
        for c in 0..4 {
            chunk.column(c).format_into(0, &mut out);
            out.push('|');
            chunk.column(c).format_into(1, &mut out);
            out.push('|');
        }
        assert_eq!(out, "1|NULL|2.5|NULL|x|NULL|true|NULL|");
    }

    #[test]
    fn repeat_broadcasts_literals() {
        let a = Array::repeat(&Value::text("p"), 3);
        assert_eq!(a.len(), 3);
        assert_eq!(a.value(2), Value::text("p"));
        assert!(matches!(Array::repeat(&Value::Null, 2), Array::Null { len: 2 }));
    }
}
