//! Property-based tests for the executor: algebraic laws that must hold for any data.
//!
//! These guard the substrate the provenance rewriter builds on — in particular the bag-semantics
//! laws of Figure 1 (multiplicities of set operations), the equivalence of hash joins and
//! nested-loop joins, and the optimizer's semantics preservation.

use proptest::prelude::*;

use perm_algebra::{
    AggregateExpr, AggregateFunction, JoinKind, PlanBuilder, ScalarExpr, Schema, SetOpKind,
    SetSemantics, Tuple, Value,
};
use perm_exec::{execute_plan, Optimizer};
use perm_storage::{Catalog, Relation};

fn int_relation_strategy(max_rows: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..5, 0i64..5), 0..max_rows)
}

fn catalog_with(tables: &[(&str, &[(i64, i64)])]) -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("k", perm_algebra::DataType::Int),
        ("v", perm_algebra::DataType::Int),
    ]);
    for (name, rows) in tables {
        let tuples =
            rows.iter().map(|(k, v)| Tuple::new(vec![Value::Int(*k), Value::Int(*v)])).collect();
        catalog.create_table_with_data(name, Relation::from_parts(schema.clone(), tuples)).unwrap();
    }
    catalog
}

fn scan(catalog: &Catalog, name: &str, ref_id: usize) -> PlanBuilder {
    PlanBuilder::scan(name, catalog.table_schema(name).unwrap(), ref_id)
}

/// Count the multiplicity of `needle` in `rows`.
fn multiplicity(rows: &[(i64, i64)], needle: (i64, i64)) -> usize {
    rows.iter().filter(|r| **r == needle).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bag union, intersection and difference follow the multiplicity laws of Figure 1:
    /// n+m, min(n,m) and n-m respectively.
    #[test]
    fn bag_set_operation_multiplicities(
        a in int_relation_strategy(12),
        b in int_relation_strategy(12),
    ) {
        let catalog = catalog_with(&[("a", &a), ("b", &b)]);
        let run = |kind| {
            let plan = scan(&catalog, "a", 0)
                .set_op(scan(&catalog, "b", 1), kind, SetSemantics::Bag)
                .build();
            execute_plan(&catalog, &plan).unwrap()
        };
        let union = run(SetOpKind::Union);
        let intersect = run(SetOpKind::Intersect);
        let difference = run(SetOpKind::Difference);

        // Check the laws for every distinct tuple occurring anywhere.
        let mut universe: Vec<(i64, i64)> = a.iter().chain(b.iter()).copied().collect();
        universe.sort_unstable();
        universe.dedup();
        for t in universe {
            let tuple = Tuple::new(vec![Value::Int(t.0), Value::Int(t.1)]);
            let n = multiplicity(&a, t);
            let m = multiplicity(&b, t);
            let count_in = |rel: &Relation| rel.tuples().iter().filter(|x| **x == tuple).count();
            prop_assert_eq!(count_in(&union), n + m, "union multiplicity for {:?}", t);
            prop_assert_eq!(count_in(&intersect), n.min(m), "intersect multiplicity for {:?}", t);
            prop_assert_eq!(count_in(&difference), n.saturating_sub(m), "difference multiplicity for {:?}", t);
        }
    }

    /// A hash join (equi-condition) must agree with the equivalent cross product + selection.
    #[test]
    fn hash_join_equals_filtered_cross_product(
        a in int_relation_strategy(10),
        b in int_relation_strategy(10),
    ) {
        let catalog = catalog_with(&[("a", &a), ("b", &b)]);
        let condition = ScalarExpr::column(0, "k").eq(ScalarExpr::column(2, "k"));
        let join = scan(&catalog, "a", 0)
            .join(scan(&catalog, "b", 1), JoinKind::Inner, Some(condition.clone()))
            .build();
        let cross = scan(&catalog, "a", 0)
            .cross_join(scan(&catalog, "b", 1))
            .filter(condition)
            .build();
        let joined = execute_plan(&catalog, &join).unwrap();
        let filtered = execute_plan(&catalog, &cross).unwrap();
        prop_assert!(joined.bag_eq(&filtered));
    }

    /// A left outer join contains the inner join plus exactly one NULL-padded row per
    /// unmatched left tuple.
    #[test]
    fn left_outer_join_row_count(
        a in int_relation_strategy(10),
        b in int_relation_strategy(10),
    ) {
        let catalog = catalog_with(&[("a", &a), ("b", &b)]);
        let condition = ScalarExpr::column(0, "k").eq(ScalarExpr::column(2, "k"));
        let inner = execute_plan(
            &catalog,
            &scan(&catalog, "a", 0).join(scan(&catalog, "b", 1), JoinKind::Inner, Some(condition.clone())).build(),
        )
        .unwrap();
        let left = execute_plan(
            &catalog,
            &scan(&catalog, "a", 0).join(scan(&catalog, "b", 1), JoinKind::LeftOuter, Some(condition)).build(),
        )
        .unwrap();
        let matched_left_keys: std::collections::HashSet<i64> =
            b.iter().map(|(k, _)| *k).collect();
        let unmatched = a.iter().filter(|(k, _)| !matched_left_keys.contains(k)).count();
        prop_assert_eq!(left.num_rows(), inner.num_rows() + unmatched);
        // All padded rows have NULLs on the right side.
        let padded = left.tuples().iter().filter(|t| t[2].is_null() && t[3].is_null()).count();
        prop_assert_eq!(padded, unmatched);
    }

    /// The optimizer must not change query results (selection pushdown, join conversion,
    /// constant folding are all semantics-preserving).
    #[test]
    fn optimizer_preserves_results(
        a in int_relation_strategy(10),
        b in int_relation_strategy(10),
        threshold in 0i64..5,
    ) {
        let catalog = catalog_with(&[("a", &a), ("b", &b)]);
        let predicate = ScalarExpr::column(0, "k")
            .eq(ScalarExpr::column(2, "k"))
            .and(ScalarExpr::binary(
                perm_algebra::BinaryOperator::Lt,
                ScalarExpr::column(1, "v"),
                ScalarExpr::literal(threshold),
            ))
            .and(ScalarExpr::literal(true));
        let plan = scan(&catalog, "a", 0)
            .cross_join(scan(&catalog, "b", 1))
            .filter(predicate)
            .build();
        let optimized = Optimizer::new().optimize(&plan).unwrap();
        let raw = execute_plan(&catalog, &plan).unwrap();
        let opt = execute_plan(&catalog, &optimized).unwrap();
        prop_assert!(raw.bag_eq(&opt), "optimizer changed the result");
    }

    /// Grouped sums partition the total sum: summing the per-group sums equals the global sum.
    #[test]
    fn aggregation_partitions_sums(a in int_relation_strategy(15)) {
        let catalog = catalog_with(&[("a", &a), ("b", &[])]);
        let base = scan(&catalog, "a", 0);
        let v = base.col("v").unwrap();
        let k = base.col("k").unwrap();
        let grouped = base.clone().aggregate(
            vec![(k, "k".into())],
            vec![(AggregateExpr::new(AggregateFunction::Sum, v.clone()), "s".into())],
        );
        let total = base.aggregate(
            vec![],
            vec![(AggregateExpr::new(AggregateFunction::Sum, v), "s".into())],
        );
        let grouped_result = execute_plan(&catalog, &grouped.build()).unwrap();
        let total_result = execute_plan(&catalog, &total.build()).unwrap();
        let group_sum: i64 = grouped_result
            .tuples()
            .iter()
            .filter_map(|t| t[1].as_i64())
            .sum();
        let expected = total_result.tuples()[0][0].as_i64().unwrap_or(0);
        prop_assert_eq!(group_sum, expected);
        // Number of groups equals the number of distinct keys.
        let distinct_keys: std::collections::HashSet<i64> = a.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(grouped_result.num_rows(), distinct_keys.len());
    }

    /// DISTINCT projection returns each distinct tuple exactly once.
    #[test]
    fn distinct_projection_removes_duplicates(a in int_relation_strategy(20)) {
        let catalog = catalog_with(&[("a", &a), ("b", &[])]);
        let base = scan(&catalog, "a", 0);
        let k = base.col("k").unwrap();
        let plan = base.project_distinct(vec![(k, "k".into())]).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        let distinct_keys: std::collections::HashSet<i64> = a.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(result.num_rows(), distinct_keys.len());
    }
}
