//! Regression tests for atomic catalog snapshots (multi-scan queries must never observe a
//! half-applied multi-table write) and for `$n` parameter slots in compiled expressions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use perm_algebra::{tuple, DataType, PlanBuilder, ScalarExpr, Schema, Value};
use perm_exec::{ExecError, ExecOptions, Executor};
use perm_storage::{Catalog, Relation};

fn scan(catalog: &Catalog, table: &str, ref_id: usize) -> PlanBuilder {
    PlanBuilder::scan(table, catalog.table_schema(table).unwrap(), ref_id)
}

#[test]
fn executor_reads_one_atomic_snapshot() {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("x", DataType::Int)]);
    catalog
        .create_table_with_data("t", Relation::new(schema, vec![tuple![1], tuple![2]]).unwrap())
        .unwrap();
    let plan = scan(&catalog, "t", 0).build();
    // The snapshot is taken when the executor is constructed; a later commit is invisible.
    let executor = Executor::new(catalog.clone());
    catalog.insert("t", vec![tuple![3]]).unwrap();
    assert_eq!(executor.execute(&plan).unwrap().num_rows(), 2);
    assert_eq!(Executor::new(catalog).execute(&plan).unwrap().num_rows(), 3);
}

/// The historical bug: each base-relation scan called `Catalog::table_arc` separately, so a
/// self-join could pair two different versions of the same table (and a multi-table query could
/// observe a multi-table commit half-applied). With `Catalog::snapshot` routed through the
/// executor, a cross join `t × t` always has a perfect-square cardinality, and a two-table query
/// over an atomic `insert_many` always sees equal row counts.
#[test]
fn concurrent_commits_never_yield_torn_reads() {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("x", DataType::Int)]);
    catalog.create_table("a", schema.clone()).unwrap();
    catalog.create_table("b", schema).unwrap();
    catalog.insert_many(vec![("a", vec![tuple![0]]), ("b", vec![tuple![0]])]).unwrap();

    // The writer is volume-capped so the readers' O(n²) cross joins stay small; it keeps
    // committing while the readers run, which is what creates the race window.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let catalog = catalog.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            for i in 1i64..=300 {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                catalog.insert_many(vec![("a", vec![tuple![i]]), ("b", vec![tuple![i]])]).unwrap();
                thread::yield_now();
            }
        })
    };

    let self_join = scan(&catalog, "a", 0).cross_join(scan(&catalog, "a", 1)).build();
    let two_tables = scan(&catalog, "a", 0).cross_join(scan(&catalog, "b", 1)).build();
    for _ in 0..100 {
        let rows = Executor::new(catalog.clone()).execute(&self_join).unwrap().num_rows();
        let n = (rows as f64).sqrt().round() as usize;
        assert_eq!(n * n, rows, "self-join must pair one table version with itself");

        let rows = Executor::new(catalog.clone()).execute(&two_tables).unwrap().num_rows();
        let n = (rows as f64).sqrt().round() as usize;
        assert_eq!(n * n, rows, "insert_many commits to a and b must be seen atomically");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn parameters_resolve_at_compile_time() {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[("x", DataType::Int)]);
    catalog
        .create_table_with_data(
            "t",
            Relation::new(schema, vec![tuple![1], tuple![2], tuple![3]]).unwrap(),
        )
        .unwrap();
    let plan = {
        let t = scan(&catalog, "t", 0);
        let x = t.col("x").unwrap();
        t.filter(ScalarExpr::binary(perm_algebra::BinaryOperator::Gt, x, ScalarExpr::parameter(0)))
            .build()
    };
    let run = |params: Vec<Value>| {
        Executor::with_options(catalog.clone(), ExecOptions::default())
            .with_params(params)
            .execute(&plan)
    };
    // The same plan executes under different bindings.
    assert_eq!(run(vec![Value::Int(1)]).unwrap().num_rows(), 2);
    assert_eq!(run(vec![Value::Int(2)]).unwrap().num_rows(), 1);
    // A NULL binding makes the comparison UNKNOWN, filtering every row.
    assert_eq!(run(vec![Value::Null]).unwrap().num_rows(), 0);
    // A missing binding is an error, not a silent NULL.
    let err = run(vec![]).unwrap_err();
    assert!(matches!(err, ExecError::UnboundParameter { index: 0 }));
    assert!(err.to_string().contains("$1"));
}
