//! The query executor: evaluates logical plans against a catalog as a pull-based pipeline.
//!
//! The primary pipeline is **vectorized**: operators exchange [`perm_algebra::DataChunk`]
//! batches of up to [`perm_algebra::DEFAULT_CHUNK_SIZE`] columnar rows via `next_chunk()`-style
//! iterators (see [`crate::vector`]). This module keeps the original tuple-at-a-time pipeline
//! as [`Executor::execute_streaming`] — every operator compiled into a
//! `Box<dyn Iterator<Item = Result<Tuple, ExecError>>>` — both as a second differential-testing
//! target against the reference evaluator and as the baseline the `vectorized_scan` benchmark
//! compares against.
//!
//! In both pipelines, selection, projection, limit, subquery aliases and provenance annotations
//! **stream**: they pull one batch (or tuple) at a time from their input and never materialize
//! intermediate relations. Only the true pipeline breakers materialize — sort, aggregation, set
//! operations and the build side of a hash join. `LIMIT` short-circuits: once it has produced
//! `limit` rows it stops pulling, so the operators beneath it stop doing work (and stop being
//! charged against the row budget).
//!
//! Scalar expressions are compiled once per operator into [`crate::compile::CompiledExpr`]
//! (uncorrelated sublinks executed exactly once, `IN (SELECT ...)` turned into a hash-set
//! probe). The expensive operators are hash-based: equi-joins build a hash table on the right
//! input, aggregation and DISTINCT group through hash maps — mirroring what the rewritten
//! provenance queries of the paper rely on from PostgreSQL (rules R5–R9 introduce equi-joins on
//! grouping / original attributes).
//!
//! Execution can be bounded with [`ExecOptions`] (row budget / wall-clock timeout) to reproduce
//! the paper's behaviour of stopping runaway provenance queries (black cells in Figures 10/11).
//! Budgets are enforced *incrementally* by the row-creating operators (scans, joins, set
//! operations) as tuples flow, not after an operator has already materialized its output.
//!
//! A deliberately naive materializing evaluator is kept in [`crate::reference`] as the
//! executable specification; property tests assert both paths produce identical relations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use perm_algebra::{
    BinaryOperator, DataChunk, JoinKind, LogicalPlan, ScalarExpr, Schema, SetOpKind, SetSemantics,
    SortOrder, Tuple, Value,
};
use perm_storage::{Catalog, CatalogSnapshot, Relation};

use crate::compile::{CompiledAggregate, CompiledExpr};
use crate::error::ExecError;

/// A cooperative cancellation flag shared between a running query and whoever controls it
/// (the wire server's `cancel` request, a dropped stream, the governor shedding a query, or
/// graceful shutdown).
///
/// Cancellation is *checked*, never forced: every pipeline polls the token at its existing
/// deadline checkpoints (row batches, morsel boundaries, join probe strides), so a cancel lands
/// within one scheduling quantum and operators always unwind through normal error paths.
#[derive(Debug, Default)]
pub struct CancelToken {
    /// 0 = live, 1 = cancelled, 2 = shed by the governor (resource exhausted).
    state: AtomicU8,
    /// The governor's explanation when `state == 2`.
    message: OnceLock<String>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Cancel the query (client request, dropped stream, shutdown). Idempotent; a
    /// resource-exhausted cancellation is never downgraded to a plain cancel.
    pub fn cancel(&self) {
        let _ = self.state.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Cancel the query because the governor shed it; `message` explains which limit was hit.
    pub fn cancel_resource_exhausted(&self, message: impl Into<String>) {
        let _ = self.message.set(message.into());
        self.state.store(2, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled (one relaxed atomic load).
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Relaxed) != 0
    }

    /// Error if cancelled: [`ExecError::Cancelled`] for plain cancellation,
    /// [`ExecError::ResourceExhausted`] when the governor shed the query.
    pub fn check(&self) -> Result<(), ExecError> {
        match self.state.load(Ordering::Relaxed) {
            0 => Ok(()),
            2 => Err(ExecError::ResourceExhausted(
                self.message.get().cloned().unwrap_or_else(|| "query shed by governor".into()),
            )),
            _ => Err(ExecError::Cancelled),
        }
    }
}

/// Memory accounting hook for one query: the service layer's governor implements this so the
/// executor can charge its materializations (join build sides, sort/aggregation buffers)
/// against per-session and engine-wide budgets.
///
/// Reservations are *coarse*: the executor reserves at materialization points (never per row)
/// and the implementor releases everything when the query ends, so accounting stays out of the
/// per-row hot path.
pub trait QueryMemory: Send + Sync + std::fmt::Debug {
    /// Reserve `bytes` against the query's budget. An `Err` (typically
    /// [`ExecError::ResourceExhausted`]) aborts the query cleanly instead of letting it OOM.
    fn reserve(&self, bytes: usize) -> Result<(), ExecError>;
}

/// Resource limits applied to a single plan execution.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Maximum number of intermediate/output rows any single operator may produce.
    pub row_budget: Option<usize>,
    /// Wall-clock timeout.
    pub timeout: Option<Duration>,
    /// Cooperative cancellation token, polled at the same checkpoints as the deadline.
    pub cancel: Option<Arc<CancelToken>>,
    /// Memory-accounting hook charged at materialization points.
    pub memory: Option<Arc<dyn QueryMemory>>,
    /// Per-operator instrumentation sink (`EXPLAIN ANALYZE`); `None` means no profiling, and
    /// the pipelines then pay only one `Option` check per operator at construction.
    pub profile: Option<Arc<crate::profile::ProfileSink>>,
}

impl ExecOptions {
    /// No limits.
    pub fn unlimited() -> ExecOptions {
        ExecOptions::default()
    }

    /// Limit the number of rows any operator may produce.
    pub fn with_row_budget(mut self, budget: usize) -> ExecOptions {
        self.row_budget = Some(budget);
        self
    }

    /// Limit wall-clock execution time.
    pub fn with_timeout(mut self, timeout: Duration) -> ExecOptions {
        self.timeout = Some(timeout);
        self
    }

    /// Attach a cancellation token (see [`CancelToken`]).
    pub fn with_cancel_token(mut self, token: Arc<CancelToken>) -> ExecOptions {
        self.cancel = Some(token);
        self
    }

    /// Attach a memory-accounting hook (see [`QueryMemory`]).
    pub fn with_memory(mut self, memory: Arc<dyn QueryMemory>) -> ExecOptions {
        self.memory = Some(memory);
        self
    }

    /// Attach a per-operator instrumentation sink (see [`crate::profile::ProfileSink`]).
    pub fn with_profile(mut self, profile: Arc<crate::profile::ProfileSink>) -> ExecOptions {
        self.profile = Some(profile);
        self
    }
}

/// Per-execution limits, resolved once per [`Executor::execute`] call and passed *by
/// reference* down the operator tree; operators that outlive the call (iterators, parallel
/// closures) keep a clone — two words plus two optional `Arc`s.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExecContext {
    row_budget: Option<usize>,
    deadline: Option<Deadline>,
    cancel: Option<Arc<CancelToken>>,
    memory: Option<Arc<dyn QueryMemory>>,
    profile: Option<Arc<crate::profile::ProfileSink>>,
}

#[derive(Debug, Clone, Copy)]
struct Deadline {
    at: Instant,
    millis: u64,
}

impl ExecContext {
    fn new(options: &ExecOptions) -> ExecContext {
        ExecContext {
            row_budget: options.row_budget,
            deadline: options
                .timeout
                .map(|t| Deadline { at: Instant::now() + t, millis: t.as_millis() as u64 }),
            cancel: options.cancel.clone(),
            memory: options.memory.clone(),
            profile: options.profile.clone(),
        }
    }

    /// The row budget, if any (the chunked pipeline caps its batch size at the budget so that
    /// budget overruns are detected at the same row counts as in tuple-at-a-time execution).
    pub(crate) fn row_budget(&self) -> Option<usize> {
        self.row_budget
    }

    /// Check the wall-clock deadline *and* the cancellation token. Every pre-existing deadline
    /// checkpoint in the four pipelines doubles as a cancellation point, so cancel latency is
    /// bounded by the same strides that bound timeout latency.
    pub(crate) fn check_deadline(&self) -> Result<(), ExecError> {
        if let Some(cancel) = &self.cancel {
            cancel.check()?;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline.at {
                return Err(ExecError::Timeout { millis: deadline.millis });
            }
        }
        Ok(())
    }

    /// Charge `bytes` of materialized state (join build side, sort/aggregation buffer) against
    /// the query's memory grant, if one is attached. Called at materialization points only —
    /// never per row.
    pub(crate) fn reserve_memory(&self, bytes: usize) -> Result<(), ExecError> {
        match &self.memory {
            Some(memory) => memory.reserve(bytes),
            None => Ok(()),
        }
    }

    /// The profile slot for `plan`, when a sink is attached and knows this node. `None` (the
    /// common case) makes instrumentation a single `Option` check.
    pub(crate) fn profile_op(&self, plan: &LogicalPlan) -> Option<(ProfileHandle, usize)> {
        let sink = self.profile.as_ref()?;
        sink.op(plan).map(|idx| (sink.clone(), idx))
    }

    /// Record that the operator owning slot `idx` holds `bytes` materialized (no-op without a
    /// sink). Called at the same coarse materialization points as [`Self::reserve_memory`].
    pub(crate) fn record_buffered(&self, plan: &LogicalPlan, bytes: usize) {
        if let Some(sink) = &self.profile {
            if let Some(idx) = sink.op(plan) {
                sink.record_buffered(idx, bytes as u64);
            }
        }
    }
}

/// An attached profile sink, cloned into operator iterators that outlive the context borrow.
pub(crate) type ProfileHandle = Arc<crate::profile::ProfileSink>;

/// Incremental row-budget / timeout enforcement for one operator's output.
///
/// The budget check fires on every produced row; the (comparatively expensive) deadline check
/// fires every 256 rows.
#[derive(Debug)]
pub(crate) struct RowGuard {
    produced: usize,
    ctx: ExecContext,
}

impl RowGuard {
    pub(crate) fn new(ctx: &ExecContext) -> RowGuard {
        RowGuard { produced: 0, ctx: ctx.clone() }
    }

    #[inline]
    fn tick(&mut self) -> Result<(), ExecError> {
        self.produced += 1;
        if let Some(budget) = self.ctx.row_budget {
            if self.produced > budget {
                return Err(ExecError::RowBudgetExceeded { budget });
            }
        }
        if self.produced & 0xFF == 0 {
            self.ctx.check_deadline()?;
        }
        Ok(())
    }

    /// Charge a whole batch of rows at once (the chunked pipeline's equivalent of per-row
    /// ticking: budget totals are identical, the deadline is checked once per batch).
    #[inline]
    pub(crate) fn tick_many(&mut self, rows: usize) -> Result<(), ExecError> {
        self.produced += rows;
        if let Some(budget) = self.ctx.row_budget {
            if self.produced > budget {
                return Err(ExecError::RowBudgetExceeded { budget });
            }
        }
        self.ctx.check_deadline()
    }
}

/// The item stream flowing between operators.
pub(crate) type TupleIter<'a> = Box<dyn Iterator<Item = Result<Tuple, ExecError>> + 'a>;

/// A pull-based stream of result [`DataChunk`]s from [`Executor::execute_chunked`], carrying
/// the plan's output schema so consumers can describe results before the first chunk arrives.
pub struct ChunkStream<'a> {
    schema: Schema,
    inner: crate::vector::ChunkIter<'a>,
}

impl ChunkStream<'_> {
    /// The output schema of the plan this stream executes.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

impl Iterator for ChunkStream<'_> {
    type Item = Result<DataChunk, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl std::fmt::Debug for ChunkStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkStream").field("schema", &self.schema).finish_non_exhaustive()
    }
}

/// Executes logical plans against a [`Catalog`].
///
/// The executor captures a [`CatalogSnapshot`] at construction time and every base-relation
/// scan reads from it, so one execution observes a single atomic catalog state even while
/// concurrent sessions commit multi-table writes. Construct a fresh executor per query to pick
/// up later commits.
#[derive(Debug, Clone)]
pub struct Executor {
    catalog: Catalog,
    snapshot: CatalogSnapshot,
    options: ExecOptions,
    /// Bound values for the plan's `$n` parameter slots (resolved at expression-compile time).
    params: Arc<[Value]>,
}

impl Executor {
    /// Create an executor without resource limits.
    pub fn new(catalog: Catalog) -> Executor {
        Executor::with_options(catalog, ExecOptions::default())
    }

    /// Create an executor with resource limits.
    pub fn with_options(catalog: Catalog, options: ExecOptions) -> Executor {
        let snapshot = catalog.snapshot();
        Executor { catalog, snapshot, options, params: Arc::from([]) }
    }

    /// Bind values for the plan's `$n` parameter slots (zero-based: `$1` reads `params[0]`).
    pub fn with_params(mut self, params: Vec<Value>) -> Executor {
        self.params = params.into();
        self
    }

    /// The catalog this executor reads from.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The atomic catalog snapshot this executor scans from.
    pub fn snapshot(&self) -> &CatalogSnapshot {
        &self.snapshot
    }

    /// The bound value of parameter slot `index` (zero-based).
    pub(crate) fn param(&self, index: usize) -> Result<Value, ExecError> {
        self.params.get(index).cloned().ok_or(ExecError::UnboundParameter { index })
    }

    /// Resolve this executor's options into a per-execution context (shared by the vectorized,
    /// streaming and parallel pipelines).
    pub(crate) fn context(&self) -> ExecContext {
        ExecContext::new(&self.options)
    }

    /// Execute a plan through the vectorized chunk pipeline, returning the result as a
    /// chunk-backed [`Relation`] (rows are only boxed into tuples if a caller asks for them).
    pub fn execute(&self, plan: &LogicalPlan) -> Result<Relation, ExecError> {
        let ctx = ExecContext::new(&self.options);
        let schema = plan.schema();
        let chunks = self.stream_chunks(plan, &ctx)?.collect::<Result<Vec<_>, _>>()?;
        Ok(Relation::from_chunks(schema, chunks))
    }

    /// Execute a plan through the vectorized chunk pipeline, returning a pull-based stream of
    /// result chunks instead of a materialized [`Relation`]. Blocking operators (sorts,
    /// aggregations, join builds) still materialize internally, but pipeline-able results are
    /// produced one [`DataChunk`] at a time, so a consumer that forwards chunks as it pulls them
    /// holds O(chunk) memory regardless of result size. This is the execution entry point behind
    /// the service layer's streaming result API.
    pub fn execute_chunked<'a>(
        &'a self,
        plan: &'a LogicalPlan,
    ) -> Result<ChunkStream<'a>, ExecError> {
        let ctx = ExecContext::new(&self.options);
        let schema = plan.schema();
        let inner = self.stream_chunks(plan, &ctx)?;
        Ok(ChunkStream { schema, inner })
    }

    /// Execute a plan through the tuple-at-a-time streaming pipeline. Kept as a second
    /// independently implemented execution path for differential tests and as the
    /// row-versus-chunk baseline of the `vectorized_scan` benchmark.
    pub fn execute_streaming(&self, plan: &LogicalPlan) -> Result<Relation, ExecError> {
        let ctx = ExecContext::new(&self.options);
        let schema = plan.schema();
        let tuples = self.stream(plan, &ctx)?.collect::<Result<Vec<_>, _>>()?;
        Ok(Relation::from_parts(schema, tuples))
    }

    /// Execute a plan with the naive materializing reference evaluator (the executable
    /// specification of operator semantics; ignores resource limits). Exposed for differential
    /// tests.
    pub fn execute_reference(&self, plan: &LogicalPlan) -> Result<Relation, ExecError> {
        crate::reference::execute_reference(&self.catalog, plan)
    }

    /// Build the iterator pipeline for `plan`.
    pub(crate) fn stream<'a>(
        &'a self,
        plan: &'a LogicalPlan,
        ctx: &ExecContext,
    ) -> Result<TupleIter<'a>, ExecError> {
        Ok(match plan {
            LogicalPlan::BaseRelation { name, schema, .. } => {
                Box::new(self.scan(name, schema, None, None, ctx)?)
            }
            LogicalPlan::Values { rows, .. } => {
                let mut guard = RowGuard::new(ctx);
                Box::new(rows.iter().map(move |t| {
                    guard.tick()?;
                    Ok(t.clone())
                }))
            }
            LogicalPlan::Selection { input, predicate } => {
                let predicate = CompiledExpr::compile(predicate, self, ctx)?;
                // Fuse a selection directly over a base relation into the scan: the predicate is
                // evaluated against the *stored* tuple and only matches are cloned.
                if let LogicalPlan::BaseRelation { name, schema, .. } = strip_transparent(input) {
                    return Ok(Box::new(self.scan(name, schema, Some(predicate), None, ctx)?));
                }
                let child = self.stream(input, ctx)?;
                Box::new(child.filter_map(move |r| match r {
                    Ok(t) => match predicate.eval_predicate(&t) {
                        Ok(true) => Some(Ok(t)),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    },
                    Err(e) => Some(Err(e)),
                }))
            }
            LogicalPlan::Projection { input, exprs, distinct } => {
                let exprs: Vec<CompiledExpr> = exprs
                    .iter()
                    .map(|(e, _)| CompiledExpr::compile(e, self, ctx))
                    .collect::<Result<_, _>>()?;
                // Fuse projection (and an optional selection) over a base relation: expressions
                // read the stored tuple, so only the projected values are ever cloned.
                let fused: Option<TupleIter<'a>> = match strip_transparent(input) {
                    LogicalPlan::BaseRelation { name, schema, .. } => {
                        Some(Box::new(self.scan(name, schema, None, Some(exprs.clone()), ctx)?))
                    }
                    LogicalPlan::Selection { input: sel_input, predicate }
                        if matches!(
                            strip_transparent(sel_input),
                            LogicalPlan::BaseRelation { .. }
                        ) =>
                    {
                        let LogicalPlan::BaseRelation { name, schema, .. } =
                            strip_transparent(sel_input)
                        else {
                            unreachable!("matched above");
                        };
                        let predicate = CompiledExpr::compile(predicate, self, ctx)?;
                        Some(Box::new(self.scan(
                            name,
                            schema,
                            Some(predicate),
                            Some(exprs.clone()),
                            ctx,
                        )?))
                    }
                    _ => None,
                };
                let mapped: TupleIter<'a> = match fused {
                    Some(iter) => iter,
                    None => {
                        let child = self.stream(input, ctx)?;
                        Box::new(child.map(move |r| project_tuple(&exprs, &r?)))
                    }
                };
                if *distinct {
                    Box::new(DistinctIter { inner: mapped, seen: std::collections::HashSet::new() })
                } else {
                    mapped
                }
            }
            LogicalPlan::Join { left, right, kind, condition } => {
                let left_arity = left.output_arity();
                let right_arity = right.output_arity();
                // The build side materializes (pipeline breaker); the probe side streams.
                let right_rows: Vec<Tuple> = self.stream(right, ctx)?.collect::<Result<_, _>>()?;
                let (equi_keys, residual) = match condition {
                    Some(c) => split_equi_join_condition(c, left_arity),
                    None => (Vec::new(), Vec::new()),
                };
                let (mode, filter) = if equi_keys.is_empty() {
                    let filter = condition
                        .as_ref()
                        .map(|c| CompiledExpr::compile(c, self, ctx))
                        .transpose()?;
                    (JoinMode::nested_loop(&right_rows), filter)
                } else {
                    let filter = if residual.is_empty() {
                        None
                    } else {
                        Some(CompiledExpr::compile(
                            &ScalarExpr::conjunction(residual.into_iter().cloned().collect()),
                            self,
                            ctx,
                        )?)
                    };
                    (JoinMode::hash(&right_rows, equi_keys, left_arity)?, filter)
                };
                let mut guard = RowGuard::new(ctx);
                let join = JoinIter {
                    left: self.stream(left, ctx)?,
                    right: right_rows,
                    kind: *kind,
                    left_arity,
                    right_arity,
                    mode,
                    filter,
                    right_matched: Vec::new(),
                    cur: None,
                    cur_matched: false,
                    cursor: Cursor::Index(0),
                    drain: 0,
                    probing: true,
                    evals: 0,
                    ctx: ctx.clone(),
                };
                Box::new(join.map(move |r| {
                    let t = r?;
                    guard.tick()?;
                    Ok(t)
                }))
            }
            LogicalPlan::Aggregation { input, group_by, aggregates } => {
                let group_by: Vec<CompiledExpr> = group_by
                    .iter()
                    .map(|(e, _)| CompiledExpr::compile(e, self, ctx))
                    .collect::<Result<_, _>>()?;
                let aggregates: Vec<CompiledAggregate> = aggregates
                    .iter()
                    .map(|(a, _)| CompiledAggregate::compile(a, self, ctx))
                    .collect::<Result<_, _>>()?;
                let rows = aggregate_stream(self.stream(input, ctx)?, &group_by, &aggregates)?;
                Box::new(rows.into_iter().map(Ok))
            }
            LogicalPlan::SetOp { left, right, kind, semantics } => {
                let left_rows: Vec<Tuple> = self.stream(left, ctx)?.collect::<Result<_, _>>()?;
                let right_rows: Vec<Tuple> = self.stream(right, ctx)?.collect::<Result<_, _>>()?;
                let out = set_operation(left_rows, right_rows, *kind, *semantics);
                let mut guard = RowGuard::new(ctx);
                Box::new(out.into_iter().map(move |t| {
                    guard.tick()?;
                    Ok(t)
                }))
            }
            LogicalPlan::Sort { input, keys } => {
                let compiled: Vec<(CompiledExpr, SortOrder)> = keys
                    .iter()
                    .map(|k| Ok((CompiledExpr::compile(&k.expr, self, ctx)?, k.order)))
                    .collect::<Result<_, ExecError>>()?;
                let mut rows: Vec<Tuple> = self.stream(input, ctx)?.collect::<Result<_, _>>()?;
                sort_rows(&mut rows, &compiled)?;
                Box::new(rows.into_iter().map(Ok))
            }
            LogicalPlan::Limit { input, limit, offset } => {
                // Streaming limit: stop pulling from the input once satisfied, so the operators
                // beneath do no further work.
                let mut child = self.stream(input, ctx)?;
                let mut to_skip = *offset;
                let mut remaining = limit.unwrap_or(usize::MAX);
                Box::new(std::iter::from_fn(move || loop {
                    if remaining == 0 {
                        return None;
                    }
                    match child.next()? {
                        Err(e) => return Some(Err(e)),
                        Ok(t) => {
                            if to_skip > 0 {
                                to_skip -= 1;
                                continue;
                            }
                            remaining -= 1;
                            return Some(Ok(t));
                        }
                    }
                }))
            }
            LogicalPlan::SubqueryAlias { input, .. } => self.stream(input, ctx)?,
            LogicalPlan::ProvenanceAnnotation { input, .. } => self.stream(input, ctx)?,
        })
    }

    /// A (possibly filtered / projected) scan over a zero-copy snapshot of a base relation.
    /// The row guard ticks per *scanned* row, preserving the pre-streaming budget semantics for
    /// base-relation reads even when a selection or projection is fused into the scan.
    fn scan(
        &self,
        name: &str,
        schema: &Schema,
        predicate: Option<CompiledExpr>,
        exprs: Option<Vec<CompiledExpr>>,
        ctx: &ExecContext,
    ) -> Result<ScanIter, ExecError> {
        let rel = self.snapshot.table(name)?;
        if rel.schema().arity() != schema.arity() {
            return Err(ExecError::Internal(format!(
                "stored table '{name}' has arity {} but the plan expects {}",
                rel.schema().arity(),
                schema.arity()
            )));
        }
        Ok(ScanIter { rel, idx: 0, predicate, exprs, guard: RowGuard::new(ctx) })
    }
}

/// Strip operators that are transparent to execution (aliases, provenance annotations). Shared
/// with the optimizer's column-pruning pass, whose notion of a "fusible leaf" must stay in
/// lockstep with the scan fusion here.
pub(crate) fn strip_transparent(plan: &LogicalPlan) -> &LogicalPlan {
    match plan {
        LogicalPlan::SubqueryAlias { input, .. }
        | LogicalPlan::ProvenanceAnnotation { input, .. } => strip_transparent(input),
        other => other,
    }
}

/// Evaluate projection expressions against a tuple, producing the output tuple.
pub(crate) fn project_tuple(exprs: &[CompiledExpr], tuple: &Tuple) -> Result<Tuple, ExecError> {
    let mut values = Vec::with_capacity(exprs.len());
    for e in exprs {
        values.push(e.eval(tuple)?);
    }
    Ok(Tuple::new(values))
}

/// Streaming scan over an [`Arc`] snapshot of a stored relation, with optional fused selection
/// and projection. Tuples are cloned (or projected) only after the predicate passes.
struct ScanIter {
    rel: Arc<Relation>,
    idx: usize,
    predicate: Option<CompiledExpr>,
    exprs: Option<Vec<CompiledExpr>>,
    guard: RowGuard,
}

impl Iterator for ScanIter {
    type Item = Result<Tuple, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.idx >= self.rel.num_rows() {
                return None;
            }
            let tuple = &self.rel.tuples()[self.idx];
            self.idx += 1;
            if let Err(e) = self.guard.tick() {
                return Some(Err(e));
            }
            if let Some(predicate) = &self.predicate {
                match predicate.eval_predicate(tuple) {
                    Ok(true) => {}
                    Ok(false) => continue,
                    Err(e) => return Some(Err(e)),
                }
            }
            return Some(match &self.exprs {
                None => Ok(tuple.clone()),
                Some(exprs) => project_tuple(exprs, tuple),
            });
        }
    }
}

/// Streaming duplicate elimination (DISTINCT) preserving first-occurrence order.
struct DistinctIter<'a> {
    inner: TupleIter<'a>,
    seen: std::collections::HashSet<Tuple>,
}

impl Iterator for DistinctIter<'_> {
    type Item = Result<Tuple, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.inner.next()? {
                Err(e) => return Some(Err(e)),
                Ok(t) => {
                    if self.seen.insert(t.clone()) {
                        return Some(Ok(t));
                    }
                }
            }
        }
    }
}

/// One equi-join key pair extracted from a join condition.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EquiKey {
    /// Column index on the left input.
    pub(crate) left: usize,
    /// Column index in the *combined* schema (>= left arity).
    pub(crate) right: usize,
    /// Whether the comparison is null-safe (`IS NOT DISTINCT FROM`).
    pub(crate) null_safe: bool,
}

/// Split a join condition into hashable equi-key pairs and a residual predicate.
pub(crate) fn split_equi_join_condition(
    condition: &ScalarExpr,
    left_arity: usize,
) -> (Vec<EquiKey>, Vec<&ScalarExpr>) {
    let mut keys = Vec::new();
    let mut residual = Vec::new();
    for conjunct in condition.split_conjunction() {
        if let ScalarExpr::BinaryOp { op, left, right } = conjunct {
            let null_safe = *op == BinaryOperator::IsNotDistinctFrom;
            if *op == BinaryOperator::Eq || null_safe {
                if let (Some(a), Some(b)) = (left.as_column(), right.as_column()) {
                    let (l, r) = if a < left_arity && b >= left_arity {
                        (a, b)
                    } else if b < left_arity && a >= left_arity {
                        (b, a)
                    } else {
                        residual.push(conjunct);
                        continue;
                    };
                    keys.push(EquiKey { left: l, right: r, null_safe });
                    continue;
                }
            }
        }
        residual.push(conjunct);
    }
    (keys, residual)
}

/// Sentinel terminating a hash-join bucket chain.
const CHAIN_END: u32 = u32::MAX;

/// Can `v` participate in hash-key matching for an equi-join key? Under plain `=` a NULL key
/// never matches, and neither does a float NaN (`sql_eq` on NaN is unknown) — but grouping
/// equality, which the hash table uses, would match NaN to NaN, so NaN keys must be excluded
/// from the table exactly like NULLs to keep hash joins agreeing with nested-loop evaluation.
/// Null-safe keys (`IS NOT DISTINCT FROM`) use grouping equality directly, where both NULL and
/// NaN match themselves.
pub(crate) fn hash_joinable(v: &Value, null_safe: bool) -> bool {
    null_safe || !(v.is_null() || matches!(v, Value::Float(f) if f.is_nan()))
}

/// The probe strategy of a join: hash buckets over the build side, or plain nested loops.
enum JoinMode {
    /// Hash join: `head` maps a key to the first matching build-row index; `next[i]` chains to
    /// the following build row with the same key (in increasing index order, so output order
    /// matches the nested-loop order).
    Hash {
        keys: Vec<EquiKey>,
        single: Option<HashMap<Value, u32>>,
        multi: Option<HashMap<Tuple, u32>>,
        next: Vec<u32>,
    },
    /// Nested loop over the whole build side.
    Loop,
}

impl JoinMode {
    fn nested_loop(_right_rows: &[Tuple]) -> JoinMode {
        JoinMode::Loop
    }

    fn hash(
        right_rows: &[Tuple],
        keys: Vec<EquiKey>,
        left_arity: usize,
    ) -> Result<JoinMode, ExecError> {
        let mut next = vec![CHAIN_END; right_rows.len()];
        // Build in reverse so each bucket chain runs in increasing row order.
        if keys.len() == 1 {
            let key = keys[0];
            let mut single: HashMap<Value, u32> = HashMap::with_capacity(right_rows.len());
            for (i, row) in right_rows.iter().enumerate().rev() {
                let Some(v) = row.get(key.right - left_arity) else { continue };
                if !hash_joinable(v, key.null_safe) {
                    continue;
                }
                if let Some(prev) = single.insert(v.clone(), i as u32) {
                    next[i] = prev;
                }
            }
            Ok(JoinMode::Hash { keys, single: Some(single), multi: None, next })
        } else {
            let mut multi: HashMap<Tuple, u32> = HashMap::with_capacity(right_rows.len());
            for (i, row) in right_rows.iter().enumerate().rev() {
                let Some(k) = join_key(row, &keys, |k| k.right - left_arity, |k| k.null_safe)
                else {
                    continue;
                };
                if let Some(prev) = multi.insert(k, i as u32) {
                    next[i] = prev;
                }
            }
            Ok(JoinMode::Hash { keys, single: None, multi: Some(multi), next })
        }
    }

    /// The bucket-chain start (hash) or full-scan start (loop) for a probe row.
    fn cursor_for(&self, left_row: &Tuple) -> Cursor {
        match self {
            JoinMode::Loop => Cursor::Index(0),
            JoinMode::Hash { keys, single, multi, .. } => {
                if let Some(single) = single {
                    let key = keys[0];
                    let start = match left_row.get(key.left) {
                        Some(v) if hash_joinable(v, key.null_safe) => {
                            single.get(v).copied().unwrap_or(CHAIN_END)
                        }
                        _ => CHAIN_END,
                    };
                    Cursor::Chain(start)
                } else {
                    // A hash mode without a single-key table always carries the multi-key
                    // table; an absent table probes as "no match".
                    let start = multi
                        .as_ref()
                        .and_then(|m| {
                            join_key(left_row, keys, |k| k.left, |k| k.null_safe)
                                .and_then(|k| m.get(&k).copied())
                        })
                        .unwrap_or(CHAIN_END);
                    Cursor::Chain(start)
                }
            }
        }
    }
}

/// Probe-side position within the current left row's candidates.
enum Cursor {
    /// Hash mode: next build-row index in the bucket chain ([`CHAIN_END`] = exhausted).
    Chain(u32),
    /// Loop mode: next build-row index.
    Index(usize),
}

/// Streaming join: pulls left (probe) rows one at a time; the right (build) side is
/// materialized. Handles inner, cross and all outer joins; right/full outer joins drain their
/// null-padded unmatched build rows after the probe side is exhausted.
struct JoinIter<'a> {
    left: TupleIter<'a>,
    right: Vec<Tuple>,
    kind: JoinKind,
    left_arity: usize,
    right_arity: usize,
    mode: JoinMode,
    /// Residual predicate (hash mode) or the full join condition (loop mode).
    filter: Option<CompiledExpr>,
    right_matched: Vec<bool>,
    cur: Option<Tuple>,
    cur_matched: bool,
    cursor: Cursor,
    drain: usize,
    probing: bool,
    /// Candidate evaluations since the last deadline check. A join can evaluate its condition
    /// arbitrarily often without *producing* a row (selective nested loops), so the timeout must
    /// be checked against work done, not rows emitted.
    evals: usize,
    ctx: ExecContext,
}

impl JoinIter<'_> {
    /// The next candidate build-row index for the current probe row.
    fn advance(&mut self) -> Option<usize> {
        match &mut self.cursor {
            Cursor::Chain(pos) => {
                if *pos == CHAIN_END {
                    return None;
                }
                let i = *pos as usize;
                let JoinMode::Hash { next, .. } = &self.mode else {
                    unreachable!("chain cursor implies hash mode");
                };
                *pos = next[i];
                Some(i)
            }
            Cursor::Index(pos) => {
                if *pos >= self.right.len() {
                    return None;
                }
                let i = *pos;
                *pos += 1;
                Some(i)
            }
        }
    }
}

impl Iterator for JoinIter<'_> {
    type Item = Result<Tuple, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.right_matched.is_empty() && !self.right.is_empty() {
            self.right_matched = vec![false; self.right.len()];
        }
        while self.probing {
            if self.cur.is_none() {
                match self.left.next() {
                    None => {
                        self.probing = false;
                        break;
                    }
                    Some(Err(e)) => return Some(Err(e)),
                    Some(Ok(t)) => {
                        self.cursor = self.mode.cursor_for(&t);
                        self.cur = Some(t);
                        self.cur_matched = false;
                    }
                }
            }
            while let Some(ri) = self.advance() {
                self.evals += 1;
                if self.evals & 0x3FF == 0 {
                    if let Err(e) = self.ctx.check_deadline() {
                        return Some(Err(e));
                    }
                }
                // `advance` only yields candidates while a current row is loaded.
                let Some(left_row) = self.cur.as_ref() else { break };
                let combined = left_row.concat(&self.right[ri]);
                let keep = match &self.filter {
                    Some(f) => match f.eval_predicate(&combined) {
                        Ok(keep) => keep,
                        Err(e) => return Some(Err(e)),
                    },
                    None => true,
                };
                if keep {
                    self.cur_matched = true;
                    self.right_matched[ri] = true;
                    return Some(Ok(combined));
                }
            }
            if let Some(left_row) = self.cur.take() {
                if !self.cur_matched
                    && matches!(self.kind, JoinKind::LeftOuter | JoinKind::FullOuter)
                {
                    return Some(Ok(left_row.concat(&Tuple::nulls(self.right_arity))));
                }
            }
        }
        // Drain unmatched build rows for right/full outer joins.
        if matches!(self.kind, JoinKind::RightOuter | JoinKind::FullOuter) {
            while self.drain < self.right.len() {
                let ri = self.drain;
                self.drain += 1;
                if !self.right_matched.get(ri).copied().unwrap_or(false) {
                    return Some(Ok(Tuple::nulls(self.left_arity).concat(&self.right[ri])));
                }
            }
        }
        None
    }
}

/// Build a hash key for a row; `None` when a non-null-safe key column is NULL or NaN (such rows
/// cannot match under SQL equality — see [`hash_joinable`]).
pub(crate) fn join_key(
    row: &Tuple,
    keys: &[EquiKey],
    index_of: impl Fn(&EquiKey) -> usize,
    null_safe: impl Fn(&EquiKey) -> bool,
) -> Option<Tuple> {
    let mut values = Vec::with_capacity(keys.len());
    for k in keys {
        let v = row.get(index_of(k))?.clone();
        if !hash_joinable(&v, null_safe(k)) {
            return None;
        }
        values.push(v);
    }
    Some(Tuple::new(values))
}

pub(crate) fn dedupe(rows: Vec<Tuple>) -> Vec<Tuple> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for row in rows {
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    out
}

/// Aggregate accumulator for one aggregate expression within one group.
#[derive(Debug, Clone)]
pub(crate) enum Accumulator {
    Count { count: i64, distinct: Option<std::collections::HashSet<Value>> },
    Sum { sum: Option<Value>, distinct: Option<std::collections::HashSet<Value>> },
    Avg { sum: f64, count: i64, distinct: Option<std::collections::HashSet<Value>> },
    Min { min: Option<Value> },
    Max { max: Option<Value> },
}

impl Accumulator {
    pub(crate) fn new(agg: &perm_algebra::AggregateExpr) -> Accumulator {
        use perm_algebra::AggregateFunction;
        let distinct = agg.distinct.then(std::collections::HashSet::new);
        match agg.func {
            AggregateFunction::Count => Accumulator::Count { count: 0, distinct },
            AggregateFunction::Sum => Accumulator::Sum { sum: None, distinct },
            AggregateFunction::Avg => Accumulator::Avg { sum: 0.0, count: 0, distinct },
            AggregateFunction::Min => Accumulator::Min { min: None },
            AggregateFunction::Max => Accumulator::Max { max: None },
        }
    }

    pub(crate) fn update(&mut self, value: Option<Value>) -> Result<(), ExecError> {
        match self {
            Accumulator::Count { count, distinct } => match value {
                // COUNT(*): every row counts.
                None => *count += 1,
                Some(v) if !v.is_null() => match distinct {
                    Some(set) => {
                        if set.insert(v) {
                            *count += 1;
                        }
                    }
                    None => *count += 1,
                },
                Some(_) => {}
            },
            Accumulator::Sum { sum, distinct } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    if let Some(set) = distinct {
                        if !set.insert(v.clone()) {
                            return Ok(());
                        }
                    }
                    *sum = Some(match sum.take() {
                        Some(acc) => acc.add(&v)?,
                        None => v,
                    });
                }
            }
            Accumulator::Avg { sum, count, distinct } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    if let Some(set) = distinct {
                        if !set.insert(v.clone()) {
                            return Ok(());
                        }
                    }
                    if let Some(x) = v.as_f64() {
                        *sum += x;
                        *count += 1;
                    }
                }
            }
            Accumulator::Min { min } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    let replace = match min {
                        Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Less),
                        None => true,
                    };
                    if replace {
                        *min = Some(v);
                    }
                }
            }
            Accumulator::Max { max } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    let replace = match max {
                        Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Greater),
                        None => true,
                    };
                    if replace {
                        *max = Some(v);
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Accumulator::Count { count, .. } => Value::Int(count),
            Accumulator::Sum { sum, .. } => sum.unwrap_or(Value::Null),
            Accumulator::Avg { sum, count, .. } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            Accumulator::Min { min } => min.unwrap_or(Value::Null),
            Accumulator::Max { max } => max.unwrap_or(Value::Null),
        }
    }
}

/// Hash aggregation, consuming the input stream row by row (grouping state is the only
/// materialization).
fn aggregate_stream(
    input: TupleIter<'_>,
    group_by: &[CompiledExpr],
    aggregates: &[CompiledAggregate],
) -> Result<Vec<Tuple>, ExecError> {
    // Group keys in first-seen order so results are deterministic.
    let mut order: Vec<Tuple> = Vec::new();
    let mut groups: HashMap<Tuple, Vec<Accumulator>> = HashMap::new();
    let mut saw_rows = false;

    for row in input {
        let row = row?;
        saw_rows = true;
        let mut key_values = Vec::with_capacity(group_by.len());
        for e in group_by {
            key_values.push(e.eval(&row)?);
        }
        let key = Tuple::new(key_values);
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                order.push(key.clone());
                groups.entry(key).or_insert_with(|| {
                    aggregates.iter().map(|a| Accumulator::new(&a.spec)).collect()
                })
            }
        };
        for (agg, acc) in aggregates.iter().zip(accs.iter_mut()) {
            let value = match &agg.arg {
                Some(e) => Some(e.eval(&row)?),
                None => None,
            };
            acc.update(value)?;
        }
    }

    // A global aggregation (no GROUP BY) over an empty input still yields one row.
    if group_by.is_empty() && !saw_rows {
        let accs: Vec<Accumulator> = aggregates.iter().map(|a| Accumulator::new(&a.spec)).collect();
        let values: Vec<Value> = accs.into_iter().map(Accumulator::finish).collect();
        return Ok(vec![Tuple::new(values)]);
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        // `order` records exactly the keys inserted into `groups`.
        let Some(accs) = groups.remove(&key) else { continue };
        let mut values = key.into_values();
        values.extend(accs.into_iter().map(Accumulator::finish));
        out.push(Tuple::new(values));
    }
    Ok(out)
}

pub(crate) fn set_operation(
    left: Vec<Tuple>,
    right: Vec<Tuple>,
    kind: SetOpKind,
    semantics: SetSemantics,
) -> Vec<Tuple> {
    match (kind, semantics) {
        (SetOpKind::Union, SetSemantics::Bag) => {
            let mut out = left;
            out.extend(right);
            out
        }
        (SetOpKind::Union, SetSemantics::Set) => {
            let mut out = left;
            out.extend(right);
            dedupe(out)
        }
        (SetOpKind::Intersect, semantics) => {
            let right_counts = counts(right);
            match semantics {
                SetSemantics::Bag => {
                    // Multiplicity is min(n, m): emit a left occurrence while right credit remains.
                    let mut remaining = right_counts;
                    let mut out = Vec::new();
                    for t in left {
                        if let Some(c) = remaining.get_mut(&t) {
                            if *c > 0 {
                                *c -= 1;
                                out.push(t);
                            }
                        }
                    }
                    out
                }
                SetSemantics::Set => {
                    let left_unique = dedupe(left);
                    left_unique.into_iter().filter(|t| right_counts.contains_key(t)).collect()
                }
            }
        }
        (SetOpKind::Difference, SetSemantics::Bag) => {
            // Multiplicity is n - m.
            let mut credits = counts(right);
            let mut out = Vec::new();
            for t in left {
                match credits.get_mut(&t) {
                    Some(c) if *c > 0 => *c -= 1,
                    _ => out.push(t),
                }
            }
            out
        }
        (SetOpKind::Difference, SetSemantics::Set) => {
            let right_set: std::collections::HashSet<Tuple> = right.into_iter().collect();
            dedupe(left).into_iter().filter(|t| !right_set.contains(t)).collect()
        }
    }
}

fn counts(rows: Vec<Tuple>) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in rows {
        *m.entry(t).or_insert(0) += 1;
    }
    m
}

/// Sort rows by pre-compiled keys.
///
/// Keys are evaluated once per row into *key columns*, the permutation is found with
/// `sort_unstable_by` over row indices (bag semantics — tie order is unspecified) and applied
/// by moving rows into place, so no row is ever cloned.
fn sort_rows(rows: &mut Vec<Tuple>, keys: &[(CompiledExpr, SortOrder)]) -> Result<(), ExecError> {
    let mut key_cols: Vec<Vec<Value>> = Vec::with_capacity(keys.len());
    for (e, _) in keys {
        let mut col = Vec::with_capacity(rows.len());
        for row in rows.iter() {
            col.push(e.eval(row)?);
        }
        key_cols.push(col);
    }
    let mut permutation: Vec<u32> = (0..rows.len() as u32).collect();
    permutation.sort_unstable_by(|&a, &b| {
        for (idx, (_, order)) in keys.iter().enumerate() {
            let ord = key_cols[idx][a as usize].cmp(&key_cols[idx][b as usize]);
            let ord = match order {
                SortOrder::Ascending => ord,
                SortOrder::Descending => ord.reverse(),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut sorted = Vec::with_capacity(rows.len());
    for &source in &permutation {
        sorted.push(std::mem::take(&mut rows[source as usize]));
    }
    *rows = sorted;
    Ok(())
}

/// Convenience: execute a plan against a catalog with default options.
pub fn execute_plan(catalog: &Catalog, plan: &LogicalPlan) -> Result<Relation, ExecError> {
    Executor::new(catalog.clone()).execute(plan)
}

/// Build the schema a plan's execution result will carry (re-exported for callers that only need
/// the schema without running the query).
pub fn output_schema(plan: &LogicalPlan) -> Schema {
    plan.schema()
}

/// Convenience for tests and the benchmark harness: execute with limits.
pub fn execute_plan_with_options(
    catalog: &Catalog,
    plan: &LogicalPlan,
    options: ExecOptions,
) -> Result<Relation, ExecError> {
    Executor::with_options(catalog.clone(), options).execute(plan)
}

/// Helpers shared by unit tests across this crate.
#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use perm_algebra::{tuple, DataType};

    /// The example database of the paper's Figure 2: shop, sales and items.
    pub fn paper_example_catalog() -> Catalog {
        let catalog = Catalog::new();
        let shop = Relation::new(
            Schema::new(vec![
                perm_algebra::Attribute::qualified("shop", "name", DataType::Text),
                perm_algebra::Attribute::qualified("shop", "numempl", DataType::Int),
            ]),
            vec![tuple!["Merdies", 3], tuple!["Joba", 14]],
        )
        .unwrap();
        let sales = Relation::new(
            Schema::new(vec![
                perm_algebra::Attribute::qualified("sales", "sname", DataType::Text),
                perm_algebra::Attribute::qualified("sales", "itemid", DataType::Int),
            ]),
            vec![
                tuple!["Merdies", 1],
                tuple!["Merdies", 2],
                tuple!["Merdies", 2],
                tuple!["Joba", 3],
                tuple!["Joba", 3],
            ],
        )
        .unwrap();
        let items = Relation::new(
            Schema::new(vec![
                perm_algebra::Attribute::qualified("items", "id", DataType::Int),
                perm_algebra::Attribute::qualified("items", "price", DataType::Int),
            ]),
            vec![tuple![1, 100], tuple![2, 10], tuple![3, 25]],
        )
        .unwrap();
        catalog.create_table_with_data("shop", shop).unwrap();
        catalog.create_table_with_data("sales", sales).unwrap();
        catalog.create_table_with_data("items", items).unwrap();
        catalog
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::paper_example_catalog;
    use super::*;
    use perm_algebra::{
        tuple, AggregateExpr, AggregateFunction, Attribute, DataType, PlanBuilder, SortKey,
        SublinkKind,
    };

    fn scan(catalog: &Catalog, table: &str, ref_id: usize) -> PlanBuilder {
        PlanBuilder::scan(table, catalog.table_schema(table).unwrap(), ref_id)
    }

    #[test]
    fn scan_base_relation() {
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "shop", 0).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.schema().attribute_names(), vec!["name", "numempl"]);
    }

    #[test]
    fn selection_filters_rows() {
        let catalog = paper_example_catalog();
        let shop = scan(&catalog, "shop", 0);
        let pred = shop.col("numempl").unwrap().eq(ScalarExpr::literal(3i64));
        let plan = shop.filter(pred).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.tuples()[0], tuple!["Merdies", 3]);
    }

    #[test]
    fn projection_computes_expressions_and_distinct() {
        let catalog = paper_example_catalog();
        let sales = scan(&catalog, "sales", 0);
        let sname = sales.col("sname").unwrap();
        let plan = sales.clone().project(vec![(sname.clone(), "sname".into())]).build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 5);
        let plan = sales.project_distinct(vec![(sname, "sname".into())]).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2);
    }

    #[test]
    fn cross_product_multiplies_cardinalities() {
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "shop", 0).cross_join(scan(&catalog, "items", 1)).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2 * 3);
        assert_eq!(result.arity(), 4);
    }

    #[test]
    fn hash_join_equi_condition() {
        let catalog = paper_example_catalog();
        let shop = scan(&catalog, "shop", 0);
        let sales = scan(&catalog, "sales", 1);
        // shop.name = sales.sname  (columns 0 and 2 in the combined schema)
        let cond = ScalarExpr::column(0, "name").eq(ScalarExpr::column(2, "sname"));
        let plan = shop.join(sales, JoinKind::Inner, Some(cond)).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 5);
    }

    #[test]
    fn hash_join_output_order_matches_nested_loop() {
        // The bucket chains of the hash join must preserve build-row order so that hash and
        // nested-loop joins produce identical sequences, not just identical bags.
        let catalog = paper_example_catalog();
        let cond = ScalarExpr::column(0, "name").eq(ScalarExpr::column(2, "sname"));
        let hash_plan = scan(&catalog, "shop", 0)
            .join(scan(&catalog, "sales", 1), JoinKind::Inner, Some(cond.clone()))
            .build();
        let nl_plan =
            scan(&catalog, "shop", 0).cross_join(scan(&catalog, "sales", 1)).filter(cond).build();
        let hash = execute_plan(&catalog, &hash_plan).unwrap();
        let nl = execute_plan(&catalog, &nl_plan).unwrap();
        assert_eq!(hash.tuples(), nl.tuples());
    }

    #[test]
    fn left_outer_join_pads_unmatched() {
        let catalog = Catalog::new();
        let left = Relation::new(
            Schema::from_pairs(&[("id", DataType::Int)]),
            vec![tuple![1], tuple![2], tuple![3]],
        )
        .unwrap();
        let right = Relation::new(
            Schema::from_pairs(&[("rid", DataType::Int), ("payload", DataType::Text)]),
            vec![tuple![1, "a"], tuple![1, "b"]],
        )
        .unwrap();
        catalog.create_table_with_data("l", left).unwrap();
        catalog.create_table_with_data("r", right).unwrap();
        let l = scan(&catalog, "l", 0);
        let r = scan(&catalog, "r", 1);
        let cond = ScalarExpr::column(0, "id").eq(ScalarExpr::column(1, "rid"));
        let plan = l.join(r, JoinKind::LeftOuter, Some(cond)).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        // id=1 matches twice, ids 2 and 3 are padded with NULLs.
        assert_eq!(result.num_rows(), 4);
        let padded: Vec<_> = result.tuples().iter().filter(|t| t[1].is_null()).collect();
        assert_eq!(padded.len(), 2);
    }

    #[test]
    fn full_outer_join_pads_both_sides() {
        let catalog = Catalog::new();
        catalog
            .create_table_with_data(
                "l",
                Relation::new(
                    Schema::from_pairs(&[("id", DataType::Int)]),
                    vec![tuple![1], tuple![2]],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data(
                "r",
                Relation::new(
                    Schema::from_pairs(&[("rid", DataType::Int)]),
                    vec![tuple![2], tuple![3]],
                )
                .unwrap(),
            )
            .unwrap();
        let cond = ScalarExpr::column(0, "id").eq(ScalarExpr::column(1, "rid"));
        let plan = scan(&catalog, "l", 0)
            .join(scan(&catalog, "r", 1), JoinKind::FullOuter, Some(cond))
            .build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 3);
    }

    #[test]
    fn join_nulls_do_not_match_under_eq_but_do_under_null_safe_eq() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let rows = vec![tuple![1], Tuple::new(vec![Value::Null])];
        catalog
            .create_table_with_data("a", Relation::new(schema.clone(), rows.clone()).unwrap())
            .unwrap();
        catalog.create_table_with_data("b", Relation::new(schema, rows).unwrap()).unwrap();
        let eq_cond = ScalarExpr::column(0, "k").eq(ScalarExpr::column(1, "k"));
        let plan = scan(&catalog, "a", 0)
            .join(scan(&catalog, "b", 1), JoinKind::Inner, Some(eq_cond))
            .build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 1);
        let ns_cond = ScalarExpr::column(0, "k").null_safe_eq(ScalarExpr::column(1, "k"));
        let plan = scan(&catalog, "a", 0)
            .join(scan(&catalog, "b", 1), JoinKind::Inner, Some(ns_cond))
            .build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 2);
    }

    #[test]
    fn aggregation_matches_paper_example_result() {
        // q_ex from the paper: total price per shop = {(Merdies, 120), (Joba, 50)}.
        let catalog = paper_example_catalog();
        let prod = scan(&catalog, "shop", 0)
            .cross_join(scan(&catalog, "sales", 1))
            .cross_join(scan(&catalog, "items", 2));
        let name = prod.col("shop.name").unwrap();
        let sname = prod.col("sales.sname").unwrap();
        let itemid = prod.col("sales.itemid").unwrap();
        let id = prod.col("items.id").unwrap();
        let price = prod.col("items.price").unwrap();
        let plan = prod
            .filter(name.clone().eq(sname).and(itemid.eq(id)))
            .aggregate(
                vec![(name, "name".into())],
                vec![(AggregateExpr::new(AggregateFunction::Sum, price), "sum_price".into())],
            )
            .build();
        let result = execute_plan(&catalog, &plan).unwrap();
        let sorted = result.sorted();
        assert_eq!(sorted.tuples(), &[tuple!["Joba", 50], tuple!["Merdies", 120]]);
    }

    #[test]
    fn aggregation_over_empty_input_without_groups_yields_one_row() {
        let catalog = Catalog::new();
        catalog.create_table("empty", Schema::from_pairs(&[("x", DataType::Int)])).unwrap();
        let t = scan(&catalog, "empty", 0);
        let x = t.col("x").unwrap();
        let plan = t
            .aggregate(
                vec![],
                vec![
                    (AggregateExpr::new(AggregateFunction::Sum, x.clone()), "s".into()),
                    (AggregateExpr::count_star(), "c".into()),
                    (AggregateExpr::new(AggregateFunction::Min, x), "m".into()),
                ],
            )
            .build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.tuples()[0], Tuple::new(vec![Value::Null, Value::Int(0), Value::Null]));
    }

    #[test]
    fn aggregation_functions_cover_count_avg_min_max_distinct() {
        let catalog = paper_example_catalog();
        let sales = scan(&catalog, "sales", 0);
        let itemid = sales.col("itemid").unwrap();
        let plan = sales
            .aggregate(
                vec![],
                vec![
                    (AggregateExpr::count_star(), "cnt".into()),
                    (AggregateExpr::new(AggregateFunction::Avg, itemid.clone()), "avg_item".into()),
                    (AggregateExpr::new(AggregateFunction::Min, itemid.clone()), "min_item".into()),
                    (AggregateExpr::new(AggregateFunction::Max, itemid.clone()), "max_item".into()),
                    (
                        AggregateExpr {
                            func: AggregateFunction::Count,
                            arg: Some(itemid),
                            distinct: true,
                        },
                        "distinct_items".into(),
                    ),
                ],
            )
            .build();
        let result = execute_plan(&catalog, &plan).unwrap();
        let row = &result.tuples()[0];
        assert_eq!(row[0], Value::Int(5));
        assert_eq!(row[1], Value::Float((1 + 2 + 2 + 3 + 3) as f64 / 5.0));
        assert_eq!(row[2], Value::Int(1));
        assert_eq!(row[3], Value::Int(3));
        assert_eq!(row[4], Value::Int(3));
    }

    #[test]
    fn set_operations_bag_and_set() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        catalog
            .create_table_with_data(
                "a",
                Relation::new(schema.clone(), vec![tuple![1], tuple![1], tuple![2]]).unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data("b", Relation::new(schema, vec![tuple![1], tuple![3]]).unwrap())
            .unwrap();
        let run = |kind, semantics| {
            let plan =
                scan(&catalog, "a", 0).set_op(scan(&catalog, "b", 1), kind, semantics).build();
            execute_plan(&catalog, &plan).unwrap().sorted()
        };
        assert_eq!(run(SetOpKind::Union, SetSemantics::Bag).num_rows(), 5);
        assert_eq!(run(SetOpKind::Union, SetSemantics::Set).num_rows(), 3);
        assert_eq!(run(SetOpKind::Intersect, SetSemantics::Bag).tuples(), &[tuple![1]]);
        assert_eq!(run(SetOpKind::Intersect, SetSemantics::Set).tuples(), &[tuple![1]]);
        assert_eq!(run(SetOpKind::Difference, SetSemantics::Bag).tuples(), &[tuple![1], tuple![2]]);
        assert_eq!(run(SetOpKind::Difference, SetSemantics::Set).tuples(), &[tuple![2]]);
    }

    #[test]
    fn sort_and_limit() {
        let catalog = paper_example_catalog();
        let items = scan(&catalog, "items", 0);
        let price = items.col("price").unwrap();
        let plan = items.sort(vec![SortKey::desc(price)]).limit(Some(2), 0).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.tuples()[0], tuple![1, 100]);
        assert_eq!(result.tuples()[1], tuple![3, 25]);
    }

    #[test]
    fn limit_with_offset() {
        let catalog = paper_example_catalog();
        let items = scan(&catalog, "items", 0);
        let id = items.col("id").unwrap();
        let plan = items.sort(vec![SortKey::asc(id)]).limit(Some(1), 1).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.tuples(), &[tuple![2, 10]]);
    }

    #[test]
    fn row_budget_aborts_large_results() {
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "sales", 0)
            .cross_join(scan(&catalog, "sales", 1))
            .cross_join(scan(&catalog, "sales", 2))
            .build();
        let options = ExecOptions::default().with_row_budget(20);
        let err = execute_plan_with_options(&catalog, &plan, options).unwrap_err();
        assert!(matches!(err, ExecError::RowBudgetExceeded { budget: 20 }));
    }

    #[test]
    fn limit_short_circuits_its_input() {
        // sales³ = 125 rows; a row budget of 20 would abort a materializing executor (and did,
        // before streaming — see `row_budget_aborts_large_results`). With a streaming LIMIT the
        // joins only ever produce the 5 rows that are pulled, so the budget is never hit.
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "sales", 0)
            .cross_join(scan(&catalog, "sales", 1))
            .cross_join(scan(&catalog, "sales", 2))
            .limit(Some(5), 0)
            .build();
        let options = ExecOptions::default().with_row_budget(20);
        let result = execute_plan_with_options(&catalog, &plan, options).unwrap();
        assert_eq!(result.num_rows(), 5);
    }

    #[test]
    fn limit_zero_pulls_nothing() {
        // The build (right) side of a join always materializes — it is a pipeline breaker — so
        // the budget must cover its 5 rows; the probe side and the 25-row cross product are
        // never produced because LIMIT 0 pulls nothing.
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "sales", 0)
            .cross_join(scan(&catalog, "sales", 1))
            .limit(Some(0), 0)
            .build();
        let options = ExecOptions::default().with_row_budget(5);
        let result = execute_plan_with_options(&catalog, &plan, options).unwrap();
        assert_eq!(result.num_rows(), 0);
    }

    #[test]
    fn values_plan_executes() {
        let catalog = Catalog::new();
        let plan = PlanBuilder::values(
            Schema::new(vec![Attribute::new("x", DataType::Int)]),
            vec![tuple![1], tuple![2]],
        )
        .build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 2);
    }

    #[test]
    fn subquery_alias_is_transparent_to_execution() {
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "shop", 0).alias("s").build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.schema().resolve("s.name").unwrap(), 0);
    }

    fn sublink(kind: SublinkKind, operand: Option<ScalarExpr>, plan: LogicalPlan) -> ScalarExpr {
        ScalarExpr::Sublink {
            kind,
            operand: operand.map(Box::new),
            negated: false,
            plan: std::sync::Arc::new(plan),
        }
    }

    #[test]
    fn scalar_sublink_with_multiple_rows_is_an_error() {
        let catalog = paper_example_catalog();
        // items has 3 rows: using it as a scalar subquery must fail, not silently take row 1.
        let sub = scan(&catalog, "items", 1).build();
        let shop = scan(&catalog, "shop", 0);
        let pred = ScalarExpr::column(1, "numempl").eq(sublink(SublinkKind::Scalar, None, sub));
        let plan = shop.filter(pred).build();
        let err = execute_plan(&catalog, &plan).unwrap_err();
        assert!(matches!(err, ExecError::ScalarSubqueryTooManyRows));
        // The reference path agrees.
        let err = Executor::new(catalog.clone()).execute_reference(&plan).unwrap_err();
        assert!(matches!(err, ExecError::ScalarSubqueryTooManyRows));
    }

    #[test]
    fn scalar_sublink_single_row_and_empty() {
        let catalog = paper_example_catalog();
        let items = scan(&catalog, "items", 1);
        let price = items.col("price").unwrap();
        let one_row = items
            .clone()
            .aggregate(
                vec![],
                vec![(AggregateExpr::new(AggregateFunction::Max, price), "m".into())],
            )
            .build();
        let shop = scan(&catalog, "shop", 0);
        let pred = sublink(SublinkKind::Scalar, None, one_row).eq(ScalarExpr::literal(100i64));
        let plan = shop.clone().filter(pred).build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 2);
        // An empty scalar subquery evaluates to NULL: the predicate filters everything.
        let empty = scan(&catalog, "items", 1)
            .filter(ScalarExpr::literal(false))
            .project(vec![(ScalarExpr::column(0, "id"), "id".into())])
            .build();
        let pred = sublink(SublinkKind::Scalar, None, empty).eq(ScalarExpr::literal(1i64));
        let plan = shop.filter(pred).build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 0);
    }

    #[test]
    fn in_subquery_resolves_to_hash_set_semantics() {
        let catalog = paper_example_catalog();
        let ids = scan(&catalog, "items", 1)
            .project(vec![(ScalarExpr::column(0, "id"), "id".into())])
            .build();
        let sales = scan(&catalog, "sales", 0);
        let pred = sublink(SublinkKind::InSubquery, Some(ScalarExpr::column(1, "itemid")), ids);
        let plan = sales.filter(pred).build();
        // All 5 sales reference an existing item id.
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 5);
    }

    #[test]
    fn exists_sublink_short_circuits() {
        let catalog = paper_example_catalog();
        // EXISTS over a cross join that would exceed the row budget if fully executed: the
        // streaming compiler pulls a single row, so the budget is never charged.
        let big = scan(&catalog, "sales", 1).cross_join(scan(&catalog, "sales", 2)).build();
        let shop = scan(&catalog, "shop", 0);
        let plan = shop.filter(sublink(SublinkKind::Exists, None, big)).build();
        let options = ExecOptions::default().with_row_budget(10);
        let result = execute_plan_with_options(&catalog, &plan, options).unwrap();
        assert_eq!(result.num_rows(), 2);
    }

    #[test]
    fn timeout_fires_inside_selective_nested_loop_joins() {
        // A nested-loop join with an always-false condition produces no rows, so output-side
        // guards never tick; the deadline must still fire from inside the probe loop.
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let rows: Vec<Tuple> = (0..100).map(|i| tuple![i]).collect();
        catalog
            .create_table_with_data("a", Relation::from_parts(schema.clone(), rows.clone()))
            .unwrap();
        catalog.create_table_with_data("b", Relation::from_parts(schema, rows)).unwrap();
        // Non-equi condition so the join cannot use the hash path: x + x' < 0 is always false.
        let cond = ScalarExpr::binary(
            BinaryOperator::Lt,
            ScalarExpr::binary(
                BinaryOperator::Add,
                ScalarExpr::column(0, "x"),
                ScalarExpr::column(1, "x"),
            ),
            ScalarExpr::literal(-1i64),
        );
        let plan = scan(&catalog, "a", 0)
            .join(scan(&catalog, "b", 1), JoinKind::Inner, Some(cond))
            .build();
        // Both inputs are under 256 rows, so no scan-side deadline check happens either; only
        // the join's per-evaluation check can notice the already-expired deadline.
        let options = ExecOptions::default().with_timeout(Duration::from_millis(0));
        let err = execute_plan_with_options(&catalog, &plan, options).unwrap_err();
        assert!(matches!(err, ExecError::Timeout { .. }), "expected a timeout, got {err:?}");
    }

    #[test]
    fn in_set_incomparable_types_yield_null_like_the_reference() {
        // A Date needle against Text candidates: sql_eq is unknown (None), so `IN` must be
        // NULL (filtering the row), not FALSE — and NOT IN must also be NULL, not TRUE.
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("d", DataType::Date)]);
        catalog
            .create_table_with_data(
                "t",
                Relation::from_parts(schema, vec![Tuple::new(vec![Value::Date(10)])]),
            )
            .unwrap();
        for negated in [false, true] {
            let t = scan(&catalog, "t", 0);
            let pred = ScalarExpr::InList {
                expr: Box::new(ScalarExpr::column(0, "d")),
                list: vec![ScalarExpr::literal("ten")],
                negated,
            };
            let plan = t.filter(pred).build();
            let executor = Executor::new(catalog.clone());
            let streaming = executor.execute(&plan).unwrap();
            let reference = executor.execute_reference(&plan).unwrap();
            assert_eq!(streaming.num_rows(), 0, "negated={negated}: NULL predicate keeps no rows");
            assert!(streaming.bag_eq(&reference), "negated={negated}");
        }
        // A NaN needle compares unknown against every candidate: IN and NOT IN are both NULL
        // (row dropped) whenever any candidate exists, matching the linear `sql_eq` path — the
        // grouping-equality hash set would otherwise match NaN to itself.
        let nan_table = Relation::from_parts(
            Schema::from_pairs(&[("f", DataType::Float)]),
            vec![Tuple::new(vec![Value::Float(f64::NAN)])],
        );
        catalog.create_table_with_data("nan", nan_table).unwrap();
        for negated in [false, true] {
            let t = scan(&catalog, "nan", 0);
            let pred = ScalarExpr::InList {
                expr: Box::new(ScalarExpr::column(0, "f")),
                list: vec![ScalarExpr::literal(1.0f64), ScalarExpr::literal(2.0f64)],
                negated,
            };
            let plan = t.filter(pred).build();
            let executor = Executor::new(catalog.clone());
            let result = executor.execute(&plan).unwrap();
            let reference = executor.execute_reference(&plan).unwrap();
            assert_eq!(result.num_rows(), 0, "NaN needle, negated={negated}");
            assert!(result.bag_eq(&reference), "NaN needle, negated={negated}");
        }

        // Dates compare numerically against the other numeric types (days since epoch): an Int
        // candidate matches exactly, a fractional Float candidate is a definite non-match (so
        // NOT IN keeps the row rather than yielding NULL).
        for (candidate, negated, expect_rows) in [
            (ScalarExpr::literal(10i64), false, 1),
            (ScalarExpr::literal(10.0f64), false, 1),
            (ScalarExpr::literal(10.5f64), false, 0),
            (ScalarExpr::literal(10.5f64), true, 1),
        ] {
            let t = scan(&catalog, "t", 0);
            let pred = ScalarExpr::InList {
                expr: Box::new(ScalarExpr::column(0, "d")),
                list: vec![candidate.clone()],
                negated,
            };
            let plan = t.filter(pred).build();
            assert_eq!(
                execute_plan(&catalog, &plan).unwrap().num_rows(),
                expect_rows,
                "candidate={candidate:?} negated={negated}"
            );
        }
    }

    #[test]
    fn streaming_matches_reference_on_the_paper_example() {
        let catalog = paper_example_catalog();
        let prod = scan(&catalog, "shop", 0)
            .cross_join(scan(&catalog, "sales", 1))
            .cross_join(scan(&catalog, "items", 2));
        let name = prod.col("shop.name").unwrap();
        let sname = prod.col("sales.sname").unwrap();
        let plan = prod.filter(name.eq(sname)).build();
        let executor = Executor::new(catalog);
        let streaming = executor.execute(&plan).unwrap();
        let reference = executor.execute_reference(&plan).unwrap();
        assert!(streaming.bag_eq(&reference));
    }
}
