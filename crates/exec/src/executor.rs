//! The query executor: evaluates logical plans against a catalog, producing materialised
//! relations.
//!
//! The executor is a straightforward materialising evaluator (every operator produces its full
//! result before the parent consumes it) with hash-based implementations of the expensive
//! operators: equi-joins, aggregation, DISTINCT and set operations. This mirrors what the
//! rewritten provenance queries of the paper rely on from PostgreSQL: the extra joins introduced
//! by rewrite rules R5–R9 are equi-joins on grouping / original attributes and therefore run as
//! hash joins.
//!
//! Execution can be bounded with [`ExecOptions`] (row budget / wall-clock timeout) to reproduce
//! the paper's behaviour of stopping runaway provenance queries (black cells in Figures 10/11).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use perm_algebra::{
    AggregateExpr, AggregateFunction, BinaryOperator, JoinKind, LogicalPlan, ScalarExpr, Schema,
    SetOpKind, SetSemantics, SortKey, SortOrder, Tuple, Value,
};
use perm_storage::{Catalog, Relation};

use crate::error::ExecError;
use crate::eval::{evaluate, evaluate_predicate};

/// Resource limits applied to a single plan execution.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Maximum number of intermediate/output rows any single operator may produce.
    pub row_budget: Option<usize>,
    /// Wall-clock timeout.
    pub timeout: Option<Duration>,
}

impl ExecOptions {
    /// No limits.
    pub fn unlimited() -> ExecOptions {
        ExecOptions::default()
    }

    /// Limit the number of rows any operator may produce.
    pub fn with_row_budget(mut self, budget: usize) -> ExecOptions {
        self.row_budget = Some(budget);
        self
    }

    /// Limit wall-clock execution time.
    pub fn with_timeout(mut self, timeout: Duration) -> ExecOptions {
        self.timeout = Some(timeout);
        self
    }
}

/// Executes logical plans against a [`Catalog`].
#[derive(Debug, Clone)]
pub struct Executor {
    catalog: Catalog,
    options: ExecOptions,
}

struct ExecContext {
    options: ExecOptions,
    start: Instant,
}

impl ExecContext {
    fn check(&self, rows: usize) -> Result<(), ExecError> {
        if let Some(budget) = self.options.row_budget {
            if rows > budget {
                return Err(ExecError::RowBudgetExceeded { budget });
            }
        }
        if let Some(timeout) = self.options.timeout {
            if self.start.elapsed() > timeout {
                return Err(ExecError::Timeout { millis: timeout.as_millis() as u64 });
            }
        }
        Ok(())
    }
}

impl Executor {
    /// Create an executor without resource limits.
    pub fn new(catalog: Catalog) -> Executor {
        Executor { catalog, options: ExecOptions::default() }
    }

    /// Create an executor with resource limits.
    pub fn with_options(catalog: Catalog, options: ExecOptions) -> Executor {
        Executor { catalog, options }
    }

    /// The catalog this executor reads from.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Execute a plan, returning the materialised result.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<Relation, ExecError> {
        let ctx = ExecContext { options: self.options.clone(), start: Instant::now() };
        let tuples = self.run(plan, &ctx)?;
        Ok(Relation::from_parts(plan.schema(), tuples))
    }

    fn run(&self, plan: &LogicalPlan, ctx: &ExecContext) -> Result<Vec<Tuple>, ExecError> {
        let out = match plan {
            LogicalPlan::BaseRelation { name, schema, .. } => {
                let table = self.catalog.table(name)?;
                if table.schema().arity() != schema.arity() {
                    return Err(ExecError::Internal(format!(
                        "stored table '{name}' has arity {} but the plan expects {}",
                        table.schema().arity(),
                        schema.arity()
                    )));
                }
                table.into_tuples()
            }
            LogicalPlan::Values { rows, .. } => rows.clone(),
            LogicalPlan::Projection { input, exprs, distinct } => {
                let rows = self.run(input, ctx)?;
                let exprs: Vec<(ScalarExpr, String)> = exprs
                    .iter()
                    .map(|(e, n)| Ok((self.resolve_sublinks(e, ctx)?, n.clone())))
                    .collect::<Result<_, ExecError>>()?;
                let mut out = Vec::with_capacity(rows.len());
                for row in &rows {
                    let mut values = Vec::with_capacity(exprs.len());
                    for (e, _) in &exprs {
                        values.push(evaluate(e, row)?);
                    }
                    out.push(Tuple::new(values));
                }
                if *distinct {
                    out = dedupe(out);
                }
                out
            }
            LogicalPlan::Selection { input, predicate } => {
                let rows = self.run(input, ctx)?;
                let predicate = self.resolve_sublinks(predicate, ctx)?;
                let mut out = Vec::new();
                for row in rows {
                    if evaluate_predicate(&predicate, &row)? {
                        out.push(row);
                    }
                }
                out
            }
            LogicalPlan::Join { left, right, kind, condition } => {
                let left_rows = self.run(left, ctx)?;
                let right_rows = self.run(right, ctx)?;
                let condition =
                    condition.as_ref().map(|c| self.resolve_sublinks(c, ctx)).transpose()?;
                self.join(
                    left_rows,
                    right_rows,
                    left.schema().arity(),
                    right.schema().arity(),
                    *kind,
                    condition.as_ref(),
                    ctx,
                )?
            }
            LogicalPlan::Aggregation { input, group_by, aggregates } => {
                let rows = self.run(input, ctx)?;
                let group_by: Vec<(ScalarExpr, String)> = group_by
                    .iter()
                    .map(|(e, n)| Ok((self.resolve_sublinks(e, ctx)?, n.clone())))
                    .collect::<Result<_, ExecError>>()?;
                let aggregates: Vec<(AggregateExpr, String)> = aggregates
                    .iter()
                    .map(|(a, n)| {
                        let arg =
                            a.arg.as_ref().map(|e| self.resolve_sublinks(e, ctx)).transpose()?;
                        Ok((AggregateExpr { func: a.func, arg, distinct: a.distinct }, n.clone()))
                    })
                    .collect::<Result<_, ExecError>>()?;
                aggregate(rows, &group_by, &aggregates)?
            }
            LogicalPlan::SetOp { left, right, kind, semantics } => {
                let left_rows = self.run(left, ctx)?;
                let right_rows = self.run(right, ctx)?;
                set_operation(left_rows, right_rows, *kind, *semantics)
            }
            LogicalPlan::Sort { input, keys } => {
                let mut rows = self.run(input, ctx)?;
                sort_rows(&mut rows, keys)?;
                rows
            }
            LogicalPlan::Limit { input, limit, offset } => {
                let rows = self.run(input, ctx)?;
                rows.into_iter().skip(*offset).take(limit.unwrap_or(usize::MAX)).collect()
            }
            LogicalPlan::SubqueryAlias { input, .. } => self.run(input, ctx)?,
            LogicalPlan::ProvenanceAnnotation { input, .. } => self.run(input, ctx)?,
        };
        ctx.check(out.len())?;
        Ok(out)
    }

    /// Replace uncorrelated sublinks with their evaluated results: `EXISTS` becomes a boolean
    /// literal, a scalar subquery becomes a value literal, and `IN (SELECT ...)` becomes an
    /// `IN (value, ...)` list. Each subquery plan is executed exactly once.
    fn resolve_sublinks(
        &self,
        expr: &ScalarExpr,
        ctx: &ExecContext,
    ) -> Result<ScalarExpr, ExecError> {
        if !expr.has_sublink() {
            return Ok(expr.clone());
        }
        let mut error: Option<ExecError> = None;
        let resolved = expr.transform(&mut |e| {
            if error.is_some() {
                return e;
            }
            let ScalarExpr::Sublink { kind, operand, negated, plan } = &e else {
                return e;
            };
            match self.run(plan, ctx) {
                Ok(rows) => match kind {
                    perm_algebra::SublinkKind::Exists => {
                        ScalarExpr::Literal(Value::Bool(rows.is_empty() == *negated))
                    }
                    perm_algebra::SublinkKind::Scalar => {
                        let value =
                            rows.first().and_then(|t| t.get(0)).cloned().unwrap_or(Value::Null);
                        ScalarExpr::Literal(value)
                    }
                    perm_algebra::SublinkKind::InSubquery => {
                        let operand = match operand {
                            Some(op) => (**op).clone(),
                            None => {
                                error = Some(ExecError::Internal(
                                    "IN sublink without an operand".into(),
                                ));
                                return e;
                            }
                        };
                        let list = rows
                            .iter()
                            .map(|t| ScalarExpr::Literal(t.get(0).cloned().unwrap_or(Value::Null)))
                            .collect();
                        ScalarExpr::InList { expr: Box::new(operand), list, negated: *negated }
                    }
                },
                Err(err) => {
                    error = Some(err);
                    e
                }
            }
        });
        match error {
            Some(err) => Err(err),
            None => Ok(resolved),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        left_rows: Vec<Tuple>,
        right_rows: Vec<Tuple>,
        left_arity: usize,
        right_arity: usize,
        kind: JoinKind,
        condition: Option<&ScalarExpr>,
        ctx: &ExecContext,
    ) -> Result<Vec<Tuple>, ExecError> {
        let (equi_keys, residual) = match condition {
            Some(c) => split_equi_join_condition(c, left_arity),
            None => (Vec::new(), Vec::new()),
        };
        let residual =
            if residual.is_empty() { None } else { Some(ScalarExpr::conjunction(residual)) };

        let mut out: Vec<Tuple> = Vec::new();
        let mut right_matched = vec![false; right_rows.len()];

        if !equi_keys.is_empty() {
            // Hash join: build on the right, probe from the left.
            let mut table: HashMap<Tuple, Vec<usize>> = HashMap::new();
            for (i, row) in right_rows.iter().enumerate() {
                if let Some(key) =
                    join_key(row, &equi_keys, |k| k.right - left_arity, |k| k.null_safe)
                {
                    table.entry(key).or_default().push(i);
                }
            }
            for left_row in &left_rows {
                let mut matched = false;
                if let Some(key) = join_key(left_row, &equi_keys, |k| k.left, |k| k.null_safe) {
                    if let Some(candidates) = table.get(&key) {
                        for &ri in candidates {
                            let combined = left_row.concat(&right_rows[ri]);
                            let keep = match &residual {
                                Some(r) => evaluate_predicate(r, &combined)?,
                                None => true,
                            };
                            if keep {
                                matched = true;
                                right_matched[ri] = true;
                                out.push(combined);
                            }
                        }
                    }
                }
                if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
                    out.push(left_row.concat(&Tuple::nulls(right_arity)));
                }
                ctx.check(out.len())?;
            }
        } else {
            // Nested-loop join with an arbitrary condition (or cross product).
            for left_row in &left_rows {
                let mut matched = false;
                for (ri, right_row) in right_rows.iter().enumerate() {
                    let combined = left_row.concat(right_row);
                    let keep = match condition {
                        Some(c) => evaluate_predicate(c, &combined)?,
                        None => true,
                    };
                    if keep {
                        matched = true;
                        right_matched[ri] = true;
                        out.push(combined);
                    }
                }
                if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
                    out.push(left_row.concat(&Tuple::nulls(right_arity)));
                }
                ctx.check(out.len())?;
            }
        }

        if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
            for (ri, matched) in right_matched.iter().enumerate() {
                if !matched {
                    out.push(Tuple::nulls(left_arity).concat(&right_rows[ri]));
                }
            }
        }
        ctx.check(out.len())?;
        Ok(out)
    }
}

/// One equi-join key pair extracted from a join condition.
#[derive(Debug, Clone, Copy)]
struct EquiKey {
    /// Column index on the left input.
    left: usize,
    /// Column index in the *combined* schema (>= left arity).
    right: usize,
    /// Whether the comparison is null-safe (`IS NOT DISTINCT FROM`).
    null_safe: bool,
}

/// Split a join condition into hashable equi-key pairs and a residual predicate.
fn split_equi_join_condition(
    condition: &ScalarExpr,
    left_arity: usize,
) -> (Vec<EquiKey>, Vec<ScalarExpr>) {
    let mut keys = Vec::new();
    let mut residual = Vec::new();
    for conjunct in condition.split_conjunction() {
        if let ScalarExpr::BinaryOp { op, left, right } = conjunct {
            let null_safe = *op == BinaryOperator::IsNotDistinctFrom;
            if (*op == BinaryOperator::Eq || null_safe)
                && left.as_column().is_some()
                && right.as_column().is_some()
            {
                let a = left.as_column().expect("checked");
                let b = right.as_column().expect("checked");
                let (l, r) = if a < left_arity && b >= left_arity {
                    (a, b)
                } else if b < left_arity && a >= left_arity {
                    (b, a)
                } else {
                    residual.push(conjunct.clone());
                    continue;
                };
                keys.push(EquiKey { left: l, right: r, null_safe });
                continue;
            }
        }
        residual.push(conjunct.clone());
    }
    (keys, residual)
}

/// Build a hash key for a row; `None` when a non-null-safe key column is NULL (such rows cannot
/// match under SQL equality).
fn join_key(
    row: &Tuple,
    keys: &[EquiKey],
    index_of: impl Fn(&EquiKey) -> usize,
    null_safe: impl Fn(&EquiKey) -> bool,
) -> Option<Tuple> {
    let mut values = Vec::with_capacity(keys.len());
    for k in keys {
        let v = row.get(index_of(k))?.clone();
        if v.is_null() && !null_safe(k) {
            return None;
        }
        values.push(v);
    }
    Some(Tuple::new(values))
}

fn dedupe(rows: Vec<Tuple>) -> Vec<Tuple> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for row in rows {
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    out
}

/// Aggregate accumulator for one aggregate expression within one group.
#[derive(Debug, Clone)]
enum Accumulator {
    Count { count: i64, distinct: Option<std::collections::HashSet<Value>> },
    Sum { sum: Option<Value>, distinct: Option<std::collections::HashSet<Value>> },
    Avg { sum: f64, count: i64, distinct: Option<std::collections::HashSet<Value>> },
    Min { min: Option<Value> },
    Max { max: Option<Value> },
}

impl Accumulator {
    fn new(agg: &AggregateExpr) -> Accumulator {
        let distinct = agg.distinct.then(std::collections::HashSet::new);
        match agg.func {
            AggregateFunction::Count => Accumulator::Count { count: 0, distinct },
            AggregateFunction::Sum => Accumulator::Sum { sum: None, distinct },
            AggregateFunction::Avg => Accumulator::Avg { sum: 0.0, count: 0, distinct },
            AggregateFunction::Min => Accumulator::Min { min: None },
            AggregateFunction::Max => Accumulator::Max { max: None },
        }
    }

    fn update(&mut self, value: Option<Value>) -> Result<(), ExecError> {
        match self {
            Accumulator::Count { count, distinct } => match value {
                // COUNT(*): every row counts.
                None => *count += 1,
                Some(v) if !v.is_null() => match distinct {
                    Some(set) => {
                        if set.insert(v) {
                            *count += 1;
                        }
                    }
                    None => *count += 1,
                },
                Some(_) => {}
            },
            Accumulator::Sum { sum, distinct } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    if let Some(set) = distinct {
                        if !set.insert(v.clone()) {
                            return Ok(());
                        }
                    }
                    *sum = Some(match sum.take() {
                        Some(acc) => acc.add(&v)?,
                        None => v,
                    });
                }
            }
            Accumulator::Avg { sum, count, distinct } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    if let Some(set) = distinct {
                        if !set.insert(v.clone()) {
                            return Ok(());
                        }
                    }
                    if let Some(x) = v.as_f64() {
                        *sum += x;
                        *count += 1;
                    }
                }
            }
            Accumulator::Min { min } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    let replace = match min {
                        Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Less),
                        None => true,
                    };
                    if replace {
                        *min = Some(v);
                    }
                }
            }
            Accumulator::Max { max } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    let replace = match max {
                        Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Greater),
                        None => true,
                    };
                    if replace {
                        *max = Some(v);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Count { count, .. } => Value::Int(count),
            Accumulator::Sum { sum, .. } => sum.unwrap_or(Value::Null),
            Accumulator::Avg { sum, count, .. } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            Accumulator::Min { min } => min.unwrap_or(Value::Null),
            Accumulator::Max { max } => max.unwrap_or(Value::Null),
        }
    }
}

fn aggregate(
    rows: Vec<Tuple>,
    group_by: &[(ScalarExpr, String)],
    aggregates: &[(AggregateExpr, String)],
) -> Result<Vec<Tuple>, ExecError> {
    // Group keys in first-seen order so results are deterministic.
    let mut order: Vec<Tuple> = Vec::new();
    let mut groups: HashMap<Tuple, Vec<Accumulator>> = HashMap::new();

    for row in &rows {
        let mut key_values = Vec::with_capacity(group_by.len());
        for (e, _) in group_by {
            key_values.push(evaluate(e, row)?);
        }
        let key = Tuple::new(key_values);
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                order.push(key.clone());
                groups.entry(key).or_insert_with(|| {
                    aggregates.iter().map(|(a, _)| Accumulator::new(a)).collect()
                })
            }
        };
        for ((agg, _), acc) in aggregates.iter().zip(accs.iter_mut()) {
            let value = match &agg.arg {
                Some(e) => Some(evaluate(e, row)?),
                None => None,
            };
            acc.update(value)?;
        }
    }

    // A global aggregation (no GROUP BY) over an empty input still yields one row.
    if group_by.is_empty() && rows.is_empty() {
        let accs: Vec<Accumulator> = aggregates.iter().map(|(a, _)| Accumulator::new(a)).collect();
        let values: Vec<Value> = accs.into_iter().map(Accumulator::finish).collect();
        return Ok(vec![Tuple::new(values)]);
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group key must exist");
        let mut values = key.into_values();
        values.extend(accs.into_iter().map(Accumulator::finish));
        out.push(Tuple::new(values));
    }
    Ok(out)
}

fn set_operation(
    left: Vec<Tuple>,
    right: Vec<Tuple>,
    kind: SetOpKind,
    semantics: SetSemantics,
) -> Vec<Tuple> {
    match (kind, semantics) {
        (SetOpKind::Union, SetSemantics::Bag) => {
            let mut out = left;
            out.extend(right);
            out
        }
        (SetOpKind::Union, SetSemantics::Set) => {
            let mut out = left;
            out.extend(right);
            dedupe(out)
        }
        (SetOpKind::Intersect, semantics) => {
            let right_counts = counts(&right);
            match semantics {
                SetSemantics::Bag => {
                    // Multiplicity is min(n, m): emit a left occurrence while right credit remains.
                    let mut remaining = right_counts;
                    let mut out = Vec::new();
                    for t in left {
                        if let Some(c) = remaining.get_mut(&t) {
                            if *c > 0 {
                                *c -= 1;
                                out.push(t);
                            }
                        }
                    }
                    out
                }
                SetSemantics::Set => {
                    let left_unique = dedupe(left);
                    left_unique.into_iter().filter(|t| right_counts.contains_key(t)).collect()
                }
            }
        }
        (SetOpKind::Difference, SetSemantics::Bag) => {
            // Multiplicity is n - m.
            let mut credits = counts(&right);
            let mut out = Vec::new();
            for t in left {
                match credits.get_mut(&t) {
                    Some(c) if *c > 0 => *c -= 1,
                    _ => out.push(t),
                }
            }
            out
        }
        (SetOpKind::Difference, SetSemantics::Set) => {
            let right_set: std::collections::HashSet<Tuple> = right.into_iter().collect();
            dedupe(left).into_iter().filter(|t| !right_set.contains(t)).collect()
        }
    }
}

fn counts(rows: &[Tuple]) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in rows {
        *m.entry(t.clone()).or_insert(0) += 1;
    }
    m
}

fn sort_rows(rows: &mut [Tuple], keys: &[SortKey]) -> Result<(), ExecError> {
    // Pre-compute sort key values to avoid re-evaluating expressions during comparisons.
    let mut evaluated: Vec<(usize, Vec<Value>)> = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let mut vs = Vec::with_capacity(keys.len());
        for k in keys {
            vs.push(evaluate(&k.expr, row)?);
        }
        evaluated.push((i, vs));
    }
    evaluated.sort_by(|(_, a), (_, b)| {
        for (idx, k) in keys.iter().enumerate() {
            let ord = a[idx].cmp(&b[idx]);
            let ord = match k.order {
                SortOrder::Ascending => ord,
                SortOrder::Descending => ord.reverse(),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let permutation: Vec<usize> = evaluated.into_iter().map(|(i, _)| i).collect();
    let original = rows.to_vec();
    for (target, source) in permutation.into_iter().enumerate() {
        rows[target] = original[source].clone();
    }
    Ok(())
}

/// Convenience: execute a plan against a catalog with default options.
pub fn execute_plan(catalog: &Catalog, plan: &LogicalPlan) -> Result<Relation, ExecError> {
    Executor::new(catalog.clone()).execute(plan)
}

/// Build the schema a plan's execution result will carry (re-exported for callers that only need
/// the schema without running the query).
pub fn output_schema(plan: &LogicalPlan) -> Schema {
    plan.schema()
}

/// Convenience for tests and the benchmark harness: execute with limits.
pub fn execute_plan_with_options(
    catalog: &Catalog,
    plan: &LogicalPlan,
    options: ExecOptions,
) -> Result<Relation, ExecError> {
    Executor::with_options(catalog.clone(), options).execute(plan)
}

/// Helpers shared by unit tests across this crate.
#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use perm_algebra::{tuple, DataType};

    /// The example database of the paper's Figure 2: shop, sales and items.
    pub fn paper_example_catalog() -> Catalog {
        let catalog = Catalog::new();
        let shop = Relation::new(
            Schema::new(vec![
                perm_algebra::Attribute::qualified("shop", "name", DataType::Text),
                perm_algebra::Attribute::qualified("shop", "numempl", DataType::Int),
            ]),
            vec![tuple!["Merdies", 3], tuple!["Joba", 14]],
        )
        .unwrap();
        let sales = Relation::new(
            Schema::new(vec![
                perm_algebra::Attribute::qualified("sales", "sname", DataType::Text),
                perm_algebra::Attribute::qualified("sales", "itemid", DataType::Int),
            ]),
            vec![
                tuple!["Merdies", 1],
                tuple!["Merdies", 2],
                tuple!["Merdies", 2],
                tuple!["Joba", 3],
                tuple!["Joba", 3],
            ],
        )
        .unwrap();
        let items = Relation::new(
            Schema::new(vec![
                perm_algebra::Attribute::qualified("items", "id", DataType::Int),
                perm_algebra::Attribute::qualified("items", "price", DataType::Int),
            ]),
            vec![tuple![1, 100], tuple![2, 10], tuple![3, 25]],
        )
        .unwrap();
        catalog.create_table_with_data("shop", shop).unwrap();
        catalog.create_table_with_data("sales", sales).unwrap();
        catalog.create_table_with_data("items", items).unwrap();
        catalog
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::paper_example_catalog;
    use super::*;
    use perm_algebra::{tuple, AggregateFunction, Attribute, DataType, PlanBuilder};

    fn scan(catalog: &Catalog, table: &str, ref_id: usize) -> PlanBuilder {
        PlanBuilder::scan(table, catalog.table_schema(table).unwrap(), ref_id)
    }

    #[test]
    fn scan_base_relation() {
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "shop", 0).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.schema().attribute_names(), vec!["name", "numempl"]);
    }

    #[test]
    fn selection_filters_rows() {
        let catalog = paper_example_catalog();
        let shop = scan(&catalog, "shop", 0);
        let pred = shop.col("numempl").unwrap().eq(ScalarExpr::literal(3i64));
        let plan = shop.filter(pred).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.tuples()[0], tuple!["Merdies", 3]);
    }

    #[test]
    fn projection_computes_expressions_and_distinct() {
        let catalog = paper_example_catalog();
        let sales = scan(&catalog, "sales", 0);
        let sname = sales.col("sname").unwrap();
        let plan = sales.clone().project(vec![(sname.clone(), "sname".into())]).build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 5);
        let plan = sales.project_distinct(vec![(sname, "sname".into())]).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2);
    }

    #[test]
    fn cross_product_multiplies_cardinalities() {
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "shop", 0).cross_join(scan(&catalog, "items", 1)).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2 * 3);
        assert_eq!(result.arity(), 4);
    }

    #[test]
    fn hash_join_equi_condition() {
        let catalog = paper_example_catalog();
        let shop = scan(&catalog, "shop", 0);
        let sales = scan(&catalog, "sales", 1);
        // shop.name = sales.sname  (columns 0 and 2 in the combined schema)
        let cond = ScalarExpr::column(0, "name").eq(ScalarExpr::column(2, "sname"));
        let plan = shop.join(sales, JoinKind::Inner, Some(cond)).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 5);
    }

    #[test]
    fn left_outer_join_pads_unmatched() {
        let catalog = Catalog::new();
        let left = Relation::new(
            Schema::from_pairs(&[("id", DataType::Int)]),
            vec![tuple![1], tuple![2], tuple![3]],
        )
        .unwrap();
        let right = Relation::new(
            Schema::from_pairs(&[("rid", DataType::Int), ("payload", DataType::Text)]),
            vec![tuple![1, "a"], tuple![1, "b"]],
        )
        .unwrap();
        catalog.create_table_with_data("l", left).unwrap();
        catalog.create_table_with_data("r", right).unwrap();
        let l = scan(&catalog, "l", 0);
        let r = scan(&catalog, "r", 1);
        let cond = ScalarExpr::column(0, "id").eq(ScalarExpr::column(1, "rid"));
        let plan = l.join(r, JoinKind::LeftOuter, Some(cond)).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        // id=1 matches twice, ids 2 and 3 are padded with NULLs.
        assert_eq!(result.num_rows(), 4);
        let padded: Vec<_> = result.tuples().iter().filter(|t| t[1].is_null()).collect();
        assert_eq!(padded.len(), 2);
    }

    #[test]
    fn full_outer_join_pads_both_sides() {
        let catalog = Catalog::new();
        catalog
            .create_table_with_data(
                "l",
                Relation::new(
                    Schema::from_pairs(&[("id", DataType::Int)]),
                    vec![tuple![1], tuple![2]],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data(
                "r",
                Relation::new(
                    Schema::from_pairs(&[("rid", DataType::Int)]),
                    vec![tuple![2], tuple![3]],
                )
                .unwrap(),
            )
            .unwrap();
        let cond = ScalarExpr::column(0, "id").eq(ScalarExpr::column(1, "rid"));
        let plan = scan(&catalog, "l", 0)
            .join(scan(&catalog, "r", 1), JoinKind::FullOuter, Some(cond))
            .build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 3);
    }

    #[test]
    fn join_nulls_do_not_match_under_eq_but_do_under_null_safe_eq() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let rows = vec![tuple![1], Tuple::new(vec![Value::Null])];
        catalog
            .create_table_with_data("a", Relation::new(schema.clone(), rows.clone()).unwrap())
            .unwrap();
        catalog.create_table_with_data("b", Relation::new(schema, rows).unwrap()).unwrap();
        let eq_cond = ScalarExpr::column(0, "k").eq(ScalarExpr::column(1, "k"));
        let plan = scan(&catalog, "a", 0)
            .join(scan(&catalog, "b", 1), JoinKind::Inner, Some(eq_cond))
            .build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 1);
        let ns_cond = ScalarExpr::column(0, "k").null_safe_eq(ScalarExpr::column(1, "k"));
        let plan = scan(&catalog, "a", 0)
            .join(scan(&catalog, "b", 1), JoinKind::Inner, Some(ns_cond))
            .build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 2);
    }

    #[test]
    fn aggregation_matches_paper_example_result() {
        // q_ex from the paper: total price per shop = {(Merdies, 120), (Joba, 50)}.
        let catalog = paper_example_catalog();
        let prod = scan(&catalog, "shop", 0)
            .cross_join(scan(&catalog, "sales", 1))
            .cross_join(scan(&catalog, "items", 2));
        let name = prod.col("shop.name").unwrap();
        let sname = prod.col("sales.sname").unwrap();
        let itemid = prod.col("sales.itemid").unwrap();
        let id = prod.col("items.id").unwrap();
        let price = prod.col("items.price").unwrap();
        let plan = prod
            .filter(name.clone().eq(sname).and(itemid.eq(id)))
            .aggregate(
                vec![(name, "name".into())],
                vec![(AggregateExpr::new(AggregateFunction::Sum, price), "sum_price".into())],
            )
            .build();
        let result = execute_plan(&catalog, &plan).unwrap();
        let sorted = result.sorted();
        assert_eq!(sorted.tuples(), &[tuple!["Joba", 50], tuple!["Merdies", 120]]);
    }

    #[test]
    fn aggregation_over_empty_input_without_groups_yields_one_row() {
        let catalog = Catalog::new();
        catalog.create_table("empty", Schema::from_pairs(&[("x", DataType::Int)])).unwrap();
        let t = scan(&catalog, "empty", 0);
        let x = t.col("x").unwrap();
        let plan = t
            .aggregate(
                vec![],
                vec![
                    (AggregateExpr::new(AggregateFunction::Sum, x.clone()), "s".into()),
                    (AggregateExpr::count_star(), "c".into()),
                    (AggregateExpr::new(AggregateFunction::Min, x), "m".into()),
                ],
            )
            .build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.tuples()[0], Tuple::new(vec![Value::Null, Value::Int(0), Value::Null]));
    }

    #[test]
    fn aggregation_functions_cover_count_avg_min_max_distinct() {
        let catalog = paper_example_catalog();
        let sales = scan(&catalog, "sales", 0);
        let itemid = sales.col("itemid").unwrap();
        let plan = sales
            .aggregate(
                vec![],
                vec![
                    (AggregateExpr::count_star(), "cnt".into()),
                    (AggregateExpr::new(AggregateFunction::Avg, itemid.clone()), "avg_item".into()),
                    (AggregateExpr::new(AggregateFunction::Min, itemid.clone()), "min_item".into()),
                    (AggregateExpr::new(AggregateFunction::Max, itemid.clone()), "max_item".into()),
                    (
                        AggregateExpr {
                            func: AggregateFunction::Count,
                            arg: Some(itemid),
                            distinct: true,
                        },
                        "distinct_items".into(),
                    ),
                ],
            )
            .build();
        let result = execute_plan(&catalog, &plan).unwrap();
        let row = &result.tuples()[0];
        assert_eq!(row[0], Value::Int(5));
        assert_eq!(row[1], Value::Float((1 + 2 + 2 + 3 + 3) as f64 / 5.0));
        assert_eq!(row[2], Value::Int(1));
        assert_eq!(row[3], Value::Int(3));
        assert_eq!(row[4], Value::Int(3));
    }

    #[test]
    fn set_operations_bag_and_set() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        catalog
            .create_table_with_data(
                "a",
                Relation::new(schema.clone(), vec![tuple![1], tuple![1], tuple![2]]).unwrap(),
            )
            .unwrap();
        catalog
            .create_table_with_data("b", Relation::new(schema, vec![tuple![1], tuple![3]]).unwrap())
            .unwrap();
        let run = |kind, semantics| {
            let plan =
                scan(&catalog, "a", 0).set_op(scan(&catalog, "b", 1), kind, semantics).build();
            execute_plan(&catalog, &plan).unwrap().sorted()
        };
        assert_eq!(run(SetOpKind::Union, SetSemantics::Bag).num_rows(), 5);
        assert_eq!(run(SetOpKind::Union, SetSemantics::Set).num_rows(), 3);
        assert_eq!(run(SetOpKind::Intersect, SetSemantics::Bag).tuples(), &[tuple![1]]);
        assert_eq!(run(SetOpKind::Intersect, SetSemantics::Set).tuples(), &[tuple![1]]);
        assert_eq!(run(SetOpKind::Difference, SetSemantics::Bag).tuples(), &[tuple![1], tuple![2]]);
        assert_eq!(run(SetOpKind::Difference, SetSemantics::Set).tuples(), &[tuple![2]]);
    }

    #[test]
    fn sort_and_limit() {
        let catalog = paper_example_catalog();
        let items = scan(&catalog, "items", 0);
        let price = items.col("price").unwrap();
        let plan = items.sort(vec![SortKey::desc(price)]).limit(Some(2), 0).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.tuples()[0], tuple![1, 100]);
        assert_eq!(result.tuples()[1], tuple![3, 25]);
    }

    #[test]
    fn limit_with_offset() {
        let catalog = paper_example_catalog();
        let items = scan(&catalog, "items", 0);
        let id = items.col("id").unwrap();
        let plan = items.sort(vec![SortKey::asc(id)]).limit(Some(1), 1).build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.tuples(), &[tuple![2, 10]]);
    }

    #[test]
    fn row_budget_aborts_large_results() {
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "sales", 0)
            .cross_join(scan(&catalog, "sales", 1))
            .cross_join(scan(&catalog, "sales", 2))
            .build();
        let options = ExecOptions::default().with_row_budget(20);
        let err = execute_plan_with_options(&catalog, &plan, options).unwrap_err();
        assert!(matches!(err, ExecError::RowBudgetExceeded { budget: 20 }));
    }

    #[test]
    fn values_plan_executes() {
        let catalog = Catalog::new();
        let plan = PlanBuilder::values(
            Schema::new(vec![Attribute::new("x", DataType::Int)]),
            vec![tuple![1], tuple![2]],
        )
        .build();
        assert_eq!(execute_plan(&catalog, &plan).unwrap().num_rows(), 2);
    }

    #[test]
    fn subquery_alias_is_transparent_to_execution() {
        let catalog = paper_example_catalog();
        let plan = scan(&catalog, "shop", 0).alias("s").build();
        let result = execute_plan(&catalog, &plan).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.schema().resolve("s.name").unwrap(), 0);
    }
}
