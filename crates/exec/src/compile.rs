//! Compiled scalar expressions: the executor's run-time expression representation.
//!
//! [`ScalarExpr`] is the *logical* expression language: column references carry display names,
//! sublinks carry whole sub-plans, and every evaluation walks the tree re-discovering the same
//! facts. Compilation happens once per operator when a plan starts executing and produces a
//! [`CompiledExpr`] in which
//!
//! * column references are bare indices,
//! * uncorrelated sublinks are **resolved**: `EXISTS` and scalar subqueries are executed once and
//!   become literals (a scalar subquery returning more than one row raises
//!   [`ExecError::ScalarSubqueryTooManyRows`]), and `IN (SELECT ...)` becomes a pre-built hash
//!   set probed in O(1) per row instead of a per-row scan of the result list,
//! * `IN` lists of constants are pre-evaluated (hash set where the value types allow it, a plain
//!   pre-evaluated value slice otherwise),
//! * function argument buffers for the common arities are stack-allocated.
//!
//! Evaluation then performs no allocation for predicates and exactly one `Vec` allocation per
//! projected output row.

use std::collections::HashSet;

use perm_algebra::{
    AggregateExpr, BinaryOperator, DataType, ScalarExpr, ScalarFunction, SublinkKind, Tuple,
    UnaryOperator, Value,
};

use crate::error::ExecError;
use crate::eval::{binary_op_values, evaluate_function, logical_combine, unary_op_value};
use crate::executor::{ExecContext, Executor};

/// Which value types occur among an [`CompiledExpr::InSet`]'s candidates; used to reproduce the
/// three-valued `IN` semantics for needles that are incomparable with some candidate
/// (`sql_eq` returning `None` acts like a NULL candidate: a non-match becomes NULL).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct InSetTypes {
    ints: bool,
    floats: bool,
    dates: bool,
    texts: bool,
}

impl InSetTypes {
    /// Is any candidate incomparable with a (non-null) needle of this type under `sql_cmp`?
    /// Mirrors the `sql_cmp` table: the numeric types Int/Float/Date all pair with each other,
    /// Text pairs with Text; everything else (including a Bool needle) is unknown.
    fn any_incomparable_with(self, needle: &Value) -> bool {
        match needle {
            Value::Int(_) | Value::Float(_) | Value::Date(_) => self.texts,
            Value::Text(_) => self.ints || self.floats || self.dates,
            _ => self.ints || self.floats || self.dates || self.texts,
        }
    }
}

/// A scalar expression compiled for repeated evaluation against tuples of one fixed schema.
#[derive(Debug, Clone)]
pub(crate) enum CompiledExpr {
    /// Column reference by index.
    Column(usize),
    /// Pre-evaluated constant.
    Literal(Value),
    /// Binary operation (non-logical operators).
    Binary { op: BinaryOperator, left: Box<CompiledExpr>, right: Box<CompiledExpr> },
    /// AND/OR with short-circuit three-valued logic.
    Logical { op: BinaryOperator, left: Box<CompiledExpr>, right: Box<CompiledExpr> },
    /// Unary operation.
    Unary { op: UnaryOperator, expr: Box<CompiledExpr> },
    /// Scalar function call.
    Function { func: ScalarFunction, args: Vec<CompiledExpr> },
    /// CASE expression.
    Case {
        operand: Option<Box<CompiledExpr>>,
        branches: Vec<(CompiledExpr, CompiledExpr)>,
        else_expr: Option<Box<CompiledExpr>>,
    },
    /// Cast.
    Cast { expr: Box<CompiledExpr>, data_type: DataType },
    /// `IN` over a pre-built hash set of constants (constant lists and `IN (SELECT ...)`).
    /// `has_null` records whether any candidate was NULL (a non-match then yields NULL).
    InSet {
        expr: Box<CompiledExpr>,
        set: HashSet<Value>,
        types: InSetTypes,
        has_null: bool,
        negated: bool,
    },
    /// `IN` over pre-evaluated constant values whose types prevent hashing with exact SQL
    /// semantics (booleans, NaN); compared linearly with `sql_eq`.
    InValues { expr: Box<CompiledExpr>, values: Vec<Value>, negated: bool },
    /// `IN` over non-constant candidate expressions.
    InList { expr: Box<CompiledExpr>, list: Vec<CompiledExpr>, negated: bool },
}

impl CompiledExpr {
    /// Compile `expr`, resolving any uncorrelated sublinks by executing their plans once through
    /// `executor` under `ctx`'s resource limits.
    pub(crate) fn compile(
        expr: &ScalarExpr,
        executor: &Executor,
        ctx: &ExecContext,
    ) -> Result<CompiledExpr, ExecError> {
        Ok(match expr {
            ScalarExpr::Column { index, .. } => CompiledExpr::Column(*index),
            ScalarExpr::Literal(v) => CompiledExpr::Literal(v.clone()),
            // Parameter slots resolve against the executor's bound values exactly once per
            // execution, so a prepared plan re-executes with new bindings at literal speed.
            ScalarExpr::Parameter { index } => CompiledExpr::Literal(executor.param(*index)?),
            ScalarExpr::BinaryOp { op, left, right } => {
                let left = Box::new(CompiledExpr::compile(left, executor, ctx)?);
                let right = Box::new(CompiledExpr::compile(right, executor, ctx)?);
                if matches!(op, BinaryOperator::And | BinaryOperator::Or) {
                    CompiledExpr::Logical { op: *op, left, right }
                } else {
                    CompiledExpr::Binary { op: *op, left, right }
                }
            }
            ScalarExpr::UnaryOp { op, expr } => CompiledExpr::Unary {
                op: *op,
                expr: Box::new(CompiledExpr::compile(expr, executor, ctx)?),
            },
            ScalarExpr::Function { func, args } => CompiledExpr::Function {
                func: *func,
                args: args
                    .iter()
                    .map(|a| CompiledExpr::compile(a, executor, ctx))
                    .collect::<Result<_, _>>()?,
            },
            ScalarExpr::Case { operand, branches, else_expr } => CompiledExpr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| CompiledExpr::compile(o, executor, ctx).map(Box::new))
                    .transpose()?,
                branches: branches
                    .iter()
                    .map(|(w, t)| {
                        Ok((
                            CompiledExpr::compile(w, executor, ctx)?,
                            CompiledExpr::compile(t, executor, ctx)?,
                        ))
                    })
                    .collect::<Result<_, ExecError>>()?,
                else_expr: else_expr
                    .as_ref()
                    .map(|e| CompiledExpr::compile(e, executor, ctx).map(Box::new))
                    .transpose()?,
            },
            ScalarExpr::Cast { expr, data_type } => CompiledExpr::Cast {
                expr: Box::new(CompiledExpr::compile(expr, executor, ctx)?),
                data_type: *data_type,
            },
            ScalarExpr::InList { expr, list, negated } => {
                let expr = Box::new(CompiledExpr::compile(expr, executor, ctx)?);
                if list.iter().all(|e| matches!(e, ScalarExpr::Literal(_))) {
                    let values: Vec<Value> = list
                        .iter()
                        .map(|e| match e {
                            ScalarExpr::Literal(v) => v.clone(),
                            _ => unreachable!("checked: all literals"),
                        })
                        .collect();
                    compile_in_constants(expr, values, *negated)
                } else {
                    CompiledExpr::InList {
                        expr,
                        list: list
                            .iter()
                            .map(|e| CompiledExpr::compile(e, executor, ctx))
                            .collect::<Result<_, _>>()?,
                        negated: *negated,
                    }
                }
            }
            ScalarExpr::Sublink { kind, operand, negated, plan } => match kind {
                SublinkKind::Exists => {
                    // Only existence matters: pull at most one row from the sub-plan.
                    let mut stream = executor.stream(plan, ctx)?;
                    let non_empty = stream.next().transpose()?.is_some();
                    CompiledExpr::Literal(Value::Bool(non_empty != *negated))
                }
                SublinkKind::Scalar => {
                    let mut stream = executor.stream(plan, ctx)?;
                    let first = stream.next().transpose()?;
                    if stream.next().transpose()?.is_some() {
                        return Err(ExecError::ScalarSubqueryTooManyRows);
                    }
                    let value = first.and_then(|t| t.get(0).cloned()).unwrap_or(Value::Null);
                    CompiledExpr::Literal(value)
                }
                SublinkKind::InSubquery => {
                    let operand = operand.as_ref().ok_or_else(|| {
                        ExecError::Internal("IN sublink without an operand".into())
                    })?;
                    let operand = Box::new(CompiledExpr::compile(operand, executor, ctx)?);
                    let mut values = Vec::new();
                    for row in executor.stream(plan, ctx)? {
                        let row = row?;
                        values.push(row.get(0).cloned().unwrap_or(Value::Null));
                    }
                    compile_in_constants(operand, values, *negated)
                }
            },
        })
    }

    /// Evaluate against a tuple.
    pub(crate) fn eval(&self, tuple: &Tuple) -> Result<Value, ExecError> {
        match self {
            CompiledExpr::Column(index) => tuple.get(*index).cloned().ok_or_else(|| {
                ExecError::Internal(format!(
                    "column #{index} out of bounds for tuple of arity {}",
                    tuple.arity()
                ))
            }),
            CompiledExpr::Literal(v) => Ok(v.clone()),
            CompiledExpr::Logical { op, left, right } => {
                let l = left.eval(tuple)?.as_bool();
                match (op, l) {
                    (BinaryOperator::And, Some(false)) => return Ok(Value::Bool(false)),
                    (BinaryOperator::Or, Some(true)) => return Ok(Value::Bool(true)),
                    _ => {}
                }
                let r = right.eval(tuple)?.as_bool();
                Ok(logical_combine(*op, l, r))
            }
            CompiledExpr::Binary { op, left, right } => {
                binary_op_values(*op, &left.eval(tuple)?, &right.eval(tuple)?)
            }
            CompiledExpr::Unary { op, expr } => unary_op_value(*op, expr.eval(tuple)?),
            CompiledExpr::Function { func, args } => {
                // Stack-allocate the argument buffer for the common arities.
                if args.len() <= 4 {
                    let mut buf = [Value::Null, Value::Null, Value::Null, Value::Null];
                    for (slot, arg) in buf.iter_mut().zip(args.iter()) {
                        *slot = arg.eval(tuple)?;
                    }
                    evaluate_function(*func, &buf[..args.len()])
                } else {
                    let values =
                        args.iter().map(|a| a.eval(tuple)).collect::<Result<Vec<_>, _>>()?;
                    evaluate_function(*func, &values)
                }
            }
            CompiledExpr::Case { operand, branches, else_expr } => {
                let operand_value = operand.as_ref().map(|o| o.eval(tuple)).transpose()?;
                for (when, then) in branches {
                    let matched = match &operand_value {
                        Some(op_val) => {
                            let w = when.eval(tuple)?;
                            op_val.sql_eq(&w).unwrap_or(false)
                        }
                        None => when.eval(tuple)?.as_bool().unwrap_or(false),
                    };
                    if matched {
                        return then.eval(tuple);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(tuple),
                    None => Ok(Value::Null),
                }
            }
            CompiledExpr::Cast { expr, data_type } => Ok(expr.eval(tuple)?.cast(*data_type)?),
            CompiledExpr::InSet { expr, set, types, has_null, negated } => {
                let needle = expr.eval(tuple)?;
                Ok(in_set_lookup(&needle, set, *types, *has_null, *negated))
            }
            CompiledExpr::InValues { expr, values, negated } => {
                let needle = expr.eval(tuple)?;
                in_values(&needle, values.iter().map(|v| Ok(v.clone())), *negated)
            }
            CompiledExpr::InList { expr, list, negated } => {
                let needle = expr.eval(tuple)?;
                in_values(&needle, list.iter().map(|e| e.eval(tuple)), *negated)
            }
        }
    }

    /// Evaluate as a predicate: `true` only for SQL TRUE.
    pub(crate) fn eval_predicate(&self, tuple: &Tuple) -> Result<bool, ExecError> {
        Ok(self.eval(tuple)?.as_bool().unwrap_or(false))
    }
}

/// Probe a pre-built `IN` hash set with full three-valued semantics (shared by the row and the
/// vectorized evaluation paths).
pub(crate) fn in_set_lookup(
    needle: &Value,
    set: &HashSet<Value>,
    types: InSetTypes,
    has_null: bool,
    negated: bool,
) -> Value {
    if needle.is_null() {
        return Value::Null;
    }
    // A NaN needle compares unknown against *every* candidate under `sql_eq` (the set itself
    // never holds NaN — `compile_in_constants` falls back to the linear path for NaN
    // candidates), so with any candidate present the result is NULL, exactly like the
    // row-at-a-time evaluation; grouping equality in the hash set would wrongly match NaN.
    if matches!(needle, Value::Float(f) if f.is_nan()) {
        return if set.is_empty() && !has_null { Value::Bool(negated) } else { Value::Null };
    }
    // All numeric types (Int, Float, Date) share one grouping hash/equality key, consistent
    // with `sql_eq`, so a single probe covers every cross-type numeric match.
    let matched = set.contains(needle);
    if matched {
        Value::Bool(!negated)
    } else if has_null || types.any_incomparable_with(needle) {
        // An incomparable pair makes `sql_eq` unknown, exactly like a NULL candidate.
        Value::Null
    } else {
        Value::Bool(negated)
    }
}

/// Linear `IN` evaluation with full three-valued semantics over lazily produced candidates.
pub(crate) fn in_values(
    needle: &Value,
    candidates: impl Iterator<Item = Result<Value, ExecError>>,
    negated: bool,
) -> Result<Value, ExecError> {
    if needle.is_null() {
        return Ok(Value::Null);
    }
    let mut saw_null = false;
    for candidate in candidates {
        match needle.sql_eq(&candidate?) {
            Some(true) => return Ok(Value::Bool(!negated)),
            Some(false) => {}
            None => saw_null = true,
        }
    }
    if saw_null {
        Ok(Value::Null)
    } else {
        Ok(Value::Bool(negated))
    }
}

/// Choose the best representation for an `IN` over constant candidate values: a hash set when
/// every candidate hashes consistently with `sql_eq` (Int/Float/Date/Text, no NaN, no booleans),
/// otherwise a pre-evaluated value list compared linearly.
fn compile_in_constants(
    expr: Box<CompiledExpr>,
    values: Vec<Value>,
    negated: bool,
) -> CompiledExpr {
    let mut types = InSetTypes::default();
    let mut has_null = false;
    for v in &values {
        match v {
            Value::Null => has_null = true,
            Value::Int(_) => types.ints = true,
            Value::Date(_) => types.dates = true,
            Value::Float(f) if !f.is_nan() => types.floats = true,
            Value::Text(_) => types.texts = true,
            // Booleans and NaN do not hash consistently with `sql_eq`; fall back.
            _ => return CompiledExpr::InValues { expr, values, negated },
        }
    }
    let set: HashSet<Value> = values.into_iter().filter(|v| !v.is_null()).collect();
    CompiledExpr::InSet { expr, set, types, has_null, negated }
}

/// An aggregate expression with its argument compiled.
#[derive(Debug, Clone)]
pub(crate) struct CompiledAggregate {
    pub(crate) spec: AggregateExpr,
    pub(crate) arg: Option<CompiledExpr>,
}

impl CompiledAggregate {
    pub(crate) fn compile(
        agg: &AggregateExpr,
        executor: &Executor,
        ctx: &ExecContext,
    ) -> Result<CompiledAggregate, ExecError> {
        let arg = agg.arg.as_ref().map(|e| CompiledExpr::compile(e, executor, ctx)).transpose()?;
        Ok(CompiledAggregate { spec: agg.clone(), arg })
    }
}
