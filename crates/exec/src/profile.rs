//! Per-query operator instrumentation: the machinery behind `EXPLAIN ANALYZE`.
//!
//! Perm computes provenance by *query rewrite* (paper rules R5–R9), so the only way to see
//! where a provenance query spends its time is to instrument the rewritten plan itself — the
//! join stack the rewrite produced, not the query the user typed. A [`ProfileSink`] is built
//! from the optimized [`LogicalPlan`] by a pre-order walk and attached to the executor through
//! `ExecOptions::with_profile`; both the vectorized and the morsel-parallel pipelines then
//! record per-operator wall time, output rows, chunks and peak buffered bytes into it.
//!
//! Attribution is by **node identity**: plan nodes live behind `Arc`s inside the prepared
//! plan, so their addresses are stable for the lifetime of a query, and the sink maps each
//! node's address to a slot. Operators the executor fuses away (a `Selection` absorbed into a
//! fused scan, for example) are never looked up and render as `(fused into parent)` — the
//! annotated tree is honest about what actually ran.
//!
//! Recording is deliberately off the per-row hot path: the pipelines bump the atomics once per
//! chunk / per operator, never per row, and a query that does not profile pays only one
//! `Option` check per operator at pipeline construction.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use perm_algebra::LogicalPlan;

use crate::stats::{Estimator, TableStatsView};

/// Per-operator accumulators. All increments are relaxed: slots are only read after the query
/// finished (or for a monotone snapshot), never for synchronization.
#[derive(Debug, Default)]
struct NodeStats {
    /// Wall time spent in this operator, inclusive of its children (nanoseconds).
    nanos: AtomicU64,
    /// Rows this operator produced.
    rows_out: AtomicU64,
    /// Chunks this operator produced.
    chunks: AtomicU64,
    /// Peak bytes this operator held materialized (join build sides, sort buffers).
    buffered_bytes: AtomicU64,
    /// Whether the executor ever touched this slot (false = fused away or never reached).
    touched: AtomicBool,
}

#[derive(Debug)]
struct NodeSlot {
    label: String,
    depth: usize,
    /// The optimizer's estimated output rows for this operator, when statistics were
    /// available at planning time (rendered as `est_rows=` next to the actuals).
    est_rows: Option<u64>,
    stats: NodeStats,
}

/// The per-query collection point for operator actuals; see the module docs.
#[derive(Debug)]
pub struct ProfileSink {
    nodes: Vec<NodeSlot>,
    /// Plan-node address → slot index.
    index: HashMap<usize, usize>,
}

fn node_key(plan: &LogicalPlan) -> usize {
    std::ptr::from_ref(plan) as usize
}

impl ProfileSink {
    /// Build a sink for `plan` by a pre-order walk; one slot per operator, parents first.
    pub fn new(plan: &LogicalPlan) -> ProfileSink {
        let mut sink = ProfileSink { nodes: Vec::new(), index: HashMap::new() };
        sink.walk(plan, 0);
        sink
    }

    fn walk(&mut self, plan: &LogicalPlan, depth: usize) {
        let idx = self.nodes.len();
        self.nodes.push(NodeSlot {
            label: plan.describe(),
            depth,
            est_rows: None,
            stats: NodeStats::default(),
        });
        self.index.insert(node_key(plan), idx);
        for child in plan.children() {
            self.walk(child, depth + 1);
        }
    }

    /// Annotate every slot with the cardinality estimator's predicted output rows, so the
    /// rendered profile shows estimate vs. actual per operator (mis-estimation made visible).
    /// Must be called with the same plan the sink was built from, before execution starts.
    pub fn annotate_estimates(&mut self, plan: &LogicalPlan, stats: &TableStatsView) {
        let estimator = Estimator::new(stats);
        self.annotate_node(plan, &estimator);
    }

    fn annotate_node(&mut self, plan: &LogicalPlan, estimator: &Estimator<'_>) {
        if let Some(idx) = self.index.get(&node_key(plan)).copied() {
            let est = estimator.estimate(plan);
            if let Some(slot) = self.nodes.get_mut(idx) {
                slot.est_rows = Some(est.rows.round() as u64);
            }
        }
        for child in plan.children() {
            self.annotate_node(child, estimator);
        }
    }

    /// The slot for `plan`, or `None` for a node this sink was not built from (e.g. a rewritten
    /// sub-plan constructed after planning).
    pub fn op(&self, plan: &LogicalPlan) -> Option<usize> {
        self.index.get(&node_key(plan)).copied()
    }

    /// Add `nanos` of wall time to slot `idx` (inclusive of children).
    pub fn add_nanos(&self, idx: usize, nanos: u64) {
        if let Some(slot) = self.nodes.get(idx) {
            slot.stats.nanos.fetch_add(nanos, Ordering::Relaxed);
            slot.stats.touched.store(true, Ordering::Relaxed);
        }
    }

    /// Add `rows` produced across `chunks` output chunks to slot `idx`.
    pub fn add_output(&self, idx: usize, rows: u64, chunks: u64) {
        if let Some(slot) = self.nodes.get(idx) {
            slot.stats.rows_out.fetch_add(rows, Ordering::Relaxed);
            slot.stats.chunks.fetch_add(chunks, Ordering::Relaxed);
            slot.stats.touched.store(true, Ordering::Relaxed);
        }
    }

    /// Record that slot `idx` held `bytes` materialized; keeps the maximum observed.
    pub fn record_buffered(&self, idx: usize, bytes: u64) {
        if let Some(slot) = self.nodes.get(idx) {
            slot.stats.buffered_bytes.fetch_max(bytes, Ordering::Relaxed);
            slot.stats.touched.store(true, Ordering::Relaxed);
        }
    }

    /// Snapshot the accumulated actuals into an immutable [`QueryProfile`].
    pub fn snapshot(&self) -> QueryProfile {
        QueryProfile {
            ops: self
                .nodes
                .iter()
                .map(|slot| OpProfile {
                    label: slot.label.clone(),
                    depth: slot.depth,
                    est_rows: slot.est_rows,
                    nanos: slot.stats.nanos.load(Ordering::Relaxed),
                    rows_out: slot.stats.rows_out.load(Ordering::Relaxed),
                    chunks: slot.stats.chunks.load(Ordering::Relaxed),
                    buffered_bytes: slot.stats.buffered_bytes.load(Ordering::Relaxed),
                    touched: slot.stats.touched.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// One operator's recorded actuals inside a [`QueryProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// One-line operator description (from [`LogicalPlan::describe`]).
    pub label: String,
    /// Depth in the plan tree (root = 0); drives the indented rendering.
    pub depth: usize,
    /// The optimizer's estimated output rows (None when no statistics were available).
    pub est_rows: Option<u64>,
    /// Wall time in this operator, inclusive of its children (nanoseconds).
    pub nanos: u64,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Chunks the operator produced.
    pub chunks: u64,
    /// Peak bytes the operator held materialized (0 for streaming operators).
    pub buffered_bytes: u64,
    /// Whether the executor touched this operator (false = fused into its parent).
    pub touched: bool,
}

/// An immutable per-query profile: the plan tree annotated with execution actuals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// Operators in pre-order (parents before children).
    pub ops: Vec<OpProfile>,
}

impl QueryProfile {
    /// Rows produced by the root operator — the query's result row count.
    pub fn root_rows(&self) -> u64 {
        self.ops.first().map(|op| op.rows_out).unwrap_or(0)
    }

    /// Render the annotated plan tree, one operator per line, 2-space indented per depth.
    ///
    /// Times are inclusive of children (an operator's time covers the sub-tree below it), so
    /// the root line accounts for the whole execution.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            for _ in 0..op.depth {
                out.push_str("  ");
            }
            out.push_str(&op.label);
            if let Some(est) = op.est_rows {
                let _ = write!(out, "  (est_rows={est})");
            }
            if op.touched {
                let _ = write!(
                    out,
                    "  (actual: time={} rows={} chunks={}",
                    format_nanos(op.nanos),
                    op.rows_out,
                    op.chunks
                );
                if op.buffered_bytes > 0 {
                    let _ = write!(out, " peak_mem={}B", op.buffered_bytes);
                }
                out.push(')');
            } else {
                out.push_str("  (fused into parent)");
            }
            out.push('\n');
        }
        out
    }
}

/// Format a nanosecond duration with a human unit (`421ns`, `1.234ms`, `2.500s`).
fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::{LogicalPlan, Schema};
    use std::sync::Arc;

    fn base(name: &str) -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::BaseRelation {
            name: name.into(),
            alias: None,
            schema: Schema::empty(),
            ref_id: 0,
        })
    }

    #[test]
    fn walk_indexes_every_node_and_records() {
        let left = base("l");
        let right = base("r");
        let plan = LogicalPlan::SetOp {
            left: left.clone(),
            right: right.clone(),
            kind: perm_algebra::SetOpKind::Union,
            semantics: perm_algebra::SetSemantics::Bag,
        };
        let sink = ProfileSink::new(&plan);
        let root = sink.op(&plan).unwrap();
        let l = sink.op(&left).unwrap();
        let r = sink.op(&right).unwrap();
        assert_eq!(root, 0);
        assert_ne!(l, r);
        sink.add_output(root, 10, 2);
        sink.add_nanos(root, 1500);
        sink.record_buffered(l, 64);
        sink.record_buffered(l, 32); // max keeps 64
        let profile = sink.snapshot();
        assert_eq!(profile.root_rows(), 10);
        assert_eq!(profile.ops.len(), 3);
        assert_eq!(profile.ops[l].buffered_bytes, 64);
        assert!(!profile.ops[r].touched);
        let rendered = profile.render();
        assert!(rendered.contains("rows=10"), "{rendered}");
        assert!(rendered.contains("(fused into parent)"), "{rendered}");
        assert!(rendered.contains("peak_mem=64B"), "{rendered}");
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(format_nanos(421), "421ns");
        assert_eq!(format_nanos(1_500), "1.5us");
        assert_eq!(format_nanos(1_234_000), "1.234ms");
        assert_eq!(format_nanos(2_500_000_000), "2.500s");
    }
}
