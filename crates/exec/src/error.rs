//! Errors produced during query execution.

use std::fmt;

use perm_algebra::AlgebraError;
use perm_storage::CatalogError;

/// Errors raised by the evaluator, executor or optimizer.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// An error bubbled up from the algebra layer (typing, column resolution, arithmetic).
    Algebra(AlgebraError),
    /// An error from the catalog (missing table, arity mismatch on insert, ...).
    Catalog(CatalogError),
    /// The configured result-size budget was exceeded.
    ///
    /// Provenance queries can blow up combinatorially (the paper reports 38 million result
    /// tuples for TPC-H query 11); the benchmark harness uses this to reproduce the paper's
    /// "query stopped" (black table cell) behaviour.
    RowBudgetExceeded {
        /// The configured budget.
        budget: usize,
    },
    /// The configured wall-clock timeout was exceeded.
    Timeout {
        /// The configured timeout in milliseconds.
        millis: u64,
    },
    /// The query was cancelled (client request, session shutdown or a dropped stream).
    ///
    /// Raised cooperatively: every pipeline checks its [`crate::CancelToken`] at
    /// morsel/chunk/row-batch boundaries, so cancellation lands within one scheduling quantum
    /// and never mid-operator.
    Cancelled,
    /// A memory reservation was denied by the resource governor.
    ///
    /// The payload is the governor's explanation (which limit was hit and at what size);
    /// the service layer maps this to a clean wire error instead of letting the process OOM.
    ResourceExhausted(String),
    /// Integer arithmetic overflowed the 64-bit value range.
    ///
    /// All three execution pipelines (row-at-a-time, vectorized and parallel) surface integer
    /// overflow as this error with the same payload, so differential tests can assert identical
    /// failure behaviour; silent wrapping would instead produce pipeline-dependent results.
    ArithmeticOverflow {
        /// The operation that overflowed ("addition", "multiplication", ...).
        operation: String,
    },
    /// A scalar subquery used as a value returned more than one row.
    ///
    /// SQL requires a scalar subquery to produce at most one row; silently taking the first row
    /// would make results depend on physical tuple order.
    ScalarSubqueryTooManyRows,
    /// A parameter slot (`$n`) was evaluated without a bound value.
    ///
    /// Raised when a parameterized plan is executed with fewer parameters than it references
    /// (see [`crate::Executor::with_params`]) or when one reaches the tree-walking interpreter,
    /// which never carries bindings.
    UnboundParameter {
        /// Zero-based parameter index (`$1` has index 0).
        index: usize,
    },
    /// Any other execution failure.
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Algebra(e) => write!(f, "{e}"),
            ExecError::Catalog(e) => write!(f, "{e}"),
            ExecError::RowBudgetExceeded { budget } => {
                write!(f, "execution aborted: result exceeded row budget of {budget}")
            }
            ExecError::Timeout { millis } => {
                write!(f, "execution aborted: timeout of {millis} ms exceeded")
            }
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::ResourceExhausted(msg) => write!(f, "resource exhausted: {msg}"),
            ExecError::ArithmeticOverflow { operation } => {
                write!(f, "arithmetic overflow in {operation}")
            }
            ExecError::ScalarSubqueryTooManyRows => {
                write!(f, "scalar subquery returned more than one row")
            }
            ExecError::UnboundParameter { index } => {
                write!(f, "parameter ${} has no bound value", index + 1)
            }
            ExecError::Internal(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Algebra(e) => Some(e),
            ExecError::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for ExecError {
    fn from(e: AlgebraError) -> Self {
        match e {
            // Checked `Value` arithmetic reports overflow through the algebra layer; surface it
            // as the dedicated executor error so every pipeline raises the identical value.
            AlgebraError::ArithmeticOverflow { operation } => {
                ExecError::ArithmeticOverflow { operation }
            }
            other => ExecError::Algebra(other),
        }
    }
}

impl From<CatalogError> for ExecError {
    fn from(e: CatalogError) -> Self {
        ExecError::Catalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_budget_and_timeout() {
        assert!(ExecError::RowBudgetExceeded { budget: 10 }.to_string().contains("10"));
        assert!(ExecError::Timeout { millis: 500 }.to_string().contains("500"));
    }

    #[test]
    fn conversions_from_layer_errors() {
        let e: ExecError = AlgebraError::Internal("x".into()).into();
        assert!(matches!(e, ExecError::Algebra(_)));
        let e: ExecError = CatalogError::NotFound("t".into()).into();
        assert!(matches!(e, ExecError::Catalog(_)));
    }
}
